//! The serving request lifecycle: deadline- and priority-tagged query bundles.
//!
//! A [`Request`] is what the admission controller reasons about: one or more
//! queries, an absolute completion deadline on the engine's microsecond clock,
//! and a [`Priority`] class. Deadlines flow from admission through the
//! micro-batcher's per-item close deadlines to completion; priorities decide
//! who is shed first when the system is over capacity (see
//! [`crate::admission`]).

use dmt_data::Query;
use serde::{Deserialize, Serialize};

/// Sentinel deadline tick meaning "no deadline": the request is never shed for
/// infeasibility and its batcher close deadline falls back to `max_delay`.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Request priority class, ordered: `Low < Standard < High`.
///
/// Under overload the admission controller sheds lower classes at strictly
/// lower queue occupancies (nested watermarks), so low-priority traffic is
/// always shed before any high-priority request is.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Sheddable background traffic (shed first).
    Low,
    /// Ordinary interactive traffic.
    #[default]
    Standard,
    /// Latency-critical traffic (shed last).
    High,
}

impl Priority {
    /// Every class, ascending (`Low`, `Standard`, `High`).
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Standard, Priority::High];

    /// Stable index of this class into per-class counter arrays (0 = `Low`).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Standard => write!(f, "standard"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// One admission-controlled serving request: a query bundle with a deadline and
/// a priority class.
#[derive(Debug, Clone)]
pub struct Request {
    /// The queries to answer (usually one for online traffic).
    pub queries: Vec<Query>,
    /// Absolute completion deadline on the engine's microsecond clock
    /// ([`NO_DEADLINE`] = none).
    pub deadline_us: u64,
    /// Shedding class.
    pub priority: Priority,
}

impl Request {
    /// A request with no deadline at [`Priority::Standard`].
    #[must_use]
    pub fn new(queries: Vec<Query>) -> Self {
        Self {
            queries,
            deadline_us: NO_DEADLINE,
            priority: Priority::Standard,
        }
    }

    /// Sets the absolute completion deadline (engine clock, microseconds).
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Why the admission controller refused a request (the payload of
/// [`crate::ServeError::Shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// Admitting the request would push queue occupancy past this priority
    /// class's watermark.
    QueueFull {
        /// Queries admitted and not yet completed at the decision instant.
        occupancy: usize,
        /// The class's occupancy watermark.
        bound: usize,
    },
    /// The deadline budget is already exhausted: even an immediate dispatch
    /// (estimated at `needed_us`) would finish past the deadline.
    DeadlineInfeasible {
        /// Microseconds left until the deadline at the decision instant.
        slack_us: u64,
        /// The admission controller's service-time estimate.
        needed_us: u64,
    },
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { occupancy, bound } => {
                write!(f, "queue full ({occupancy} queries >= bound {bound})")
            }
            ShedReason::DeadlineInfeasible {
                slack_us,
                needed_us,
            } => write!(
                f,
                "deadline infeasible ({slack_us}us slack < {needed_us}us estimated service)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_below_high() {
        assert!(Priority::Low < Priority::Standard);
        assert!(Priority::Standard < Priority::High);
        assert_eq!(Priority::ALL[Priority::High.index()], Priority::High);
        assert_eq!(Priority::default(), Priority::Standard);
    }

    #[test]
    fn request_builders_set_the_lifecycle_fields() {
        let r = Request::new(Vec::new())
            .with_deadline_us(42)
            .with_priority(Priority::High);
        assert_eq!(r.deadline_us, 42);
        assert_eq!(r.priority, Priority::High);
        assert_eq!(Request::new(Vec::new()).deadline_us, NO_DEADLINE);
    }

    #[test]
    fn shed_reasons_display_their_numbers() {
        let s = ShedReason::QueueFull {
            occupancy: 9,
            bound: 8,
        };
        assert!(s.to_string().contains('9') && s.to_string().contains('8'));
        let s = ShedReason::DeadlineInfeasible {
            slack_us: 5,
            needed_us: 100,
        };
        assert!(s.to_string().contains("100"));
    }
}
