//! The open-loop load harness: controlled arrival processes, sojourn-time
//! latency, and rate sweeps for capacity-under-SLO measurement.
//!
//! A load generator's arrival discipline decides what its latency numbers
//! mean. A **closed-loop** driver only offers the next request after an
//! earlier one completes, so the arrival rate adapts to the system under test
//! and queueing delay never accumulates — its percentiles describe service
//! time at the generator's pace, not what independent users would see (the
//! classic *coordinated omission* trap). An **open-loop** driver commits to an
//! arrival schedule up front and offers on schedule no matter how the system
//! is doing; latency is **sojourn time** — scheduled arrival to completion,
//! queueing included — which is the quantity an SLO constrains.
//!
//! [`run_load`] drives a [`StagedEngine`] with either discipline:
//!
//! * [`ArrivalProcess::Poisson`] / [`ArrivalProcess::Periodic`] — open loop at
//!   a controlled offered rate. The schedule is precomputed and deadlines are
//!   anchored to *scheduled* arrivals, so a driver that falls behind cannot
//!   silently relax the measurement.
//! * [`ArrivalProcess::Closed`] — a fixed number of always-busy clients; the
//!   saturation-throughput probe that anchors a sweep's rate grid.
//!
//! [`sweep_rates`] runs one fresh engine per offered rate and
//! [`max_qps_under_slo`] reads the capacity off the sweep: the highest offered
//! rate whose admitted-traffic p99 sojourn still meets the SLO — the serving
//! capacity number `bench_slo` reports and CI gates.

use crate::request::{Priority, Request, NO_DEADLINE};
use crate::stage::StagedEngine;
use crate::ServeError;
use dmt_data::Query;
use dmt_metrics::{Histogram, LatencyPercentiles, ThroughputWindow};
use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;

/// How a harness run gives up on a wedged pipeline instead of spinning
/// forever: no run is allowed to outlive this wall-clock budget.
const HARNESS_STALL_LIMIT: Duration = Duration::from_secs(300);

/// The arrival discipline of one load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: `clients` always-busy virtual users, each offering its
    /// next request as soon as one of its outstanding ones completes. Measures
    /// saturation throughput; its latency excludes open-queue waiting by
    /// construction.
    Closed {
        /// Concurrent in-flight requests the driver maintains.
        clients: usize,
    },
    /// Open loop, deterministic schedule: one arrival every `1/qps` seconds.
    Periodic {
        /// Offered arrival rate, requests per second.
        qps: f64,
    },
    /// Open loop, memoryless schedule: exponential inter-arrival gaps with
    /// mean `1/qps`, from a seeded generator (runs are reproducible).
    Poisson {
        /// Offered arrival rate, requests per second.
        qps: f64,
        /// Seed of the gap sequence.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// The same discipline re-rated to `qps` (closed loops are rate-free and
    /// pass through unchanged) — how a sweep walks one process over its grid.
    #[must_use]
    pub fn at_qps(self, qps: f64) -> Self {
        match self {
            ArrivalProcess::Closed { clients } => ArrivalProcess::Closed { clients },
            ArrivalProcess::Periodic { .. } => ArrivalProcess::Periodic { qps },
            ArrivalProcess::Poisson { seed, .. } => ArrivalProcess::Poisson { qps, seed },
        }
    }

    /// The first `n` arrival offsets in microseconds from the run's start.
    /// Closed loops have no schedule (arrivals are completion-driven) and
    /// return all zeros.
    #[must_use]
    pub fn schedule(&self, n: usize) -> Vec<u64> {
        match *self {
            ArrivalProcess::Closed { .. } => vec![0; n],
            ArrivalProcess::Periodic { qps } => {
                let gap_us = 1e6 / qps.max(f64::MIN_POSITIVE);
                (0..n).map(|i| (i as f64 * gap_us) as u64).collect()
            }
            ArrivalProcess::Poisson { qps, seed } => {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mean_gap_us = 1e6 / qps.max(f64::MIN_POSITIVE);
                let mut at = 0.0f64;
                (0..n)
                    .map(|_| {
                        let tick = at as u64;
                        // Inverse-CDF exponential gap; 1-U keeps ln() finite.
                        let u: f64 = 1.0 - rng.gen::<f64>();
                        at += -u.ln() * mean_gap_us;
                        tick
                    })
                    .collect()
            }
        }
    }
}

/// One load run's traffic description.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Requests to offer.
    pub requests: usize,
    /// Arrival discipline.
    pub arrivals: ArrivalProcess,
    /// Per-request completion budget in microseconds, anchored to the
    /// scheduled arrival ([`NO_DEADLINE`] = none).
    pub deadline_us: u64,
    /// Percent of requests offered at [`Priority::Low`].
    pub low_percent: u32,
    /// Percent of requests offered at [`Priority::High`] (the remainder is
    /// [`Priority::Standard`]).
    pub high_percent: u32,
}

impl LoadConfig {
    /// `requests` all-Standard requests with no deadline under `arrivals`.
    #[must_use]
    pub fn new(requests: usize, arrivals: ArrivalProcess) -> Self {
        Self {
            requests,
            arrivals,
            deadline_us: NO_DEADLINE,
            low_percent: 0,
            high_percent: 0,
        }
    }

    /// Sets the per-request deadline budget (microseconds after scheduled
    /// arrival).
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Sets the priority mix (percent low, percent high; the rest standard).
    #[must_use]
    pub fn with_mix(mut self, low_percent: u32, high_percent: u32) -> Self {
        assert!(
            low_percent + high_percent <= 100,
            "priority mix exceeds 100%"
        );
        self.low_percent = low_percent;
        self.high_percent = high_percent;
        self
    }

    /// The deterministic priority class of request `i` under this mix —
    /// classes interleave through the stream instead of clustering, so every
    /// window of traffic carries the configured blend.
    #[must_use]
    pub fn priority_of(&self, i: usize) -> Priority {
        // 61 is coprime with 100: the residues cycle through all of 0..100.
        let r = u32::try_from((i as u64 * 61) % 100).expect("residue < 100");
        if r < self.low_percent {
            Priority::Low
        } else if r < self.low_percent + self.high_percent {
            Priority::High
        } else {
            Priority::Standard
        }
    }
}

/// The outcome of one load run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Requests offered (admitted + shed).
    pub offered: usize,
    /// Requests past admission.
    pub admitted: usize,
    /// Requests completed (equals `admitted` on a clean run).
    pub completed: usize,
    /// Requests shed, per priority class (index = `Priority::index`).
    pub shed_by_class: [u64; 3],
    /// Offered arrival rate actually realized, requests/second.
    pub offered_qps: f64,
    /// Completed-request throughput over the run's wall window.
    pub rate: ThroughputWindow,
    /// Sojourn time of *admitted* traffic, seconds: scheduled arrival →
    /// completion, queueing included.
    pub sojourn: LatencyPercentiles,
    /// Admitted requests that completed after their deadline. Under a
    /// correctly-provisioned admission policy this stays 0 — infeasible
    /// requests are shed up front instead.
    pub deadline_misses: u64,
    /// The engine's accounting over the run.
    pub stats: crate::stage::StageStats,
}

impl LoadReport {
    /// Completed requests per second.
    #[must_use]
    pub fn completed_qps(&self) -> f64 {
        self.rate.per_second()
    }

    /// Requests shed, all classes.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed_by_class.iter().sum()
    }

    /// The fraction of offered requests that were shed.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.total_shed() as f64 / self.offered as f64
    }
}

/// Drives `config.requests` requests from `next_queries` through `engine`
/// under the configured arrival discipline and reports sojourn percentiles,
/// throughput and shedding.
///
/// Open-loop runs anchor both deadlines and sojourn measurement to the
/// *scheduled* arrival instants, so a driver that falls behind the schedule
/// inflates the recorded latency rather than hiding it (no coordinated
/// omission). Closed-loop runs anchor to the actual offer instants.
///
/// # Errors
///
/// Surfaces pipeline failures; shed requests are counted, not errors.
pub fn run_load(
    engine: &mut StagedEngine,
    config: &LoadConfig,
    mut next_queries: impl FnMut() -> Vec<Query>,
) -> Result<LoadReport, ServeError> {
    let schedule = config.arrivals.schedule(config.requests);
    let clients = match config.arrivals {
        ArrivalProcess::Closed { clients } => Some(clients.max(1)),
        _ => None,
    };
    let base = engine.now_us();
    let stall_by =
        base.saturating_add(u64::try_from(HARNESS_STALL_LIMIT.as_micros()).unwrap_or(u64::MAX));
    // Completions are absorbed as they drain instead of being hoarded until the
    // end: each one removes its anchor, bumps the counters and records into a
    // bounded histogram, so the harness's memory stays flat on long soak runs
    // (the old design kept every CompletedRequest plus a per-request Vec<f64>).
    let mut anchor_of: HashMap<u64, u64> = HashMap::with_capacity(config.requests);
    let sojourns = Histogram::new();
    let mut completed = 0usize;
    let mut deadline_misses = 0u64;
    let mut shed_by_class = [0u64; 3];
    let mut admitted = 0usize;
    let absorb = |engine: &mut StagedEngine,
                  anchor_of: &mut HashMap<u64, u64>,
                  completed: &mut usize,
                  deadline_misses: &mut u64|
     -> Result<(), ServeError> {
        for c in engine.drain()? {
            let anchor = anchor_of.remove(&c.seq).unwrap_or(c.arrival_us);
            sojourns.record(c.done_us.saturating_sub(anchor) as f64 * 1e-6);
            if !c.met_deadline() {
                *deadline_misses += 1;
            }
            *completed += 1;
        }
        Ok(())
    };

    for (i, offset) in schedule.iter().enumerate() {
        let scheduled = base + offset;
        // Wait for the request's turn: its scheduled instant (open loop) or a
        // free client slot (closed loop), harvesting completions meanwhile.
        loop {
            engine.pump()?;
            absorb(engine, &mut anchor_of, &mut completed, &mut deadline_misses)?;
            let now = engine.now_us();
            if now > stall_by {
                return Err(stalled(admitted, completed));
            }
            match clients {
                Some(cap) => {
                    if admitted - completed < cap {
                        break;
                    }
                }
                None => {
                    if now >= scheduled {
                        break;
                    }
                }
            }
            let wake = match clients {
                Some(_) => now + 100,
                None => scheduled.min(engine.next_close_us().unwrap_or(u64::MAX)),
            };
            if wake > now {
                std::thread::sleep(Duration::from_micros((wake - now).min(200)));
            }
        }
        // Deadlines anchor to the schedule, not to when the driver got here.
        let anchor = if clients.is_some() {
            engine.now_us()
        } else {
            scheduled
        };
        let deadline = if config.deadline_us == NO_DEADLINE {
            NO_DEADLINE
        } else {
            anchor.saturating_add(config.deadline_us)
        };
        let priority = config.priority_of(i);
        let request = Request::new(next_queries())
            .with_deadline_us(deadline)
            .with_priority(priority);
        match engine.offer(request) {
            Ok(seq) => {
                anchor_of.insert(seq, anchor);
                admitted += 1;
            }
            Err(e) if e.is_shed() => shed_by_class[priority.index()] += 1,
            Err(e) => return Err(e),
        }
    }

    engine.flush()?;
    while completed < admitted {
        engine.pump()?;
        absorb(engine, &mut anchor_of, &mut completed, &mut deadline_misses)?;
        if engine.now_us() > stall_by {
            return Err(stalled(admitted, completed));
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let wall_s = (engine.now_us() - base) as f64 * 1e-6;
    Ok(LoadReport {
        offered: config.requests,
        admitted,
        completed,
        shed_by_class,
        offered_qps: config.requests as f64 / wall_s.max(1e-12),
        rate: ThroughputWindow::new(completed, wall_s),
        sojourn: sojourns.percentiles().unwrap_or(ZERO_LATENCY),
        deadline_misses,
        stats: engine.stats(),
    })
}

/// All-zero percentiles for an empty run (every request shed).
const ZERO_LATENCY: LatencyPercentiles = LatencyPercentiles {
    count: 0,
    p50: 0.0,
    p95: 0.0,
    p99: 0.0,
    mean: 0.0,
    min: 0.0,
    max: 0.0,
};

fn stalled(admitted: usize, completed: usize) -> ServeError {
    ServeError::Rank {
        rank: 0,
        message: format!(
            "load harness stalled: {completed} of {admitted} admitted requests completed \
             within the stall limit"
        ),
    }
}

/// Runs one fresh engine per offered rate (`template.arrivals` re-rated via
/// [`ArrivalProcess::at_qps`]) — the latency-vs-throughput sweep. Engines are
/// rebuilt per point so no queue state or accounting leaks across rates.
///
/// # Errors
///
/// Surfaces the first engine-construction or pipeline failure.
pub fn sweep_rates<E, S, Q>(
    rates_qps: &[f64],
    template: &LoadConfig,
    mut engine_for: E,
    mut stream_for: S,
) -> Result<Vec<LoadReport>, ServeError>
where
    E: FnMut() -> Result<StagedEngine, ServeError>,
    S: FnMut() -> Q,
    Q: FnMut() -> Vec<Query>,
{
    rates_qps
        .iter()
        .map(|&qps| {
            let mut engine = engine_for()?;
            let config = LoadConfig {
                arrivals: template.arrivals.at_qps(qps),
                ..template.clone()
            };
            run_load(&mut engine, &config, stream_for())
        })
        .collect()
}

/// Reads the serving capacity off a sweep: the highest *offered* rate whose
/// admitted-traffic p99 sojourn meets `p99_slo_s`. `None` if no point does.
#[must_use]
pub fn max_qps_under_slo(reports: &[LoadReport], p99_slo_s: f64) -> Option<f64> {
    reports
        .iter()
        .filter(|r| r.completed > 0 && r.sojourn.p99 <= p99_slo_s)
        .map(|r| r.offered_qps)
        .fold(None, |best, qps| {
            Some(best.map_or(qps, |b: f64| b.max(qps)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_schedule_is_evenly_spaced() {
        let s = ArrivalProcess::Periodic { qps: 1000.0 }.schedule(4);
        assert_eq!(s, vec![0, 1000, 2000, 3000]);
    }

    #[test]
    fn poisson_schedule_is_reproducible_and_rate_matched() {
        let p = ArrivalProcess::Poisson {
            qps: 10_000.0,
            seed: 7,
        };
        let a = p.schedule(2_000);
        let b = p.schedule(2_000);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a[0], 0);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are ordered");
        // Mean gap over 2000 draws should land near 100us (1/10k s).
        let mean_gap = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!(
            (60.0..=140.0).contains(&mean_gap),
            "mean gap {mean_gap}us far from the 100us target"
        );
        // Different seed, different schedule.
        assert_ne!(
            ArrivalProcess::Poisson {
                qps: 10_000.0,
                seed: 8
            }
            .schedule(2_000),
            a
        );
    }

    #[test]
    fn at_qps_rerates_open_loops_only() {
        let closed = ArrivalProcess::Closed { clients: 4 }.at_qps(99.0);
        assert_eq!(closed, ArrivalProcess::Closed { clients: 4 });
        match (ArrivalProcess::Poisson { qps: 1.0, seed: 3 }).at_qps(50.0) {
            ArrivalProcess::Poisson { qps, seed } => {
                assert_eq!(qps, 50.0);
                assert_eq!(seed, 3);
            }
            other => panic!("expected Poisson, got {other:?}"),
        }
    }

    #[test]
    fn priority_mix_interleaves_and_matches_percentages() {
        let config = LoadConfig::new(1_000, ArrivalProcess::Closed { clients: 1 }).with_mix(30, 10);
        let mut counts = [0usize; 3];
        for i in 0..1_000 {
            counts[config.priority_of(i).index()] += 1;
        }
        assert_eq!(counts[Priority::Low.index()], 300);
        assert_eq!(counts[Priority::High.index()], 100);
        assert_eq!(counts[Priority::Standard.index()], 600);
        // Interleaved: the first 20 requests already carry more than one class.
        let head: std::collections::HashSet<_> = (0..20).map(|i| config.priority_of(i)).collect();
        assert!(head.len() > 1);
    }

    #[test]
    fn capacity_reads_the_highest_compliant_rate() {
        let mk = |qps: f64, p99: f64| LoadReport {
            offered: 100,
            admitted: 100,
            completed: 100,
            shed_by_class: [0; 3],
            offered_qps: qps,
            rate: ThroughputWindow::new(100, 1.0),
            sojourn: LatencyPercentiles {
                count: 100,
                p50: p99 / 2.0,
                p95: p99,
                p99,
                mean: p99 / 2.0,
                min: 0.0,
                max: p99,
            },
            deadline_misses: 0,
            stats: crate::stage::StageStats::default(),
        };
        let reports = vec![mk(100.0, 0.01), mk(200.0, 0.02), mk(400.0, 0.09)];
        assert_eq!(max_qps_under_slo(&reports, 0.025), Some(200.0));
        assert_eq!(max_qps_under_slo(&reports, 0.001), None);
    }
}
