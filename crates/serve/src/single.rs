//! Single-rank, allocation-free serving.
//!
//! [`SingleRankServer`] collapses the baseline deployment onto one rank: with
//! `world == 1` every embedding row is local, so the route → answer key
//! exchange degenerates to the identity and the whole query path becomes
//! *pool → dense forward* over rank-local state. That removes the collective
//! layer entirely — and with it every per-batch wire buffer — which is what
//! makes a hard zero-allocation guarantee possible:
//!
//! > After a warm-up batch of each shape, [`SingleRankServer::serve_into`]
//! > performs **zero heap allocations** per call (asserted by the
//! > counting-allocator test in `tests/zero_alloc.rs`).
//!
//! Every buffer of the forward pass — the pooled feature block, the dense
//! input, each MLP/interaction intermediate and the quantized-GEMM scratch —
//! lives in the server and is reshaped in place per batch. Predictions are
//! bit-identical to the multi-rank [`crate::ServingEngine`] at the same
//! precision: the pooling accumulates rows in the same bag order the routed
//! protocol does, and the dense stack runs the same kernels through its
//! allocation-free inference entry points.

use crate::ServeError;
use dmt_data::Query;
use dmt_metrics::{trace, Counter, Registry};
use dmt_tensor::{Precision, Tensor};
use dmt_trainer::distributed::model::{load_params, DenseScratch, DenseStack, ShardedLookup};
use dmt_trainer::distributed::{ExecutionMode, ModelSnapshot};

/// A baseline snapshot served from a single rank with reusable buffers.
pub struct SingleRankServer {
    /// All tables as shard 0 of a 1-way partition: every row is local.
    lookup: ShardedLookup,
    dense: DenseStack,
    num_dense: usize,
    row_buf: Vec<f32>,
    feature_block: Tensor,
    dense_input: Tensor,
    scratch: DenseScratch,
    /// Cached registry handles: resolved once at load so the hot path only
    /// touches atomics (the zero-allocation guarantee covers them).
    served_queries: std::sync::Arc<Counter>,
    served_batches: std::sync::Arc<Counter>,
}

impl SingleRankServer {
    /// Loads a baseline snapshot at the given storage precision
    /// ([`Precision::F32`] is the exact bit-identical-to-training path;
    /// int8/fp16 quantize tables and dense weights once at load time).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for a DMT-mode snapshot (tower outputs
    /// need the peer exchange of the multi-rank engine) or an inconsistent
    /// snapshot.
    pub fn from_snapshot(
        snapshot: &ModelSnapshot,
        precision: Precision,
    ) -> Result<Self, ServeError> {
        if snapshot.mode != ExecutionMode::Baseline {
            return Err(ServeError::Config {
                reason: "SingleRankServer serves baseline snapshots; DMT tower \
                         compression needs the multi-rank peer exchange"
                    .into(),
            });
        }
        let (unit_width, num_units) = crate::engine::dense_geometry(snapshot)?;
        let mut dense = DenseStack::new(
            snapshot.seed,
            &snapshot.schema,
            snapshot.arch,
            &snapshot.hyper,
            unit_width,
            num_units,
        );
        load_params(&mut dense, &snapshot.dense_params)?;
        dense.quantize_weights(precision);
        let lookup = ShardedLookup::from_tables_quantized(
            (0..snapshot.schema.num_sparse()).collect(),
            &snapshot.tables,
            1,
            0,
            precision,
        )?;
        Ok(Self {
            lookup,
            dense,
            num_dense: snapshot.schema.num_dense,
            row_buf: Vec::new(),
            feature_block: Tensor::default(),
            dense_input: Tensor::default(),
            scratch: DenseScratch::default(),
            served_queries: Registry::global().counter("single.queries"),
            served_batches: Registry::global().counter("single.batches"),
        })
    }

    /// Storage precision the tables were loaded at.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.lookup.precision()
    }

    /// Bytes resident in the embedding tables at the loaded precision.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.lookup.resident_bytes()
    }

    /// Serves one micro-batch, writing the per-query click probabilities into
    /// `predictions` (cleared first). After a warm-up call of the same batch
    /// shape, this performs zero heap allocations: pooling, dense input
    /// assembly and every dense-stack intermediate reuse the server's
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] if a query's dense width does not match the
    /// snapshot schema.
    pub fn serve_into(
        &mut self,
        queries: &[Query],
        predictions: &mut Vec<f32>,
    ) -> Result<(), ServeError> {
        let batch = queries.len();
        // One relaxed atomic load when tracing is off (no allocation, no clock
        // read — the name closure never runs), so the zero-alloc guarantee and
        // the disabled-mode ns/request both hold with this compiled in.
        let _span = trace::span(trace::cat::SERVE, || format!("serve {batch}"));
        self.served_queries.add(batch as u64);
        self.served_batches.inc();
        self.lookup.pool_local_into(
            batch,
            |f, s| queries[s].sparse[f].as_slice(),
            &mut self.row_buf,
            &mut self.feature_block,
        )?;
        self.dense_input.reset_to_shape(&[batch, self.num_dense]);
        for (row, q) in self
            .dense_input
            .data_mut()
            .chunks_exact_mut(self.num_dense)
            .zip(queries)
        {
            if q.dense.len() != self.num_dense {
                return Err(ServeError::Config {
                    reason: format!(
                        "query has {} dense features, snapshot expects {}",
                        q.dense.len(),
                        self.num_dense
                    ),
                });
            }
            row.copy_from_slice(&q.dense);
        }
        self.dense.forward_infer(
            &self.dense_input,
            &self.feature_block,
            predictions,
            &mut self.scratch,
        )?;
        Ok(())
    }

    /// [`SingleRankServer::serve_into`] returning a fresh prediction vector —
    /// the convenience form for callers that do not recycle buffers.
    ///
    /// # Errors
    ///
    /// Same as [`SingleRankServer::serve_into`].
    pub fn serve(&mut self, queries: &[Query]) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::with_capacity(queries.len());
        self.serve_into(queries, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeConfig, ServingEngine};
    use dmt_data::ZipfRequestStream;
    use dmt_models::ModelArch;
    use dmt_topology::{ClusterTopology, HardwareGeneration};
    use dmt_trainer::distributed::{run_with_snapshot, DistributedConfig};

    fn baseline_snapshot() -> ModelSnapshot {
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm).with_iterations(1);
        let (_run, snapshot) = run_with_snapshot(&cfg, ExecutionMode::Baseline).unwrap();
        snapshot
    }

    #[test]
    fn predictions_match_the_multi_rank_engine_bit_identically() {
        let snapshot = baseline_snapshot();
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2).unwrap();
        let mut engine = ServingEngine::start(&snapshot, &ServeConfig::new(cluster)).unwrap();
        let mut single = SingleRankServer::from_snapshot(&snapshot, Precision::F32).unwrap();

        let mut stream = ZipfRequestStream::new(snapshot.schema.clone(), 11, 1.1);
        for batch in [1usize, 8, 13] {
            let queries = stream.next_queries(batch);
            let expected = engine.submit(queries.clone()).unwrap();
            let got = single.serve(&queries).unwrap();
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch}");
            }
        }
        let _stats = engine.shutdown();
    }

    #[test]
    fn quantized_precisions_load_and_serve() {
        let snapshot = baseline_snapshot();
        let f32_bytes = SingleRankServer::from_snapshot(&snapshot, Precision::F32)
            .unwrap()
            .resident_bytes();
        for precision in [Precision::Fp16, Precision::Int8] {
            let mut server = SingleRankServer::from_snapshot(&snapshot, precision).unwrap();
            assert_eq!(server.precision(), precision);
            assert!(server.resident_bytes() < f32_bytes);
            let mut stream = ZipfRequestStream::new(snapshot.schema.clone(), 3, 1.1);
            let preds = server.serve(&stream.next_queries(4)).unwrap();
            assert_eq!(preds.len(), 4);
            assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn dmt_snapshots_are_rejected() {
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 2).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm).with_iterations(1);
        let (_run, snapshot) = run_with_snapshot(&cfg, ExecutionMode::Dmt).unwrap();
        assert!(matches!(
            SingleRankServer::from_snapshot(&snapshot, Precision::F32),
            Err(ServeError::Config { .. })
        ));
    }
}
