//! Per-rank peer-health tracking for fault-tolerant serving.
//!
//! Every serving worker keeps a [`HealthView`] of its world: which peers it
//! believes are up, and how many *consecutive* collectives each peer has been
//! implicated in. One missed deposit is suspicion (the peer may just be slow or
//! the timeout may have fired on an unrelated drop); `down_after` consecutive
//! implications is conviction, at which point the caller commits the verdict to
//! the shared rendezvous down-set (`SharedMemoryBackend::mark_down`) so
//! collectives complete without the dead peer.
//!
//! The view is deliberately *local and cheap*: it holds no locks and does no
//! communication. Synchronizing it with the world's shared down-set (which any
//! rank may have updated) is the caller's job, once per batch, via
//! [`HealthView::sync_down`].

/// One rank's local view of which peers are alive.
#[derive(Debug, Clone)]
pub struct HealthView {
    me: usize,
    down: Vec<bool>,
    consecutive: Vec<u32>,
    down_after: u32,
}

impl HealthView {
    /// A fully-healthy view of a `world_size`-rank world as seen from rank `me`.
    /// A peer is marked down after `down_after` consecutive implicated failures
    /// (values below 1 are clamped to 1).
    #[must_use]
    pub fn new(world_size: usize, me: usize, down_after: u32) -> Self {
        Self {
            me,
            down: vec![false; world_size],
            consecutive: vec![0; world_size],
            down_after: down_after.max(1),
        }
    }

    /// The rank whose view this is.
    #[must_use]
    pub fn me(&self) -> usize {
        self.me
    }

    /// Whether `rank` is currently believed down.
    #[must_use]
    pub fn is_down(&self, rank: usize) -> bool {
        self.down.get(rank).copied().unwrap_or(false)
    }

    /// Ranks currently believed down, ascending.
    #[must_use]
    pub fn down_ranks(&self) -> Vec<usize> {
        (0..self.down.len()).filter(|&r| self.down[r]).collect()
    }

    /// Records one failed collective implicating `suspects` (the missing ranks of
    /// a timeout). Returns the ranks that just crossed the `down_after` threshold
    /// and are now considered down — the caller should commit those to the shared
    /// world state.
    pub fn record_failure(&mut self, suspects: &[usize]) -> Vec<usize> {
        let mut newly_down = Vec::new();
        for &rank in suspects {
            if rank >= self.down.len() || self.down[rank] {
                continue;
            }
            self.consecutive[rank] += 1;
            if self.consecutive[rank] >= self.down_after {
                self.down[rank] = true;
                newly_down.push(rank);
            }
        }
        newly_down
    }

    /// Records one successful collective: peers that deposited in time are
    /// exonerated, so every *live* peer's consecutive-failure count resets.
    /// Convicted (down) peers stay down — a collective that completed *without*
    /// them proves nothing about them.
    pub fn record_success(&mut self) {
        for (rank, count) in self.consecutive.iter_mut().enumerate() {
            if !self.down[rank] {
                *count = 0;
            }
        }
    }

    /// Unconditionally marks `rank` down (e.g. the rank reported its own death,
    /// or another rank committed the verdict to the shared down-set).
    pub fn mark_down(&mut self, rank: usize) {
        if rank < self.down.len() {
            self.down[rank] = true;
        }
    }

    /// Readmits `rank` (e.g. a probe found it recovered), clearing its history.
    pub fn mark_up(&mut self, rank: usize) {
        if rank < self.down.len() {
            self.down[rank] = false;
            self.consecutive[rank] = 0;
        }
    }

    /// Adopts the world's shared down-set: `shared_down` ranks become down here,
    /// and ranks this view convicted that the shared set has since readmitted
    /// (a supervisor probe) become up again.
    pub fn sync_down(&mut self, shared_down: &[usize]) {
        for rank in 0..self.down.len() {
            let shared = shared_down.contains(&rank);
            if shared && !self.down[rank] {
                self.mark_down(rank);
            } else if !shared && self.down[rank] {
                self.mark_up(rank);
            }
        }
    }

    /// The first live rank in `candidates` order, if any — the failover chain
    /// walk: `first_live([primary, replica1, replica2])` is the rank a lookup
    /// should be routed to.
    #[must_use]
    pub fn first_live<I: IntoIterator<Item = usize>>(&self, candidates: I) -> Option<usize> {
        candidates.into_iter().find(|&r| !self.is_down(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conviction_needs_consecutive_failures() {
        let mut h = HealthView::new(4, 0, 2);
        assert!(h.record_failure(&[3]).is_empty());
        assert!(!h.is_down(3));
        // An intervening success exonerates the suspect.
        h.record_success();
        assert!(h.record_failure(&[3]).is_empty());
        // Two in a row convict.
        assert_eq!(h.record_failure(&[3]), vec![3]);
        assert!(h.is_down(3));
        // Already-down ranks are not re-reported.
        assert!(h.record_failure(&[3]).is_empty());
    }

    #[test]
    fn success_does_not_exonerate_the_convicted() {
        let mut h = HealthView::new(4, 0, 1);
        assert_eq!(h.record_failure(&[1, 2]), vec![1, 2]);
        h.record_success();
        assert_eq!(h.down_ranks(), vec![1, 2]);
        h.mark_up(1);
        assert_eq!(h.down_ranks(), vec![2]);
    }

    #[test]
    fn sync_adopts_the_shared_view_in_both_directions() {
        let mut h = HealthView::new(4, 0, 1);
        h.mark_down(2);
        h.sync_down(&[1]);
        // 1 adopted down, 2 readmitted (the supervisor probed it back up).
        assert_eq!(h.down_ranks(), vec![1]);
    }

    #[test]
    fn first_live_walks_the_failover_chain() {
        let mut h = HealthView::new(8, 0, 1);
        assert_eq!(h.first_live([2, 6]), Some(2));
        h.mark_down(2);
        assert_eq!(h.first_live([2, 6]), Some(6));
        h.mark_down(6);
        assert_eq!(h.first_live([2, 6]), None);
    }
}
