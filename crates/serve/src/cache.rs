//! Hot-row embedding cache: a requester-side LRU over fetched embedding rows.
//!
//! Serving traffic is Zipf-skewed (see `dmt_data::requests`), so a small cache in
//! front of the sharded lookup absorbs most remote fetches: before a rank routes
//! its `(feature, row)` keys to their owner shards, it peels off the keys it has
//! cached and only the *misses* ride the index/row exchanges. Because serving
//! tables are frozen, a cached row is forever bit-identical to the owner's copy —
//! the cache changes which link a row arrives over, never its value.
//!
//! The cache accounts for its own effect: hits, misses, evictions and the wire
//! bytes saved (`dim × 4` per hit), which the serving report folds into the
//! per-query byte accounting.

use dmt_tensor::quant::{decode_row_f16_into, f32_to_f16_bits, int8_scale, quantize_i8};
use dmt_tensor::Precision;
use std::collections::HashMap;

/// Hit/miss/byte counters of a [`HotRowCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to go to the owner shard.
    pub misses: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows evicted to respect the capacity.
    pub evictions: u64,
    /// Wire bytes avoided by hits (row payload bytes that never hit a link).
    pub saved_bytes: u64,
}

impl CacheStats {
    /// Hit rate over all lookups; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.saved_bytes += other.saved_bytes;
    }

    /// The counters accumulated since `before` was captured (`self - before`,
    /// field-wise). Keeping the subtraction next to the fields means a new
    /// counter cannot be silently left out of a caller's windowed report.
    #[must_use]
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            inserts: self.inserts - before.inserts,
            evictions: self.evictions - before.evictions,
            saved_bytes: self.saved_bytes - before.saved_bytes,
        }
    }
}

/// One cached row at the cache's storage precision.
///
/// fp16 round-trips bit-exactly through re-quantization (decoded values are
/// exactly representable), so a re-inserted fp16 row never drifts. int8 rows
/// carry one fresh per-row scale; re-quantizing an already-dequantized int8
/// row adds at most half an original quantization step.
#[derive(Debug, Clone)]
enum StoredRow {
    /// Full-precision row — the exact bit-identical path.
    F32(Vec<f32>),
    /// IEEE binary16 words.
    F16(Vec<u16>),
    /// Symmetric int8 payload with its per-row scale.
    I8 { q: Vec<i8>, scale: f32 },
}

impl StoredRow {
    fn encode(row: &[f32], precision: Precision) -> Self {
        match precision {
            Precision::F32 => StoredRow::F32(row.to_vec()),
            Precision::Fp16 => StoredRow::F16(row.iter().map(|&v| f32_to_f16_bits(v)).collect()),
            Precision::Int8 => {
                let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let scale = int8_scale(max_abs);
                StoredRow::I8 {
                    q: row.iter().map(|&v| quantize_i8(v, scale)).collect(),
                    scale,
                }
            }
        }
    }

    fn decode_into(&self, out: &mut Vec<f32>) {
        match self {
            StoredRow::F32(row) => out.extend_from_slice(row),
            StoredRow::F16(words) => decode_row_f16_into(words, out),
            StoredRow::I8 { q, scale } => out.extend(q.iter().map(|&v| f32::from(v) * scale)),
        }
    }
}

/// Intrusive doubly-linked LRU slot.
#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    row: StoredRow,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU cache of embedding rows, keyed by the same
/// `(feature, row)` u64 keys the lookup protocol routes
/// ([`dmt_trainer::distributed::model::encode_key`]).
#[derive(Debug, Clone)]
pub struct HotRowCache {
    capacity_rows: usize,
    dim: usize,
    precision: Precision,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot, `NIL` when empty.
    head: usize,
    /// Least recently used slot, `NIL` when empty.
    tail: usize,
    stats: CacheStats,
}

impl HotRowCache {
    /// Creates a cache holding at most `capacity_rows` rows of width `dim`,
    /// stored at full precision. A zero capacity is a valid always-miss cache.
    #[must_use]
    pub fn new(capacity_rows: usize, dim: usize) -> Self {
        Self::with_precision(capacity_rows, dim, Precision::F32)
    }

    /// [`HotRowCache::new`] at a chosen storage precision: cached rows live as
    /// int8/fp16 words, so the same row budget costs proportionally fewer
    /// resident bytes. Hit/saved-byte accounting is unchanged — a hit still
    /// avoids the same `dim × 4` f32 wire bytes whatever the storage format.
    #[must_use]
    pub fn with_precision(capacity_rows: usize, dim: usize, precision: Precision) -> Self {
        Self {
            capacity_rows,
            dim,
            precision,
            map: HashMap::with_capacity(capacity_rows.min(1 << 20)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Maximum rows the cache holds.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Storage precision of the cached rows.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes currently resident in cached row payloads (int8 rows include
    /// their per-row scale word).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        let per_row = match self.precision {
            Precision::F32 => self.dim as u64 * 4,
            Precision::Fp16 => self.dim as u64 * 2,
            Precision::Int8 => self.dim as u64 + 4,
        };
        self.map.len() as u64 * per_row
    }

    /// Rows currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the counters accumulated since the last call, resetting them —
    /// how the engine reports per-batch cache activity.
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Looks `key` up, counting a hit or miss. On a hit the row is appended to
    /// `out` and the entry becomes most-recently-used.
    pub fn lookup_into(&mut self, key: u64, out: &mut Vec<f32>) -> bool {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.stats.saved_bytes += self.dim as u64 * 4;
                self.slots[slot].row.decode_into(out);
                self.touch(slot);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Whether `key` is cached, *without* touching recency or counters.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts (or refreshes) a row, evicting the least-recently-used entries
    /// beyond capacity. A no-op on a zero-capacity cache.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `dim` wide.
    pub fn insert(&mut self, key: u64, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "cached rows must be [dim]");
        if self.capacity_rows == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].row = StoredRow::encode(row, self.precision);
            self.touch(slot);
            return;
        }
        if self.map.len() >= self.capacity_rows {
            self.evict_lru();
        }
        let stored = StoredRow::encode(row, self.precision);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key,
                    row: stored,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key,
                    row: stored,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        self.stats.inserts += 1;
    }

    /// Keys currently cached, most-recently-used first (test/debug helper).
    #[must_use]
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while cursor != NIL {
            keys.push(self.slots[cursor].key);
            cursor = self.slots[cursor].next;
        }
        keys
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as most-recently-used.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves `slot` to most-recently-used.
    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// Removes the least-recently-used entry.
    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict called on an empty cache");
        self.unlink(victim);
        self.map.remove(&self.slots[victim].key);
        self.slots[victim].row = StoredRow::F32(Vec::new());
        self.free.push(victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32, dim: usize) -> Vec<f32> {
        vec![v; dim]
    }

    #[test]
    fn hit_returns_the_inserted_row() {
        let mut cache = HotRowCache::new(4, 3);
        cache.insert(7, &row(1.5, 3));
        let mut out = Vec::new();
        assert!(cache.lookup_into(7, &mut out));
        assert_eq!(out, row(1.5, 3));
        assert!(!cache.lookup_into(8, &mut out));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.saved_bytes, 12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cache = HotRowCache::new(2, 1);
        cache.insert(1, &[1.0]);
        cache.insert(2, &[2.0]);
        // Touch 1 so 2 becomes LRU.
        let mut out = Vec::new();
        assert!(cache.lookup_into(1, &mut out));
        cache.insert(3, &[3.0]);
        assert!(cache.contains(1) && cache.contains(3) && !cache.contains(2));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.keys_by_recency(), vec![3, 1]);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut cache = HotRowCache::new(3, 2);
        for k in 0..50u64 {
            cache.insert(k, &row(k as f32, 2));
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 47);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut cache = HotRowCache::new(0, 2);
        cache.insert(1, &row(1.0, 2));
        let mut out = Vec::new();
        assert!(!cache.lookup_into(1, &mut out));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().inserts, 0);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut cache = HotRowCache::new(2, 1);
        cache.insert(1, &[1.0]);
        cache.insert(2, &[2.0]);
        cache.insert(1, &[1.5]);
        cache.insert(3, &[3.0]); // evicts 2, not 1
        let mut out = Vec::new();
        assert!(cache.lookup_into(1, &mut out));
        assert_eq!(out, vec![1.5]);
        assert!(!cache.contains(2));
    }

    #[test]
    fn take_stats_resets_the_window() {
        let mut cache = HotRowCache::new(2, 1);
        cache.insert(1, &[1.0]);
        let mut out = Vec::new();
        let _ = cache.lookup_into(1, &mut out);
        let first = cache.take_stats();
        assert_eq!(first.hits, 1);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn quantized_storage_shrinks_resident_bytes() {
        let dim = 32;
        let source: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.31).sin() * 3.0).collect();
        let f32_bytes = {
            let mut c = HotRowCache::new(8, dim);
            c.insert(1, &source);
            c.resident_bytes()
        };
        assert_eq!(f32_bytes, dim as u64 * 4);
        for (precision, expected) in [
            (Precision::Fp16, dim as u64 * 2),
            (Precision::Int8, dim as u64 + 4),
        ] {
            let mut c = HotRowCache::with_precision(8, dim, precision);
            assert_eq!(c.precision(), precision);
            c.insert(1, &source);
            assert_eq!(c.resident_bytes(), expected);
            let mut out = Vec::new();
            assert!(c.lookup_into(1, &mut out));
            assert_eq!(out.len(), dim);
            let tol = precision.max_abs_error(3.0);
            for (got, want) in out.iter().zip(&source) {
                assert!((got - want).abs() <= tol, "{precision}: {got} vs {want}");
            }
            // Hit accounting is storage-independent: a hit saves f32 wire bytes.
            assert_eq!(c.stats().saved_bytes, dim as u64 * 4);
        }
    }

    #[test]
    fn fp16_rows_round_trip_bit_exactly_through_reinsert() {
        let dim = 8;
        let source: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.77).cos()).collect();
        let mut c = HotRowCache::with_precision(4, dim, Precision::Fp16);
        c.insert(1, &source);
        let mut first = Vec::new();
        assert!(c.lookup_into(1, &mut first));
        // Re-inserting the decoded row must not drift: decoded fp16 values are
        // exactly representable, so re-quantization is idempotent.
        c.insert(1, &first);
        let mut second = Vec::new();
        assert!(c.lookup_into(1, &mut second));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            inserts: 3,
            evictions: 4,
            saved_bytes: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.saved_bytes, 10);
        assert!((a.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
