//! `dmt-serve` — disaggregated online inference for the DMT reproduction.
//!
//! Training proves the paper's topology argument on the gradient path; this crate
//! proves it on the **query path**. It loads a frozen
//! [`dmt_trainer::distributed::ModelSnapshot`] (exported by
//! `dmt_trainer::distributed::run_with_snapshot`) and serves it with the same two
//! deployments the trainer measures, over the same executable fabric
//! (`dmt-comm` collectives, `FabricProfile` pacing, per-link-class byte
//! accounting against the `ClusterTopology`):
//!
//! * **Baseline serving** — embedding tables row-sharded across *all* ranks; every
//!   batch pays a global index + row AlltoAll before the replicated dense forward.
//! * **DMT serving** — the SPTT flow: peer index distribution, *intra-host*
//!   sharded lookup, tower-module compression, and only the small tower outputs
//!   cross hosts.
//!
//! Four serving-specific pieces wrap the engine:
//!
//! * [`MicroBatcher`] — admission control with **size** and **deadline** batch
//!   close triggers (throughput under load, bounded latency under trickle).
//! * [`HotRowCache`] — a per-rank LRU over fetched embedding rows; on the
//!   Zipf-skewed request streams of `dmt_data::requests` it absorbs most remote
//!   fetches and its savings show up directly in the wire-byte accounting.
//! * [`serve_stream`] — the frontend loop: drives a query stream through batcher
//!   and engine and reports per-request p50/p95/p99 latency
//!   ([`dmt_metrics::LatencyPercentiles`]), throughput, trigger counts and bytes
//!   per query.
//! * **Fault tolerance** — [`ReplicatedAnswerer`] keeps `replicas` cross-host
//!   copies of every embedding shard, [`HealthView`] convicts dead peers from
//!   consecutive collective timeouts, and the baseline engine retries transient
//!   faults, fails lookups over to replica holders (bit-identically), and
//!   either errors or zero-fills ([`DegradedPolicy`]) rows with no live holder.
//!   Faults are injected deterministically via [`dmt_comm::FaultProfile`].
//!
//! Served predictions are **bit-identical** to a forward pass through the
//! training-side model over the same sub-batches: the engine reuses the trainer's
//! `ShardedLookup` protocol and `DenseStack` float path rather than
//! reimplementing them (see the workspace `serving` tests).
//!
//! # Example
//!
//! ```
//! use dmt_models::ModelArch;
//! use dmt_serve::{ServeConfig, ServingEngine};
//! use dmt_topology::{ClusterTopology, HardwareGeneration};
//! use dmt_trainer::distributed::{run_with_snapshot, DistributedConfig, ExecutionMode};
//!
//! let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2)?;
//! let train = DistributedConfig::quick(cluster.clone(), ModelArch::Dlrm).with_iterations(1);
//! let (_run, snapshot) = run_with_snapshot(&train, ExecutionMode::Baseline)?;
//! let mut engine = ServingEngine::start(&snapshot, &ServeConfig::new(cluster))?;
//! let mut stream = dmt_data::ZipfRequestStream::new(snapshot.schema.clone(), 1, 1.1);
//! let preds = engine.submit(stream.next_queries(8))?;
//! assert_eq!(preds.len(), 8);
//! assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod frontend;
pub mod health;
pub mod replica;

pub use batcher::{BatcherConfig, MicroBatcher};
pub use cache::{CacheStats, HotRowCache};
pub use engine::{ServeStats, ServingEngine};
pub use frontend::{serve_stream, ServeReport, StreamConfig};
pub use health::HealthView;
pub use replica::ReplicatedAnswerer;

use dmt_comm::{CommError, FabricProfile, FaultProfile};
use dmt_tensor::TensorError;
use dmt_topology::ClusterTopology;
use dmt_trainer::distributed::DistributedError;
use std::time::Duration;

/// What a baseline serving rank does with a requested row whose owner *and*
/// every replica holder are down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Fail the batch with [`ServeError::Unavailable`] — correctness over
    /// availability (the default).
    #[default]
    Error,
    /// Answer anyway with zero embeddings for the lost rows, counting every
    /// affected query in `ServeStats::degraded_answers` — availability over
    /// correctness. Zero-filled rows are never fed into the hot-row cache.
    ZeroFill,
}

/// Configuration of a serving deployment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cluster the rank worker threads are mapped onto.
    pub cluster: ClusterTopology,
    /// Fabric pacing applied to every collective on the query path.
    pub fabric: FabricProfile,
    /// Per-rank hot-row cache capacity in rows (0 disables the cache).
    pub cache_rows: usize,
    /// Cross-host replicas kept of every embedding shard (0 disables
    /// replication and failover; baseline serving only).
    pub replicas: usize,
    /// Deterministic fault schedule injected into every rank's collectives
    /// ([`FaultProfile::none`] injects nothing).
    pub faults: FaultProfile,
    /// Per-collective rendezvous deadline; `None` waits forever. Required for
    /// fault tolerance — without it a dead peer blocks instead of timing out.
    pub op_timeout: Option<Duration>,
    /// Retries of a transiently-failed collective before the batch errors.
    pub max_retries: u32,
    /// Pause between those retries.
    pub retry_backoff: Duration,
    /// Consecutive implicated timeouts before a peer is marked down.
    pub down_after: u32,
    /// Dispatcher probe cadence in submissions (failed batches count): every so
    /// many submitted batches, dead ranks the fault schedule does not hold
    /// permanently down are readmitted (0 disables probing).
    pub probe_every_batches: u64,
    /// Policy for rows whose owner and every replica holder are down.
    pub degraded: DegradedPolicy,
}

impl ServeConfig {
    /// A configuration over `cluster` with an unthrottled fabric, a modest
    /// per-rank cache (1024 rows), and fault tolerance disabled: no
    /// replication, no injected faults, no collective deadline.
    #[must_use]
    pub fn new(cluster: ClusterTopology) -> Self {
        Self {
            cluster,
            fabric: FabricProfile::unthrottled(),
            cache_rows: 1024,
            replicas: 0,
            faults: FaultProfile::none(),
            op_timeout: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            down_after: 1,
            probe_every_batches: 0,
            degraded: DegradedPolicy::Error,
        }
    }

    /// Overrides the fabric profile.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricProfile) -> Self {
        self.fabric = fabric;
        self
    }

    /// Overrides the per-rank hot-row cache capacity (0 disables the cache).
    #[must_use]
    pub fn with_cache_rows(mut self, cache_rows: usize) -> Self {
        self.cache_rows = cache_rows;
        self
    }

    /// Keeps `replicas` cross-host copies of every embedding shard and fails
    /// lookups over to them when the owner dies (baseline serving only).
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Injects a deterministic fault schedule into every rank's collectives.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Bounds every collective's rendezvous wait, turning dead peers into
    /// observable [`CommError::Timeout`]s.
    #[must_use]
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = Some(timeout);
        self
    }

    /// Overrides the transient-fault retry policy.
    #[must_use]
    pub fn with_retry(mut self, max_retries: u32, backoff: Duration) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = backoff;
        self
    }

    /// Overrides how many consecutive implicated timeouts convict a peer.
    #[must_use]
    pub fn with_down_after(mut self, down_after: u32) -> Self {
        self.down_after = down_after;
        self
    }

    /// Probes dead ranks back into service every `batches` submitted batches,
    /// failed ones included (skipping ranks the fault schedule holds
    /// permanently down).
    #[must_use]
    pub fn with_probe_every(mut self, batches: u64) -> Self {
        self.probe_every_batches = batches;
        self
    }

    /// Overrides the no-live-holder policy.
    #[must_use]
    pub fn with_degraded(mut self, degraded: DegradedPolicy) -> Self {
        self.degraded = degraded;
        self
    }
}

/// Errors surfaced by the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// The snapshot or configuration cannot be served.
    Config {
        /// Explanation of the problem.
        reason: String,
    },
    /// A collective failed on the query path.
    Comm(CommError),
    /// A shape mismatch inside a rank's local compute.
    Tensor(TensorError),
    /// A rank worker failed or disappeared.
    Rank {
        /// The rank that failed.
        rank: usize,
        /// Failure description.
        message: String,
    },
    /// Requested rows whose owner and every replica holder are down, under
    /// [`DegradedPolicy::Error`].
    Unavailable {
        /// Distinct lost rows in the failed batch.
        rows: usize,
    },
}

impl ServeError {
    /// Whether this error is a secondary "world aborted" cascade rather than a
    /// root cause.
    #[must_use]
    pub fn is_abort_cascade(&self) -> bool {
        matches!(self, ServeError::Comm(CommError::Aborted))
    }

    /// Whether this error is a *fault* — a dead, stalled or unreachable rank —
    /// rather than a configuration or compute failure. Fault errors leave the
    /// engine serviceable: the dispatcher excludes the dead rank and keeps
    /// answering instead of poisoning itself.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            ServeError::Comm(CommError::RankDown { .. })
                | ServeError::Comm(CommError::Timeout { .. })
                | ServeError::Unavailable { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { reason } => write!(f, "invalid serving configuration: {reason}"),
            ServeError::Comm(e) => write!(f, "serving collective failed: {e}"),
            ServeError::Tensor(e) => write!(f, "serving tensor error: {e}"),
            ServeError::Rank { rank, message } => {
                write!(f, "serving rank {rank} failed: {message}")
            }
            ServeError::Unavailable { rows } => {
                write!(f, "{rows} requested rows have no live owner or replica")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CommError> for ServeError {
    fn from(value: CommError) -> Self {
        ServeError::Comm(value)
    }
}

impl From<TensorError> for ServeError {
    fn from(value: TensorError) -> Self {
        ServeError::Tensor(value)
    }
}

impl From<DistributedError> for ServeError {
    fn from(value: DistributedError) -> Self {
        match value {
            DistributedError::Comm(e) => ServeError::Comm(e),
            DistributedError::Tensor(e) => ServeError::Tensor(e),
            other => ServeError::Config {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::Config {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e = ServeError::Rank {
            rank: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("boom"));
        assert!(ServeError::Comm(CommError::Aborted).is_abort_cascade());
        assert!(!ServeError::Comm(CommError::EmptyWorld).is_abort_cascade());
    }

    #[test]
    fn fault_errors_are_exactly_the_liveness_failures() {
        assert!(ServeError::Comm(CommError::RankDown { rank: 2 }).is_fault());
        assert!(ServeError::Unavailable { rows: 3 }.is_fault());
        assert!(!ServeError::Comm(CommError::Aborted).is_fault());
        assert!(!ServeError::Config { reason: "x".into() }.is_fault());
        let e = ServeError::Unavailable { rows: 3 };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn config_builders_override_fields() {
        use dmt_topology::{ClusterTopology, HardwareGeneration};
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 1).unwrap();
        let cfg = ServeConfig::new(cluster).with_cache_rows(7);
        assert_eq!(cfg.cache_rows, 7);
    }
}
