//! `dmt-serve` — disaggregated online inference for the DMT reproduction.
//!
//! Training proves the paper's topology argument on the gradient path; this crate
//! proves it on the **query path**. It loads a frozen
//! [`dmt_trainer::distributed::ModelSnapshot`] (exported by
//! `dmt_trainer::distributed::run_with_snapshot`) and serves it with the same two
//! deployments the trainer measures, over the same executable fabric
//! (`dmt-comm` collectives, `FabricProfile` pacing, per-link-class byte
//! accounting against the `ClusterTopology`):
//!
//! * **Baseline serving** — embedding tables row-sharded across *all* ranks; every
//!   batch pays a global index + row AlltoAll before the replicated dense forward.
//! * **DMT serving** — the SPTT flow: peer index distribution, *intra-host*
//!   sharded lookup, tower-module compression, and only the small tower outputs
//!   cross hosts.
//!
//! On top of the colocated [`ServingEngine`], the crate provides a
//! **stage-disaggregated** deployment and the SLO machinery around it:
//!
//! * [`StagedEngine`] — embedding-lookup ranks and dense-compute ranks as
//!   *separate stage pools* with independent world sizes, joined by an explicit
//!   bounded rate-matching queue (see [`stage`]).
//! * [`Request`] / [`Priority`] — the deadline- and priority-tagged request
//!   lifecycle; deadlines flow from admission through the [`MicroBatcher`]'s
//!   per-item close deadlines to completion.
//! * [`AdmissionController`] — bounded queue occupancy with nested priority
//!   watermarks and deadline-budget feasibility; a refused request is a fast,
//!   observable [`ServeError::Shed`], never a timeout.
//! * [`harness`] — an open-loop load harness ([`run_load`]): Poisson or
//!   periodic arrivals at controlled rates, **sojourn-time** latency (queueing
//!   included), and rate sweeps for max-QPS-under-SLO capacity measurement.
//! * [`MicroBatcher`] — size- and deadline-triggered batch close.
//! * [`HotRowCache`] — a per-rank LRU over fetched embedding rows; on the
//!   Zipf-skewed request streams of `dmt_data::requests` it absorbs most remote
//!   fetches and its savings show up directly in the wire-byte accounting.
//! * [`serve_stream`] — the closed/paced frontend loop over the colocated
//!   engine, reporting per-request p50/p95/p99 latency
//!   ([`dmt_metrics::LatencyPercentiles`]) with the same sojourn-time semantics
//!   as the load harness.
//! * **Fault tolerance** — [`ReplicatedAnswerer`] keeps `replicas` cross-host
//!   copies of every embedding shard, [`HealthView`] convicts dead peers from
//!   consecutive collective timeouts, and the baseline engine retries transient
//!   faults, fails lookups over to replica holders (bit-identically), and
//!   either errors or zero-fills ([`DegradedPolicy`]) rows with no live holder.
//!   Faults are injected deterministically via [`dmt_comm::FaultProfile`].
//! * **Quantized compute** — [`ServeConfig::precision`] switches the whole
//!   forward pass to int8 or fp16 storage: embedding shards and replicas are
//!   quantized once at load time ([`dmt_nn::QuantizedShardedTable`]), the
//!   hot-row cache stores quantized rows, and the dense stack runs through the
//!   SIMD int8 / fp16 GEMM kernels. F32 keeps the exact bit-identical path.
//!
//! Served predictions are **bit-identical** to a forward pass through the
//! training-side model over the same sub-batches: the engine reuses the trainer's
//! `ShardedLookup` protocol and `DenseStack` float path rather than
//! reimplementing them (see the workspace `serving` tests).
//!
//! # Example
//!
//! ```
//! use dmt_models::ModelArch;
//! use dmt_serve::{ServeConfig, ServingEngine};
//! use dmt_topology::{ClusterTopology, HardwareGeneration};
//! use dmt_trainer::distributed::{run_with_snapshot, DistributedConfig, ExecutionMode};
//!
//! let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2)?;
//! let train = DistributedConfig::quick(cluster.clone(), ModelArch::Dlrm).with_iterations(1);
//! let (_run, snapshot) = run_with_snapshot(&train, ExecutionMode::Baseline)?;
//! let mut engine = ServingEngine::start(&snapshot, &ServeConfig::new(cluster))?;
//! let mut stream = dmt_data::ZipfRequestStream::new(snapshot.schema.clone(), 1, 1.1);
//! let preds = engine.submit(stream.next_queries(8))?;
//! assert_eq!(preds.len(), 8);
//! assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod cache;
pub mod engine;
pub mod frontend;
pub mod harness;
pub mod health;
pub mod replica;
pub mod request;
pub mod single;
pub mod stage;

pub use admission::{batcher_close_by, AdmissionController};
pub use batcher::{BatcherConfig, MicroBatcher};
pub use cache::{CacheStats, HotRowCache};
pub use engine::{ServeStats, ServingEngine};
pub use frontend::{serve_stream, ServeReport, StreamConfig};
pub use harness::{
    max_qps_under_slo, run_load, sweep_rates, ArrivalProcess, LoadConfig, LoadReport,
};
pub use health::HealthView;
pub use replica::ReplicatedAnswerer;
pub use request::{Priority, Request, ShedReason, NO_DEADLINE};
pub use single::SingleRankServer;
pub use stage::{CompletedRequest, StagePools, StageStats, StagedEngine};

/// Storage/compute precision of a serving deployment's forward pass
/// (re-export of [`dmt_tensor::Precision`]; see [`ServeConfig::precision`]).
pub use dmt_tensor::Precision as ComputePrecision;

use dmt_comm::{CommError, FabricProfile, FaultProfile};
use dmt_tensor::TensorError;
use dmt_topology::ClusterTopology;
use dmt_trainer::distributed::DistributedError;
use std::time::Duration;

/// What a baseline serving rank does with a requested row whose owner *and*
/// every replica holder are down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Fail the batch with [`ServeError::Unavailable`] — correctness over
    /// availability (the default).
    #[default]
    Error,
    /// Answer anyway with zero embeddings for the lost rows, counting every
    /// affected query in `ServeStats::degraded_answers` — availability over
    /// correctness. Zero-filled rows are never fed into the hot-row cache.
    ZeroFill,
}

/// Micro-batching and hot-row cache policy of a serving deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Size trigger: a batch closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// Deadline trigger, in microseconds: how long a queued request may wait
    /// for its batch to fill before the batch closes anyway.
    pub max_delay_us: u64,
    /// Per-rank hot-row cache capacity in rows (0 disables the cache).
    pub cache_rows: usize,
}

impl Default for BatchConfig {
    /// 32-deep batches, a 2ms close deadline and a modest 1024-row cache.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay_us: 2_000,
            cache_rows: 1024,
        }
    }
}

impl BatchConfig {
    /// The batcher policy slice of this config.
    #[must_use]
    pub fn batcher(&self) -> BatcherConfig {
        BatcherConfig::new(self.max_batch, self.max_delay_us)
    }
}

/// Fault-tolerance policy of a serving deployment: replication, retries,
/// health conviction, probing and the degraded-answer fallback.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Cross-host replicas kept of every embedding shard (0 disables
    /// replication and failover; baseline serving only).
    pub replicas: usize,
    /// Deterministic fault schedule injected into every rank's collectives
    /// ([`FaultProfile::none`] injects nothing).
    pub faults: FaultProfile,
    /// Per-collective rendezvous deadline; `None` waits forever. Required for
    /// fault tolerance — without it a dead peer blocks instead of timing out.
    pub op_timeout: Option<Duration>,
    /// Retries of a transiently-failed collective before the batch errors.
    pub max_retries: u32,
    /// Pause between those retries.
    pub retry_backoff: Duration,
    /// Consecutive implicated timeouts before a peer is marked down.
    pub down_after: u32,
    /// Dispatcher probe cadence in submissions (failed batches count): every so
    /// many submitted batches, dead ranks the fault schedule does not hold
    /// permanently down are readmitted (0 disables probing).
    pub probe_every_batches: u64,
    /// Policy for rows whose owner and every replica holder are down.
    pub degraded: DegradedPolicy,
}

impl Default for ResilienceConfig {
    /// Fault tolerance disabled: no replication, no injected faults, no
    /// collective deadline, two quick retries.
    fn default() -> Self {
        Self {
            replicas: 0,
            faults: FaultProfile::none(),
            op_timeout: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            down_after: 1,
            probe_every_batches: 0,
            degraded: DegradedPolicy::Error,
        }
    }
}

/// Deadline, queue-bound and priority policy of a serving deployment — what
/// the [`AdmissionController`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Default per-request completion budget in microseconds, applied by the
    /// load harness when building requests ([`NO_DEADLINE`] = none).
    pub deadline_us: u64,
    /// Queue occupancy bound in *queries* (admitted and not yet completed).
    /// Priority classes get nested watermarks of this bound
    /// ([`AdmissionController::bound_of`]).
    pub queue_bound: usize,
    /// Admission's estimate of time-to-answer in microseconds: requests whose
    /// remaining deadline budget is below it are shed as infeasible, and
    /// batcher close deadlines leave this much slack before the deadline.
    pub service_estimate_us: u64,
    /// Whether admission sheds at all; `false` admits everything (the legacy
    /// behavior) while still tracking occupancy.
    pub shed: bool,
    /// Depth, in batches, of the bounded rate-matching queue between the
    /// lookup stage pool and the dense stage pool of a [`StagedEngine`].
    pub stage_queue: usize,
}

impl Default for SloConfig {
    /// No deadlines, no shedding, a 4096-query occupancy gauge and a 4-batch
    /// rate-matching queue.
    fn default() -> Self {
        Self {
            deadline_us: NO_DEADLINE,
            queue_bound: 4_096,
            service_estimate_us: 0,
            shed: false,
            stage_queue: 4,
        }
    }
}

/// Configuration of a serving deployment, grouped into typed sub-configs:
/// [`BatchConfig`] (batching + cache), [`ResilienceConfig`] (faults, retry,
/// health, degraded mode) and [`SloConfig`] (deadlines, queue bound,
/// priorities).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cluster the rank worker threads are mapped onto.
    pub cluster: ClusterTopology,
    /// Fabric pacing applied to every collective on the query path.
    pub fabric: FabricProfile,
    /// Micro-batching and hot-row cache policy.
    pub batch: BatchConfig,
    /// Fault-tolerance policy.
    pub resilience: ResilienceConfig,
    /// Deadline / queue-bound / priority policy.
    pub slo: SloConfig,
    /// Storage/compute precision of the serving forward pass: embedding
    /// shards, replica shards, hot-row cache entries and dense weights all
    /// live at this precision ([`ComputePrecision::F32`] is the exact
    /// bit-identical-to-training path).
    pub precision: ComputePrecision,
}

impl ServeConfig {
    /// A configuration over `cluster` with an unthrottled fabric and every
    /// sub-config at its default: a modest cache, fault tolerance disabled,
    /// no deadlines or shedding.
    #[must_use]
    pub fn new(cluster: ClusterTopology) -> Self {
        Self {
            cluster,
            fabric: FabricProfile::unthrottled(),
            batch: BatchConfig::default(),
            resilience: ResilienceConfig::default(),
            slo: SloConfig::default(),
            precision: ComputePrecision::F32,
        }
    }

    /// Overrides the fabric profile.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricProfile) -> Self {
        self.fabric = fabric;
        self
    }

    /// Replaces the batching/cache sub-config.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Replaces the fault-tolerance sub-config.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Replaces the SLO sub-config.
    #[must_use]
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// Overrides the compute precision of the whole serving forward pass.
    #[must_use]
    pub fn with_precision(mut self, precision: ComputePrecision) -> Self {
        self.precision = precision;
        self
    }
}

/// Errors surfaced by the serving engine.
///
/// Marked `#[non_exhaustive]` (matching [`CommError`]): downstream matches
/// must carry a wildcard arm, so new failure classes can be added without a
/// breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The snapshot or configuration cannot be served.
    Config {
        /// Explanation of the problem.
        reason: String,
    },
    /// A collective failed on the query path.
    Comm(CommError),
    /// A shape mismatch inside a rank's local compute.
    Tensor(TensorError),
    /// A rank worker failed or disappeared.
    Rank {
        /// The rank that failed.
        rank: usize,
        /// Failure description.
        message: String,
    },
    /// Requested rows whose owner and every replica holder are down, under
    /// [`DegradedPolicy::Error`].
    Unavailable {
        /// Distinct lost rows in the failed batch.
        rows: usize,
    },
    /// The admission controller refused the request — load was shed *before*
    /// any batching or collective work, so refusal is immediate and the
    /// request never consumed pipeline capacity.
    Shed {
        /// Why admission refused.
        reason: ShedReason,
        /// The refused request's priority class.
        priority: Priority,
    },
}

impl ServeError {
    /// Whether this error is a secondary "world aborted" cascade rather than a
    /// root cause.
    #[must_use]
    pub fn is_abort_cascade(&self) -> bool {
        matches!(self, ServeError::Comm(CommError::Aborted))
    }

    /// Whether this error is a *fault* — a dead, stalled or unreachable rank —
    /// rather than a configuration or compute failure. Fault errors leave the
    /// engine serviceable: the dispatcher excludes the dead rank and keeps
    /// answering instead of poisoning itself.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            ServeError::Comm(CommError::RankDown { .. })
                | ServeError::Comm(CommError::Timeout { .. })
                | ServeError::Unavailable { .. }
        )
    }

    /// Whether this error is transient — retrying the same operation can
    /// succeed (passthrough of [`CommError::is_transient`]). Shed requests are
    /// *not* transient at the engine's timescale: the caller should back off,
    /// not re-offer immediately.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Comm(e) if e.is_transient())
    }

    /// Whether this request was refused by admission control rather than
    /// failed by the pipeline.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeError::Shed { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { reason } => write!(f, "invalid serving configuration: {reason}"),
            ServeError::Comm(e) => write!(f, "serving collective failed: {e}"),
            ServeError::Tensor(e) => write!(f, "serving tensor error: {e}"),
            ServeError::Rank { rank, message } => {
                write!(f, "serving rank {rank} failed: {message}")
            }
            ServeError::Unavailable { rows } => {
                write!(f, "{rows} requested rows have no live owner or replica")
            }
            ServeError::Shed { reason, priority } => {
                write!(f, "request shed ({priority} priority): {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CommError> for ServeError {
    fn from(value: CommError) -> Self {
        ServeError::Comm(value)
    }
}

impl From<TensorError> for ServeError {
    fn from(value: TensorError) -> Self {
        ServeError::Tensor(value)
    }
}

impl From<DistributedError> for ServeError {
    fn from(value: DistributedError) -> Self {
        match value {
            DistributedError::Comm(e) => ServeError::Comm(e),
            DistributedError::Tensor(e) => ServeError::Tensor(e),
            other => ServeError::Config {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::Config {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e = ServeError::Rank {
            rank: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("boom"));
        assert!(ServeError::Comm(CommError::Aborted).is_abort_cascade());
        assert!(!ServeError::Comm(CommError::EmptyWorld).is_abort_cascade());
    }

    #[test]
    fn fault_errors_are_exactly_the_liveness_failures() {
        assert!(ServeError::Comm(CommError::RankDown { rank: 2 }).is_fault());
        assert!(ServeError::Unavailable { rows: 3 }.is_fault());
        assert!(!ServeError::Comm(CommError::Aborted).is_fault());
        assert!(!ServeError::Config { reason: "x".into() }.is_fault());
        let e = ServeError::Unavailable { rows: 3 };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn shed_errors_are_shed_not_faults_not_transient() {
        let e = ServeError::Shed {
            reason: ShedReason::QueueFull {
                occupancy: 10,
                bound: 8,
            },
            priority: Priority::Low,
        };
        assert!(e.is_shed());
        assert!(!e.is_fault());
        assert!(!e.is_transient());
        assert!(e.to_string().contains("low"));
        assert!(!ServeError::Unavailable { rows: 1 }.is_shed());
    }

    #[test]
    fn transient_mirrors_comm_error() {
        let timeout = CommError::Timeout {
            op: dmt_comm::CommOp::AllToAll,
            waited_ms: 5,
            missing: vec![1],
        };
        assert!(ServeError::Comm(timeout).is_transient());
        assert!(!ServeError::Comm(CommError::Aborted).is_transient());
        assert!(!ServeError::Config { reason: "x".into() }.is_transient());
    }

    #[test]
    fn config_builders_override_fields() {
        use dmt_topology::{ClusterTopology, HardwareGeneration};
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 1).unwrap();
        let cfg = ServeConfig::new(cluster).with_batch(BatchConfig {
            cache_rows: 7,
            ..BatchConfig::default()
        });
        assert_eq!(cfg.batch.cache_rows, 7);
        let slo = SloConfig {
            queue_bound: 9,
            shed: true,
            ..SloConfig::default()
        };
        let cfg = cfg.with_slo(slo);
        assert_eq!(cfg.slo.queue_bound, 9);
    }

    #[test]
    fn precision_defaults_to_f32_and_overrides() {
        use dmt_topology::{ClusterTopology, HardwareGeneration};
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2).unwrap();
        let cfg = ServeConfig::new(cluster);
        assert!(cfg.precision.is_f32());
        let cfg = cfg.with_precision(ComputePrecision::Int8);
        assert_eq!(cfg.precision, ComputePrecision::Int8);
    }
}
