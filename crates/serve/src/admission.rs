//! SLO-aware admission control: bounded queue occupancy, priority-watermarked
//! load shedding and deadline-budget feasibility.
//!
//! The controller sits in front of the micro-batcher and decides, at the
//! instant a [`crate::Request`] arrives, whether the system can still answer
//! it. A refusal is a fast, observable [`crate::ServeError::Shed`] — never a
//! timeout discovered milliseconds later. Two tests gate admission:
//!
//! * **Occupancy** — queries admitted and not yet completed may never exceed
//!   the configured bound. Each [`Priority`] class gets a nested watermark
//!   (`Low` 50%, `Standard` 75%, `High` 100% of the bound), so as occupancy
//!   climbs, low-priority traffic is shed strictly before any high-priority
//!   request is refused: at any instant where a high-priority request is shed
//!   for occupancy, every lower class would have been shed too.
//! * **Deadline feasibility** — a request whose remaining budget is already
//!   smaller than the configured service estimate is shed immediately,
//!   whatever its priority: admitting it could only waste capacity on an
//!   answer that arrives too late.
//!
//! Like the batcher, the controller is pure data + virtual time (microsecond
//! ticks supplied by the caller), so the invariants above are directly
//! property-testable (see the workspace `admission_props` tests); the staged
//! engine drives it with its real clock.

use crate::request::{Priority, ShedReason, NO_DEADLINE};
use crate::{ServeError, SloConfig};

/// Nested occupancy watermark of a priority class, in percent of the bound.
fn watermark_percent(priority: Priority) -> usize {
    match priority {
        Priority::Low => 50,
        Priority::Standard => 75,
        Priority::High => 100,
    }
}

/// The admission decision state: occupancy, per-class shed counters and the
/// SLO knobs they are judged against.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    queue_bound: usize,
    service_estimate_us: u64,
    shed: bool,
    occupancy: usize,
    max_occupancy: usize,
    admitted: [u64; 3],
    shed_counts: [u64; 3],
}

impl AdmissionController {
    /// A controller enforcing `slo`'s queue bound and deadline budget. With
    /// `slo.shed == false` every request is admitted (the legacy behavior) and
    /// only the occupancy gauge is maintained.
    #[must_use]
    pub fn new(slo: &SloConfig) -> Self {
        Self {
            queue_bound: slo.queue_bound,
            service_estimate_us: slo.service_estimate_us,
            shed: slo.shed,
            occupancy: 0,
            max_occupancy: 0,
            admitted: [0; 3],
            shed_counts: [0; 3],
        }
    }

    /// Queries admitted and not yet completed.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// The highest occupancy ever reached — with shedding enabled this never
    /// exceeds [`AdmissionController::bound_of`] `(Priority::High)`.
    #[must_use]
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// The occupancy watermark of `priority`: admitting a request of this
    /// class may not push occupancy past it. Watermarks are nested
    /// (`bound_of(Low) <= bound_of(Standard) <= bound_of(High)`), which is the
    /// structural guarantee that low-priority traffic sheds first. Unlimited
    /// when shedding is disabled.
    #[must_use]
    pub fn bound_of(&self, priority: Priority) -> usize {
        if !self.shed {
            return usize::MAX;
        }
        // ceil-free scaled bound; High is exactly the configured bound.
        self.queue_bound / 100 * watermark_percent(priority)
            + self.queue_bound % 100 * watermark_percent(priority) / 100
    }

    /// Requests of `priority` shed so far.
    #[must_use]
    pub fn shed_count(&self, priority: Priority) -> u64 {
        self.shed_counts[priority.index()]
    }

    /// Requests of `priority` admitted so far.
    #[must_use]
    pub fn admitted_count(&self, priority: Priority) -> u64 {
        self.admitted[priority.index()]
    }

    /// Total requests shed, all classes.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed_counts.iter().sum()
    }

    /// Whether a request of `queries` queries at `priority` with absolute
    /// deadline `deadline_us` would be shed at tick `now_us`, without changing
    /// any state. [`AdmissionController::try_admit`] admits iff this returns
    /// `None`.
    #[must_use]
    pub fn would_shed(
        &self,
        now_us: u64,
        queries: usize,
        deadline_us: u64,
        priority: Priority,
    ) -> Option<ShedReason> {
        if !self.shed {
            return None;
        }
        if deadline_us != NO_DEADLINE {
            let slack_us = deadline_us.saturating_sub(now_us);
            if slack_us < self.service_estimate_us {
                return Some(ShedReason::DeadlineInfeasible {
                    slack_us,
                    needed_us: self.service_estimate_us,
                });
            }
        }
        let bound = self.bound_of(priority);
        if self.occupancy.saturating_add(queries) > bound {
            return Some(ShedReason::QueueFull {
                occupancy: self.occupancy,
                bound,
            });
        }
        None
    }

    /// Decides on a request of `queries` queries at tick `now_us`. On
    /// admission the queries join the occupancy count (released by
    /// [`AdmissionController::release`] at completion); on refusal nothing
    /// changes except the shed counter, and the error carries the reason.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shed`] when the request is refused.
    pub fn try_admit(
        &mut self,
        now_us: u64,
        queries: usize,
        deadline_us: u64,
        priority: Priority,
    ) -> Result<(), ServeError> {
        if let Some(reason) = self.would_shed(now_us, queries, deadline_us, priority) {
            self.shed_counts[priority.index()] += 1;
            return Err(ServeError::Shed { reason, priority });
        }
        self.occupancy += queries;
        self.max_occupancy = self.max_occupancy.max(self.occupancy);
        self.admitted[priority.index()] += 1;
        Ok(())
    }

    /// Returns `queries` completed queries to the occupancy budget.
    pub fn release(&mut self, queries: usize) {
        debug_assert!(queries <= self.occupancy, "released more than admitted");
        self.occupancy = self.occupancy.saturating_sub(queries);
    }
}

/// The batcher close deadline of an admitted request: the earlier of the
/// batching delay (`arrival + max_delay`) and the latest instant the batch can
/// close and still finish inside the request's deadline
/// (`deadline - service_estimate`), clamped to the arrival tick so it never
/// lies in the past. For an admitted request this is always `<= deadline_us` —
/// admission already guaranteed `arrival + service_estimate <= deadline` — so
/// a request's batch deadline can never outlive the request's own.
#[must_use]
pub fn batcher_close_by(
    arrival_us: u64,
    max_delay_us: u64,
    deadline_us: u64,
    service_estimate_us: u64,
) -> u64 {
    let by_delay = arrival_us.saturating_add(max_delay_us);
    if deadline_us == NO_DEADLINE {
        return by_delay;
    }
    let by_slo = deadline_us.saturating_sub(service_estimate_us);
    by_delay.min(by_slo).max(arrival_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(bound: usize, estimate_us: u64) -> SloConfig {
        SloConfig {
            queue_bound: bound,
            service_estimate_us: estimate_us,
            shed: true,
            ..SloConfig::default()
        }
    }

    #[test]
    fn watermarks_are_nested_and_high_is_the_full_bound() {
        let c = AdmissionController::new(&slo(100, 0));
        assert_eq!(c.bound_of(Priority::Low), 50);
        assert_eq!(c.bound_of(Priority::Standard), 75);
        assert_eq!(c.bound_of(Priority::High), 100);
        // Non-multiple-of-100 bounds still scale without overflow.
        let c = AdmissionController::new(&slo(7, 0));
        assert!(c.bound_of(Priority::Low) <= c.bound_of(Priority::Standard));
        assert!(c.bound_of(Priority::Standard) <= c.bound_of(Priority::High));
        assert_eq!(c.bound_of(Priority::High), 7);
    }

    #[test]
    fn occupancy_gates_admission_and_release_reopens_it() {
        let mut c = AdmissionController::new(&slo(4, 0));
        assert!(c.try_admit(0, 4, NO_DEADLINE, Priority::High).is_ok());
        let err = c
            .try_admit(1, 1, NO_DEADLINE, Priority::High)
            .expect_err("full");
        assert!(err.is_shed());
        assert_eq!(c.total_shed(), 1);
        c.release(2);
        assert!(c.try_admit(2, 2, NO_DEADLINE, Priority::High).is_ok());
        assert_eq!(c.max_occupancy(), 4);
    }

    #[test]
    fn exhausted_deadline_budget_is_shed_regardless_of_priority() {
        let mut c = AdmissionController::new(&slo(100, 500));
        // 400us of slack against a 500us estimate: infeasible.
        let err = c.try_admit(1_000, 1, 1_400, Priority::High).unwrap_err();
        match err {
            ServeError::Shed {
                reason: ShedReason::DeadlineInfeasible { slack_us, .. },
                ..
            } => assert_eq!(slack_us, 400),
            other => panic!("expected a deadline shed, got {other}"),
        }
        // 500us of slack exactly: feasible.
        assert!(c.try_admit(1_000, 1, 1_500, Priority::High).is_ok());
        // No deadline: never infeasible.
        assert!(c.try_admit(1_000, 1, NO_DEADLINE, Priority::Low).is_ok());
    }

    #[test]
    fn shedding_disabled_admits_everything() {
        let mut c = AdmissionController::new(&SloConfig::default());
        for i in 0..10_000 {
            assert!(c.try_admit(i, 1, 0, Priority::Low).is_ok());
        }
        assert_eq!(c.occupancy(), 10_000);
        assert_eq!(c.total_shed(), 0);
    }

    #[test]
    fn close_by_respects_both_the_delay_and_the_slo() {
        // Slack-rich request: the batching delay wins.
        assert_eq!(batcher_close_by(100, 50, 10_000, 200), 150);
        // Tight request: the SLO budget wins.
        assert_eq!(batcher_close_by(100, 5_000, 1_000, 200), 800);
        // Degenerate slack clamps to the arrival, never the past.
        assert_eq!(batcher_close_by(100, 5_000, 150, 200), 100);
        // No deadline: plain max_delay semantics.
        assert_eq!(batcher_close_by(100, 50, NO_DEADLINE, 200), 150);
    }
}
