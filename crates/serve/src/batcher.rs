//! Admission control and micro-batching: size- and deadline-triggered batch
//! close.
//!
//! Online requests arrive one at a time but the engine amortizes its collectives
//! over batches, so a batcher sits between them: requests queue until either the
//! batch is **full** (`max_batch`, the size trigger — throughput path) or the
//! **earliest close deadline** among queued requests has passed (the deadline
//! trigger — latency floor under trickle traffic). [`MicroBatcher::push`] gives
//! every request the default close deadline `arrival + max_delay`, so the
//! trigger reduces to "the oldest request has waited `max_delay`";
//! [`MicroBatcher::push_by`] lets the admission controller tighten a request's
//! close deadline from its SLO budget, so a deadline-carrying request is never
//! held longer than its slack allows.
//!
//! The batcher is pure data + virtual time (microsecond ticks supplied by the
//! caller), so its trigger semantics are directly property-testable; the serving
//! frontend drives it with real clocks.

/// Batch-close policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Size trigger: a batch closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// Deadline trigger, in microseconds: a non-empty batch closes once its
    /// oldest request has waited this long.
    pub max_delay_us: u64,
}

impl BatcherConfig {
    /// A policy with the given size and delay triggers.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn new(max_batch: usize, max_delay_us: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            max_batch,
            max_delay_us,
        }
    }
}

/// A queued request, its arrival tick and its close deadline.
#[derive(Debug, Clone)]
struct Pending<T> {
    close_by_us: u64,
    item: T,
}

/// Size- and deadline-triggered micro-batcher over items of type `T`.
#[derive(Debug, Clone)]
pub struct MicroBatcher<T> {
    config: BatcherConfig,
    queue: Vec<Pending<T>>,
    size_closes: u64,
    deadline_closes: u64,
}

impl<T> MicroBatcher<T> {
    /// Creates an empty batcher with the given policy.
    #[must_use]
    pub fn new(config: BatcherConfig) -> Self {
        Self {
            config,
            queue: Vec::with_capacity(config.max_batch.min(1024)),
            size_closes: 0,
            deadline_closes: 0,
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Requests currently queued (always `< max_batch` between calls).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Batches closed by the size trigger so far.
    #[must_use]
    pub fn size_closes(&self) -> u64 {
        self.size_closes
    }

    /// Batches closed by the deadline trigger so far.
    #[must_use]
    pub fn deadline_closes(&self) -> u64 {
        self.deadline_closes
    }

    /// Admits a request at tick `now_us` with the default close deadline
    /// `now_us + max_delay_us`. Returns the closed batch (FIFO order) when the
    /// admission fills it to `max_batch`.
    pub fn push(&mut self, now_us: u64, item: T) -> Option<Vec<T>> {
        let close_by_us = now_us.saturating_add(self.config.max_delay_us);
        self.push_by(close_by_us, item)
    }

    /// Admits a request with an explicit close deadline: the deadline trigger
    /// fires no later than `close_by_us` while this request is queued. The
    /// admission controller derives `close_by_us` from the request's SLO
    /// deadline minus its service estimate, so an admitted request's batch
    /// always closes with enough slack to finish in time. Returns the closed
    /// batch (FIFO order) on a size close.
    pub fn push_by(&mut self, close_by_us: u64, item: T) -> Option<Vec<T>> {
        self.queue.push(Pending { close_by_us, item });
        if self.queue.len() >= self.config.max_batch {
            self.size_closes += 1;
            return Some(self.drain());
        }
        None
    }

    /// Fires the deadline trigger: returns the queued batch if any queued
    /// request's close deadline has arrived by tick `now_us`.
    pub fn poll(&mut self, now_us: u64) -> Option<Vec<T>> {
        let earliest = self.next_deadline_us()?;
        if now_us >= earliest {
            self.deadline_closes += 1;
            return Some(self.drain());
        }
        None
    }

    /// The tick at which [`MicroBatcher::poll`] will fire — the earliest close
    /// deadline over the queue — if anything is queued.
    #[must_use]
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.queue.iter().map(|p| p.close_by_us).min()
    }

    /// Closes whatever is queued regardless of triggers (stream shutdown).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        if self.queue.is_empty() {
            return None;
        }
        Some(self.drain())
    }

    fn drain(&mut self) -> Vec<T> {
        self.queue.drain(..).map(|p| p.item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(max_batch: usize, delay: u64) -> MicroBatcher<u32> {
        MicroBatcher::new(BatcherConfig::new(max_batch, delay))
    }

    #[test]
    fn size_trigger_closes_exactly_at_capacity() {
        let mut b = batcher(3, 1_000);
        assert!(b.push(0, 1).is_none());
        assert!(b.push(1, 2).is_none());
        let batch = b.push(2, 3).expect("third push closes");
        assert_eq!(batch, vec![1, 2, 3]);
        assert!(b.is_empty());
        assert_eq!(b.size_closes(), 1);
        assert_eq!(b.deadline_closes(), 0);
    }

    #[test]
    fn deadline_trigger_waits_for_the_oldest() {
        let mut b = batcher(8, 100);
        assert!(b.push(0, 1).is_none());
        assert!(b.push(50, 2).is_none());
        assert!(b.poll(99).is_none(), "99us < 100us deadline");
        let batch = b.poll(100).expect("deadline reached");
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(b.deadline_closes(), 1);
        assert!(b.poll(10_000).is_none(), "empty queue never fires");
    }

    #[test]
    fn next_deadline_tracks_the_head() {
        let mut b = batcher(8, 100);
        assert_eq!(b.next_deadline_us(), None);
        let _ = b.push(40, 1);
        assert_eq!(b.next_deadline_us(), Some(140));
    }

    #[test]
    fn flush_drains_the_remainder() {
        let mut b = batcher(8, 100);
        let _ = b.push(0, 7);
        assert_eq!(b.flush(), Some(vec![7]));
        assert_eq!(b.flush(), None);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_size_is_rejected() {
        let _ = BatcherConfig::new(0, 10);
    }

    #[test]
    fn explicit_close_deadline_tightens_the_trigger() {
        let mut b = batcher(8, 1_000);
        // A default push at t=0 would close at 1000; an SLO-constrained request
        // arriving later but closing at 300 pulls the trigger forward.
        let _ = b.push(0, 1);
        let _ = b.push_by(300, 2);
        assert_eq!(b.next_deadline_us(), Some(300));
        assert!(b.poll(299).is_none());
        let batch = b.poll(300).expect("tight deadline fires");
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(b.deadline_closes(), 1);
    }

    #[test]
    fn close_deadlines_need_not_be_monotone() {
        let mut b = batcher(8, 1_000);
        let _ = b.push_by(500, 1);
        let _ = b.push_by(100, 2); // later arrival, earlier close
        assert_eq!(b.next_deadline_us(), Some(100));
        assert_eq!(b.poll(100), Some(vec![1, 2]));
    }
}
