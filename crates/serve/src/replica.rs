//! Replicated embedding shards: the storage side of serving failover.
//!
//! With replication factor `r`, every rank holds its own **primary** shard plus
//! byte-identical copies of `r` other ranks' primary shards, placed by the same
//! arithmetic requesters use to pick a failover target
//! ([`dmt_nn::replica_rank`]): replica `i` of rank `p`'s shard lives on
//! `(p + i * gpus_per_host) % world`, so every copy sits on a *different host*
//! than the primary while `i` is smaller than the host count. A replica is built
//! with [`ShardedLookup::from_tables`] using the *primary's* shard index, so it
//! slices the exact same snapshot rows — which is what makes a failed-over
//! answer bit-identical to the healthy one.
//!
//! [`ReplicatedAnswerer`] is what a serving rank answers fetch requests with: it
//! serves any key covered by a shard it holds (primary or replica), whoever the
//! key's nominal owner is. Replies are **all-or-nothing per requester**: a rank
//! that cannot cover every requested key returns an empty reply, which the
//! requester's length check turns into "re-route this whole bundle to the next
//! holder in the chain" — no partially-served reply ever needs per-key
//! bookkeeping on the wire.

use crate::ServeError;
use dmt_nn::{replica_rank, replica_sources};
use dmt_tensor::Precision;
use dmt_trainer::distributed::model::{decode_key, encode_key, ShardedLookup};
use dmt_trainer::distributed::TableWeights;

/// One serving rank's primary shard plus the replica shards it hosts for peers.
pub struct ReplicatedAnswerer {
    /// This rank's own shard view — also the requester-side router/pooler.
    primary: ShardedLookup,
    /// `(source_rank, that rank's shard view)` for every replicated peer shard.
    replicas: Vec<(usize, ShardedLookup)>,
    /// Holder chain per owner rank: `[owner, replica 1, replica 2, ...]`.
    chains: Vec<Vec<usize>>,
    /// Logical row count per served feature (ascending feature order) — fixes
    /// each key's nominal owner without touching any shard.
    feature_rows: Vec<usize>,
    world: usize,
    me: usize,
    replica_bytes: u64,
}

impl ReplicatedAnswerer {
    /// Builds rank `me`'s answerer over a `world`-way sharding of `tables`:
    /// its primary shard plus a copy of every peer shard that
    /// [`replica_rank`]-placement assigns to `me` under replication factor
    /// `replicas` on a `gpus_per_host`-wide host.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if a feature has no snapshot table or the
    /// table dimensions are inconsistent.
    pub fn new(
        features: Vec<usize>,
        tables: &[TableWeights],
        world: usize,
        me: usize,
        replicas: usize,
        gpus_per_host: usize,
    ) -> Result<Self, ServeError> {
        Self::with_precision(
            features,
            tables,
            world,
            me,
            replicas,
            gpus_per_host,
            Precision::F32,
        )
    }

    /// [`ReplicatedAnswerer::new`] at a chosen storage precision: both the
    /// primary shard and every held replica shard are quantized at load time,
    /// so replication cost shrinks by the same factor as primary storage.
    /// Failed-over answers stay bit-identical to the healthy ones — a replica
    /// quantizes the exact snapshot rows its primary does.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if a feature has no snapshot table or the
    /// table dimensions are inconsistent.
    pub fn with_precision(
        features: Vec<usize>,
        tables: &[TableWeights],
        world: usize,
        me: usize,
        replicas: usize,
        gpus_per_host: usize,
        precision: Precision,
    ) -> Result<Self, ServeError> {
        let mut sorted = features;
        sorted.sort_unstable();
        let primary =
            ShardedLookup::from_tables_quantized(sorted.clone(), tables, world, me, precision)?;
        let mut feature_rows = Vec::with_capacity(sorted.len());
        for &f in &sorted {
            let table =
                tables
                    .iter()
                    .find(|t| t.feature == f)
                    .ok_or_else(|| ServeError::Config {
                        reason: format!("snapshot holds no table for feature {f}"),
                    })?;
            feature_rows.push(table.rows);
        }
        let mut held = Vec::new();
        let mut replica_bytes = 0u64;
        if replicas > 0 {
            for source in replica_sources(me, replicas, world, gpus_per_host) {
                let lookup = ShardedLookup::from_tables_quantized(
                    sorted.clone(),
                    tables,
                    world,
                    source,
                    precision,
                )?;
                replica_bytes += lookup.resident_bytes();
                held.push((source, lookup));
            }
        }
        let chains = (0..world)
            .map(|owner| {
                let mut chain = vec![owner];
                for i in 1..=replicas {
                    let holder = replica_rank(owner, i, world, gpus_per_host);
                    if !chain.contains(&holder) {
                        chain.push(holder);
                    }
                }
                chain
            })
            .collect();
        Ok(Self {
            primary,
            replicas: held,
            chains,
            feature_rows,
            world,
            me,
            replica_bytes,
        })
    }

    /// The requester-side shard view (router / pooler / primary answerer).
    #[must_use]
    pub fn primary(&self) -> &ShardedLookup {
        &self.primary
    }

    /// Bytes of peer-shard copies this rank holds — the storage cost of its
    /// share of the replication, at the shards' actual storage precision.
    #[must_use]
    pub fn replica_bytes(&self) -> u64 {
        self.replica_bytes
    }

    /// Bytes resident in every shard this rank holds, primary included —
    /// payload words plus int8 per-row scales at the storage precision.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.primary.resident_bytes() + self.replica_bytes
    }

    /// Ranks whose primary shards this rank replicates, in placement order.
    #[must_use]
    pub fn replicated_sources(&self) -> Vec<usize> {
        self.replicas.iter().map(|(s, _)| *s).collect()
    }

    /// The holder chain of `owner`'s shard: the owner itself followed by its
    /// replica holders. Requesters walk this chain (skipping down ranks) to pick
    /// a fetch target.
    #[must_use]
    pub fn chain(&self, owner: usize) -> &[usize] {
        &self.chains[owner]
    }

    /// The nominal owner rank of encoded `key` — same row arithmetic as the
    /// shards themselves.
    fn owner_of_key(&self, key: u64) -> Option<usize> {
        let (feature, row) = decode_key(key);
        let pos = self.primary.features().binary_search(&feature).ok()?;
        let rows = self.feature_rows[pos];
        if row >= rows {
            return None;
        }
        Some((row / rows.div_ceil(self.world)).min(self.world - 1))
    }

    /// How many samples of `bags` (feature-major, one bag list per served
    /// feature in ascending-feature order, as built by the engine) reference at
    /// least one of the sorted `lost` keys — the count of queries a zero-filled
    /// batch answers degraded.
    #[must_use]
    pub fn queries_touching(&self, bags: &[&[Vec<usize>]], lost: &[u64]) -> u64 {
        if lost.is_empty() || bags.is_empty() {
            return 0;
        }
        let samples = bags[0].len();
        let features = self.primary.features();
        let mut touched = 0u64;
        for sample in 0..samples {
            let hit = bags.iter().zip(features).zip(&self.feature_rows).any(
                |((bag, &feature), &rows)| {
                    bag[sample]
                        .iter()
                        .any(|&raw| lost.binary_search(&encode_key(feature, raw % rows)).is_ok())
                },
            );
            if hit {
                touched += 1;
            }
        }
        touched
    }

    /// Answers incoming request keys with raw rows in request order, serving
    /// each key from whichever held shard (primary or replica) covers it.
    ///
    /// All-or-nothing per source: if any of a source's keys is covered by no
    /// held shard, that source gets an *empty* reply (the requester re-routes
    /// the bundle), never a partially-filled one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] only on internal inconsistency (a key that maps to
    /// a held shard the shard then rejects) — a protocol bug, not a fault.
    pub fn answer(&self, incoming: &[Vec<u64>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let dim = self.primary.dim();
        let mut replies = Vec::with_capacity(incoming.len());
        'source: for keys in incoming {
            // Partition the source's keys by covering shard, preserving order
            // within each partition (keys stay feature-grouped, which is what
            // `answer` batches on).
            let mut parts: Vec<(usize, Vec<u64>)> = Vec::new();
            let mut part_of = Vec::with_capacity(keys.len());
            for &key in keys {
                let Some(owner) = self.owner_of_key(key) else {
                    replies.push(Vec::new());
                    continue 'source;
                };
                let lookup_at = if owner == self.me {
                    Some(usize::MAX)
                } else {
                    self.replicas
                        .iter()
                        .position(|(source, _)| *source == owner)
                };
                let Some(slot) = lookup_at else {
                    replies.push(Vec::new());
                    continue 'source;
                };
                let part = match parts.iter().position(|(s, _)| *s == slot) {
                    Some(p) => p,
                    None => {
                        parts.push((slot, Vec::new()));
                        parts.len() - 1
                    }
                };
                parts[part].1.push(key);
                part_of.push(part);
            }
            // One batched answer per covering shard, then interleave back into
            // request order.
            let mut buffers = Vec::with_capacity(parts.len());
            for (slot, part_keys) in &parts {
                let lookup = if *slot == usize::MAX {
                    &self.primary
                } else {
                    &self.replicas[*slot].1
                };
                let mut answered = lookup.answer(std::slice::from_ref(part_keys))?;
                buffers.push((answered.pop().unwrap_or_default(), 0usize));
            }
            let mut reply = Vec::with_capacity(keys.len() * dim);
            for &part in &part_of {
                let (buffer, cursor) = &mut buffers[part];
                reply.extend_from_slice(&buffer[*cursor..*cursor + dim]);
                *cursor += dim;
            }
            replies.push(reply);
        }
        Ok(replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_trainer::distributed::model::encode_key;

    fn tables(features: usize, rows: usize, dim: usize) -> Vec<TableWeights> {
        (0..features)
            .map(|f| TableWeights {
                feature: f,
                rows,
                dim,
                data: (0..rows * dim).map(|i| (f * 10_000 + i) as f32).collect(),
            })
            .collect()
    }

    #[test]
    fn replicas_answer_foreign_keys_bit_identically_to_their_owner() {
        let tables = tables(2, 32, 4);
        let world = 8;
        // Rank 5 replicates rank 1's shard under r=1, gpus_per_host=4.
        let owner = ReplicatedAnswerer::new(vec![0, 1], &tables, world, 1, 0, 4).unwrap();
        let holder = ReplicatedAnswerer::new(vec![0, 1], &tables, world, 5, 1, 4).unwrap();
        assert_eq!(holder.replicated_sources(), vec![1]);
        assert_eq!(holder.chain(1), &[1, 5]);
        // Rows 4..8 belong to shard 1 of 8 (32 rows → 4 per shard).
        let keys = vec![encode_key(0, 4), encode_key(0, 7), encode_key(1, 5)];
        let from_owner = owner.answer(std::slice::from_ref(&keys)).unwrap();
        let from_holder = holder.answer(&[keys]).unwrap();
        assert_eq!(from_owner, from_holder);
        assert_eq!(from_owner[0].len(), 3 * 4);
    }

    #[test]
    fn uncovered_keys_empty_the_whole_reply() {
        let tables = tables(1, 32, 4);
        let answerer = ReplicatedAnswerer::new(vec![0], &tables, 8, 5, 1, 4).unwrap();
        // Rank 5 holds shard 5 (primary) and shard 1 (the replica that
        // stride-4 placement assigns it); shard 0 is not held.
        let covered = vec![encode_key(0, 20)]; // row 20 → shard 5
        let foreign = vec![encode_key(0, 20), encode_key(0, 0)]; // shard 0 not held
        assert_eq!(answerer.answer(&[covered]).unwrap()[0].len(), 4);
        assert!(answerer.answer(&[foreign]).unwrap()[0].is_empty());
    }

    #[test]
    fn quantized_replicas_stay_bit_identical_to_their_owner() {
        let tables = tables(2, 32, 4);
        let world = 8;
        for precision in [Precision::Fp16, Precision::Int8] {
            let owner =
                ReplicatedAnswerer::with_precision(vec![0, 1], &tables, world, 1, 0, 4, precision)
                    .unwrap();
            let holder =
                ReplicatedAnswerer::with_precision(vec![0, 1], &tables, world, 5, 1, 4, precision)
                    .unwrap();
            let keys = vec![encode_key(0, 4), encode_key(0, 7), encode_key(1, 5)];
            let from_owner = owner.answer(std::slice::from_ref(&keys)).unwrap();
            let from_holder = holder.answer(&[keys]).unwrap();
            assert_eq!(from_owner, from_holder, "{precision}");
            // Quantized replicas cost proportionally fewer resident bytes than
            // the f32 shard slice they stand in for (2 features × 4 rows × 4
            // dims × 4 bytes = 128).
            assert!(holder.replica_bytes() < 128, "{precision}");
        }
    }

    #[test]
    fn replica_bytes_count_only_peer_copies() {
        let tables = tables(2, 32, 4);
        // Four hosts of two GPUs, so up to three non-aliasing replicas exist.
        let none = ReplicatedAnswerer::new(vec![0, 1], &tables, 8, 0, 0, 2).unwrap();
        assert_eq!(none.replica_bytes(), 0);
        let one = ReplicatedAnswerer::new(vec![0, 1], &tables, 8, 0, 1, 2).unwrap();
        // One peer shard: 2 features × 4 rows × 4 dims × 4 bytes.
        assert_eq!(one.replica_bytes(), 2 * 4 * 4 * 4);
        let two = ReplicatedAnswerer::new(vec![0, 1], &tables, 8, 0, 2, 2).unwrap();
        assert_eq!(two.replica_bytes(), 2 * one.replica_bytes());
    }
}
