//! The colocated-engine frontend: drives a query stream through a micro-batcher
//! and the synchronous [`ServingEngine`], recording per-request latency.
//!
//! This is a thin wrapper over the load-harness vocabulary ([`crate::harness`]):
//! arrival instants come from an [`ArrivalProcess`] schedule and throughput is
//! a [`ThroughputWindow`], so a [`ServeReport`] and a
//! [`crate::LoadReport`] quote rates and percentiles identically.
//!
//! Two traffic modes cover the interesting operating points:
//!
//! * **Closed loop** (`inter_arrival_us == 0`) — the next request is admitted
//!   the moment the batcher can take it, so the engine runs saturated and
//!   batches close on the **size** trigger. This is the throughput measurement
//!   mode, and its latency numbers are **arrival-coordinated**: the driver
//!   blocks in `submit`, arrivals pause while the engine works, and no open
//!   queue ever builds, so the percentiles describe batch assembly + service
//!   time — *not* what an independent arrival stream would experience. Use the
//!   staged engine's open-loop harness ([`crate::run_load`]) for
//!   SLO-meaningful latency.
//! * **Paced** (`inter_arrival_us > 0`) — requests arrive on a fixed schedule;
//!   under trickle traffic the **deadline** trigger closes partial batches,
//!   bounding tail latency the way an online system must. Latency is measured
//!   from the *scheduled* arrival instant (sojourn-style, queueing included),
//!   but because this driver still blocks in `submit`, a schedule it cannot
//!   keep up with degrades into the closed-loop regime rather than building an
//!   open queue.
//!
//! Per-request latency is accumulated in a bounded log-bucketed
//! [`dmt_metrics::Histogram`] — constant memory regardless of stream length —
//! and summarized as the shared [`dmt_metrics::LatencyPercentiles`] form the
//! trainer quotes for iteration wall times.

use crate::batcher::MicroBatcher;
use crate::engine::{ServeStats, ServingEngine};
use crate::harness::ArrivalProcess;
use crate::{BatcherConfig, ServeError};
use dmt_data::Query;
use dmt_metrics::{Histogram, LatencyPercentiles, ThroughputWindow};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Traffic and batching policy of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Requests to serve.
    pub num_requests: usize,
    /// Paced inter-arrival gap in microseconds; 0 = closed loop (saturated).
    pub inter_arrival_us: u64,
    /// Batch-close policy.
    pub batcher: BatcherConfig,
}

impl StreamConfig {
    /// This stream's arrival discipline in the load harness's vocabulary: a
    /// single always-busy client when closed, a periodic schedule when paced.
    #[must_use]
    pub fn arrivals(&self) -> ArrivalProcess {
        if self.inter_arrival_us == 0 {
            ArrivalProcess::Closed { clients: 1 }
        } else {
            ArrivalProcess::Periodic {
                qps: 1e6 / self.inter_arrival_us as f64,
            }
        }
    }
}

/// The outcome of serving one query stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock seconds for the whole stream.
    pub wall_s: f64,
    /// Served requests per second.
    pub throughput_qps: f64,
    /// Per-request latency summary, in seconds (scheduled arrival →
    /// completion; see the module docs for what each mode's numbers mean).
    pub latency: LatencyPercentiles,
    /// Batches closed by the size trigger.
    pub size_closes: u64,
    /// Batches closed by the deadline trigger.
    pub deadline_closes: u64,
    /// Batches closed by end-of-stream flush.
    pub flush_closes: u64,
    /// Engine-side accounting (bytes, cache) accumulated over the stream.
    pub stats: ServeStats,
}

impl ServeReport {
    /// Mean batch size over the stream.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.stats.batches == 0 {
            return 0.0;
        }
        self.requests as f64 / self.stats.batches as f64
    }

    /// The stream's throughput as the shared counted-window form.
    #[must_use]
    pub fn window(&self) -> ThroughputWindow {
        ThroughputWindow::new(self.requests, self.wall_s)
    }
}

/// Serves `config.num_requests` queries drawn from `next_query` through
/// `engine`, batching with the configured policy, and reports latency
/// percentiles, throughput and the engine's byte/cache accounting delta.
///
/// # Errors
///
/// Returns a [`ServeError`] if the engine fails mid-stream.
pub fn serve_stream(
    engine: &mut ServingEngine,
    config: &StreamConfig,
    mut next_query: impl FnMut() -> Query,
) -> Result<ServeReport, ServeError> {
    let schedule = config.arrivals().schedule(config.num_requests);
    let closed_loop = config.inter_arrival_us == 0;
    let start = Instant::now();
    let stats_before = engine.stats();
    let mut batcher: MicroBatcher<(u64, Query)> = MicroBatcher::new(config.batcher);
    // Bounded accumulation: the histogram's memory is fixed no matter how many
    // requests the stream carries (the old per-request Vec<f64> grew without
    // bound on long soak runs).
    let latencies = Histogram::new();
    let mut flush_closes = 0u64;
    let mut admitted = 0usize;
    let now_us = |start: &Instant| start.elapsed().as_micros() as u64;

    let run_batch = |engine: &mut ServingEngine,
                     batch: Vec<(u64, Query)>,
                     latencies: &Histogram,
                     start: &Instant|
     -> Result<(), ServeError> {
        let (arrivals, queries): (Vec<u64>, Vec<Query>) = batch.into_iter().unzip();
        let _ = engine.submit(queries)?;
        let done_us = now_us(start);
        for arrival_us in arrivals {
            latencies.record(done_us.saturating_sub(arrival_us) as f64 * 1e-6);
        }
        Ok(())
    };

    while admitted < config.num_requests || !batcher.is_empty() {
        // Admit every request whose scheduled arrival has passed. In closed
        // loop mode the schedule is "immediately", so the batcher fills
        // straight to its size trigger.
        let mut closed: Option<Vec<(u64, Query)>> = None;
        while admitted < config.num_requests {
            let scheduled_us = schedule[admitted];
            let now = now_us(&start);
            if scheduled_us > now {
                break;
            }
            // Paced mode anchors latency to the scheduled instant: a request
            // that waited for the engine to drain the queue ahead of it has
            // been latent since then.
            let arrival_us = if closed_loop { now } else { scheduled_us };
            admitted += 1;
            closed = batcher.push(arrival_us, (arrival_us, next_query()));
            if closed.is_some() {
                break;
            }
        }
        if let Some(batch) = closed {
            run_batch(engine, batch, &latencies, &start)?;
            continue;
        }
        // No size close: fire the deadline trigger, flush at end of stream, or
        // sleep until the next event.
        if let Some(batch) = batcher.poll(now_us(&start)) {
            run_batch(engine, batch, &latencies, &start)?;
            continue;
        }
        if admitted >= config.num_requests {
            if let Some(batch) = batcher.flush() {
                flush_closes += 1;
                run_batch(engine, batch, &latencies, &start)?;
            }
            continue;
        }
        let mut wake_us = schedule[admitted];
        if let Some(deadline) = batcher.next_deadline_us() {
            wake_us = wake_us.min(deadline);
        }
        let now = now_us(&start);
        if wake_us > now {
            std::thread::sleep(std::time::Duration::from_micros((wake_us - now).min(1_000)));
        }
    }

    let window = ThroughputWindow::new(latencies.count() as usize, start.elapsed().as_secs_f64());
    let stats_after = engine.stats();
    Ok(ServeReport {
        requests: window.count,
        wall_s: window.wall_s,
        throughput_qps: window.per_second(),
        latency: latencies.percentiles().unwrap_or(LatencyPercentiles {
            count: 0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
        }),
        size_closes: batcher.size_closes(),
        deadline_closes: batcher.deadline_closes(),
        flush_closes,
        stats: stats_after.since(&stats_before),
    })
}
