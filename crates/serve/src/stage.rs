//! Stage-disaggregated serving: embedding-lookup ranks and dense-compute ranks
//! as separate pools with independent world sizes, joined by an explicit
//! bounded rate-matching queue.
//!
//! The colocated [`crate::ServingEngine`] maps one worker thread per cluster
//! rank and runs both the lookup and the dense forward on each. That couples
//! the two stages' capacities: adding lookup throughput means adding dense
//! throughput too, and vice versa. The paper's serving deployments are
//! *disaggregated* — memory-bound embedding lookup and compute-bound dense
//! scoring scale independently. [`StagedEngine`] models that split:
//!
//! ```text
//!   offer() ──► AdmissionController ──► MicroBatcher (per-request close
//!      │              │ shed                 deadlines from the SLO budget)
//!      │              ▼                        │ closed batch
//!      │        ServeError::Shed               ▼
//!      │                              stage 1: LOOKUP POOL (L ranks)
//!      │                              route → scatter keys → shard answers
//!      │                              → gather → pool embeddings
//!      │                                        │
//!      │                        bounded rate-matching queue (`stage_queue`
//!      │                        batches deep, sender-paced at
//!      │                        `xfer_bytes_per_s` over the modeled link)
//!      │                                        │
//!      │                              stage 2: DENSE POOL (D ranks)
//!      │                              batched dense forward → predictions
//!      │                                        ▼
//!      └──────────── drain() ◄── completions (seq-tagged, may be reordered)
//! ```
//!
//! The rate-matching queue is the disaggregation contract: when the dense pool
//! falls behind, the queue fills and the lookup stage *blocks* instead of
//! buffering unboundedly — backpressure reaches admission as rising occupancy,
//! and the admission controller sheds by priority class long before queueing
//! delay can blow a deadline. A shed request is a fast, observable
//! [`crate::ServeError::Shed`], never a timeout.
//!
//! Stage-disaggregation serves **baseline** snapshots only: the DMT deployment
//! keeps towers colocated with their host's lookup shards by design (that
//! colocations is the paper's point), so it stays on the colocated engine.
//!
//! Byte accounting here is *modeled* (analytic sizes of the key, row and
//! activation streams), not drained from collective backends: the stage pools
//! exchange data over channels standing in for the lookup-tier NIC, and the
//! queue's pacing makes that link's bandwidth — not host compute — the
//! capacity governor, which is what makes the SLO bench stable on small CI
//! hosts.

use crate::admission::{batcher_close_by, AdmissionController};
use crate::batcher::MicroBatcher;
use crate::engine::{bags_of, dense_flat};
use crate::request::{Priority, Request};
use crate::{ServeConfig, ServeError};
use dmt_data::Query;
use dmt_metrics::trace;
use dmt_metrics::{Counter, Gauge, Registry};
use dmt_tensor::Tensor;
use dmt_trainer::distributed::model::{load_params, DenseStack, LookupRouting, ShardedLookup};
use dmt_trainer::distributed::{ExecutionMode, ModelSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shape of a stage-disaggregated deployment: how many ranks each stage pool
/// gets and how fast the modeled link between them moves bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePools {
    /// Embedding-lookup ranks (the tables are row-sharded `lookup_ranks` ways).
    pub lookup_ranks: usize,
    /// Dense-compute ranks (each holds a full replica of the dense stack).
    pub dense_ranks: usize,
    /// Modeled bandwidth of the lookup→dense link in bytes/second; the lookup
    /// stage paces each batch's pooled-activation transfer at this rate before
    /// it enters the rate-matching queue (0 = unpaced).
    pub xfer_bytes_per_s: u64,
}

impl StagePools {
    /// Pools of `lookup_ranks` lookup and `dense_ranks` dense ranks with an
    /// unpaced stage link.
    #[must_use]
    pub fn new(lookup_ranks: usize, dense_ranks: usize) -> Self {
        Self {
            lookup_ranks,
            dense_ranks,
            xfer_bytes_per_s: 0,
        }
    }

    /// Paces the lookup→dense link at `bytes_per_s`.
    #[must_use]
    pub fn with_xfer_bytes_per_s(mut self, bytes_per_s: u64) -> Self {
        self.xfer_bytes_per_s = bytes_per_s;
        self
    }
}

/// Aggregated accounting of a staged deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageStats {
    /// Queries answered (completions drained; shed queries never count).
    pub queries: u64,
    /// Batches through the lookup stage.
    pub batches: u64,
    /// Modeled bytes of the key scatter into the lookup pool (8 B/key).
    pub index_bytes: u64,
    /// Modeled bytes of the gathered embedding rows (4 B/f32).
    pub row_bytes: u64,
    /// Modeled bytes crossing the lookup→dense rate-matching queue (pooled
    /// feature block + dense features, 4 B/f32) — the paced link.
    pub xfer_bytes: u64,
    /// Modeled bytes of predictions leaving the dense pool (4 B/f32).
    pub pred_bytes: u64,
    /// Batches closed by the size trigger.
    pub size_closes: u64,
    /// Batches closed by a close deadline.
    pub deadline_closes: u64,
    /// Batches closed by an explicit flush.
    pub flush_closes: u64,
    /// Requests admitted, per [`Priority`] class (index = `Priority::index`).
    pub admitted_by_class: [u64; 3],
    /// Requests shed, per [`Priority`] class (index = `Priority::index`).
    pub shed_by_class: [u64; 3],
    /// Peak queue occupancy in queries (admitted and not yet completed).
    pub max_occupancy: usize,
}

impl StageStats {
    /// Total requests admitted, all classes.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted_by_class.iter().sum()
    }

    /// Total requests shed, all classes.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_by_class.iter().sum()
    }
}

/// One answered request, as harvested from [`StagedEngine::drain`].
/// Completions are tagged with the sequence number [`StagedEngine::offer`]
/// returned and may arrive out of submission order (independent dense ranks).
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// The sequence number `offer` returned for this request.
    pub seq: u64,
    /// Admission tick on the engine clock, microseconds.
    pub arrival_us: u64,
    /// The request's absolute deadline ([`crate::NO_DEADLINE`] = none).
    pub deadline_us: u64,
    /// The request's priority class.
    pub priority: Priority,
    /// Completion tick on the engine clock, microseconds.
    pub done_us: u64,
    /// One prediction per query, bit-identical to a training-side forward over
    /// the same batch.
    pub preds: Vec<f32>,
}

impl CompletedRequest {
    /// Sojourn time in microseconds: admission to completion, queueing
    /// included. This — not per-stage service time — is what the request
    /// experienced.
    #[must_use]
    pub fn sojourn_us(&self) -> u64 {
        self.done_us.saturating_sub(self.arrival_us)
    }

    /// Whether the request completed inside its deadline (deadline-free
    /// requests always did).
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.done_us <= self.deadline_us
    }
}

/// A request past admission, waiting in the batcher or the pipeline.
struct Admitted {
    seq: u64,
    arrival_us: u64,
    deadline_us: u64,
    priority: Priority,
    queries: Vec<Query>,
}

/// One key bundle scattered to a lookup rank.
struct LookupJob {
    shard: usize,
    keys: Vec<u64>,
    reply: Sender<(usize, Vec<f32>)>,
}

/// One pooled batch crossing the rate-matching queue into the dense pool.
struct DenseJob {
    requests: Vec<Admitted>,
    feature_block: Tensor,
    dense_input: Tensor,
}

/// What the pipeline reports back per request.
enum Completion {
    Done(Box<CompletedRequest>, usize),
    Failed { queries: usize, error: ServeError },
}

/// Cached handles into the global metrics registry for the staged pipeline:
/// resolved once at [`StagedEngine::start`], shared by the stage threads, and
/// updated with atomic adds at batch granularity (admission is per request —
/// still one atomic each).
struct StageMetrics {
    admitted: [Arc<Counter>; 3],
    shed: [Arc<Counter>; 3],
    batches: Arc<Counter>,
    queries: Arc<Counter>,
    xfer_bytes: Arc<Counter>,
    /// Occupancy of the lookup→dense rate-matching queue, in batches.
    queue_depth: Arc<Gauge>,
}

impl StageMetrics {
    fn new() -> Self {
        let r = Registry::global();
        let per_class = |prefix: &str| {
            Priority::ALL.map(|class| r.counter(&format!("staged.{prefix}.{class}")))
        };
        Self {
            admitted: per_class("admitted"),
            shed: per_class("shed"),
            batches: r.counter("staged.batches"),
            queries: r.counter("staged.queries"),
            xfer_bytes: r.counter("staged.xfer_bytes"),
            queue_depth: r.gauge("staged.stage_queue_depth"),
        }
    }
}

/// A running stage-disaggregated deployment: an admission-fronted batcher on
/// the caller's thread, a lookup pool, a bounded rate-matching queue and a
/// dense pool, drained asynchronously.
pub struct StagedEngine {
    epoch: Instant,
    admission: AdmissionController,
    batcher: MicroBatcher<Admitted>,
    batch_tx: Option<Sender<Vec<Admitted>>>,
    completions: Receiver<Completion>,
    threads: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<Mutex<StageStats>>,
    metrics: Arc<StageMetrics>,
    flush_closes: u64,
    next_seq: u64,
    max_delay_us: u64,
    service_estimate_us: u64,
}

impl StagedEngine {
    /// Loads a **baseline** `snapshot` into a staged deployment: the embedding
    /// tables are row-sharded `pools.lookup_ranks` ways across the lookup pool
    /// and the dense stack is replicated onto each of `pools.dense_ranks`
    /// dense ranks. The stages are joined by a `config.slo.stage_queue`-deep
    /// rate-matching queue; admission enforces `config.slo`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for DMT snapshots (towers stay colocated
    /// with their host's shards — use the colocated engine), empty pools, or a
    /// snapshot whose weights do not match its declared geometry.
    pub fn start(
        snapshot: &ModelSnapshot,
        pools: StagePools,
        config: &ServeConfig,
    ) -> Result<Self, ServeError> {
        if snapshot.mode != ExecutionMode::Baseline {
            return Err(ServeError::Config {
                reason: "stage-disaggregated serving supports baseline snapshots only \
                         (DMT towers are colocated with their lookup shards by design)"
                    .into(),
            });
        }
        if pools.lookup_ranks == 0 || pools.dense_ranks == 0 {
            return Err(ServeError::Config {
                reason: format!(
                    "both stage pools need ranks (got {} lookup, {} dense)",
                    pools.lookup_ranks, pools.dense_ranks
                ),
            });
        }
        let features: Vec<usize> = (0..snapshot.schema.num_sparse()).collect();
        // The router instance routes and pools but never answers; `owner_of`
        // depends only on the pool's world size, so shard 0 stands in.
        let router =
            ShardedLookup::from_tables(features.clone(), &snapshot.tables, pools.lookup_ranks, 0)?;
        let shards: Vec<ShardedLookup> = (0..pools.lookup_ranks)
            .map(|s| {
                ShardedLookup::from_tables(
                    features.clone(),
                    &snapshot.tables,
                    pools.lookup_ranks,
                    s,
                )
            })
            .collect::<Result<_, _>>()?;
        let dense_stacks: Vec<DenseStack> = (0..pools.dense_ranks)
            .map(|_| {
                let mut dense = DenseStack::new(
                    snapshot.seed,
                    &snapshot.schema,
                    snapshot.arch,
                    &snapshot.hyper,
                    snapshot.hyper.embedding_dim,
                    snapshot.schema.num_sparse() + 1,
                );
                load_params(&mut dense, &snapshot.dense_params)?;
                Ok(dense)
            })
            .collect::<Result<_, ServeError>>()?;

        let epoch = Instant::now();
        let stats = Arc::new(Mutex::new(StageStats::default()));
        let metrics = Arc::new(StageMetrics::new());
        let mut threads = Vec::new();

        // Lookup pool: one thread per shard, answering scattered key bundles.
        let mut lookup_txs: Vec<Sender<LookupJob>> = Vec::with_capacity(pools.lookup_ranks);
        for (index, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::channel::<LookupJob>();
            lookup_txs.push(tx);
            threads.push(std::thread::spawn(move || {
                trace::register_thread(
                    "staged",
                    &format!("lookup{index}"),
                    trace::Track {
                        pid: trace::deployment::SERVE,
                        tid: 100 + index as u64,
                    },
                );
                lookup_loop(&shard, &rx);
            }));
        }

        // The bounded rate-matching queue between the stages.
        let (dense_tx, dense_rx) = sync_channel::<DenseJob>(config.slo.stage_queue.max(1));
        let dense_rx = Arc::new(Mutex::new(dense_rx));

        let (completion_tx, completions) = std::sync::mpsc::channel::<Completion>();

        // Dense pool: D ranks pulling from the shared queue end.
        for (index, mut dense) in dense_stacks.into_iter().enumerate() {
            let rx = Arc::clone(&dense_rx);
            let tx = completion_tx.clone();
            let stats = Arc::clone(&stats);
            let metrics = Arc::clone(&metrics);
            threads.push(std::thread::spawn(move || {
                trace::register_thread(
                    "staged",
                    &format!("dense{index}"),
                    trace::Track {
                        pid: trace::deployment::SERVE,
                        tid: 200 + index as u64,
                    },
                );
                dense_loop(&mut dense, epoch, &rx, &tx, &stats, &metrics);
            }));
        }

        // Stage-1 orchestrator: route, scatter, gather, pool, pace, enqueue.
        let (batch_tx, batch_rx) = std::sync::mpsc::channel::<Vec<Admitted>>();
        {
            let stats = Arc::clone(&stats);
            let metrics = Arc::clone(&metrics);
            let tx = completion_tx;
            threads.push(std::thread::spawn(move || {
                trace::register_thread(
                    "staged",
                    "stage1",
                    trace::Track {
                        pid: trace::deployment::SERVE,
                        tid: 50,
                    },
                );
                stage1_loop(
                    &router,
                    &features,
                    &lookup_txs,
                    pools.xfer_bytes_per_s,
                    &batch_rx,
                    &dense_tx,
                    &tx,
                    &stats,
                    &metrics,
                );
            }));
        }

        Ok(Self {
            epoch,
            admission: AdmissionController::new(&config.slo),
            batcher: MicroBatcher::new(config.batch.batcher()),
            batch_tx: Some(batch_tx),
            completions,
            threads,
            stats,
            metrics,
            flush_closes: 0,
            next_seq: 0,
            max_delay_us: config.batch.max_delay_us,
            service_estimate_us: config.slo.service_estimate_us,
        })
    }

    /// The engine's clock: microseconds since start. Deadlines in offered
    /// requests are absolute ticks on this clock.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Offers a request to admission. Admitted requests join the batcher with
    /// a close deadline tight enough to honor their SLO budget and eventually
    /// surface from [`StagedEngine::drain`]; refused ones return
    /// [`ServeError::Shed`] immediately, before any batching or pipeline work.
    ///
    /// Returns the sequence number completions will carry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shed`] on refusal; pipeline errors if the stage threads
    /// have died.
    pub fn offer(&mut self, request: Request) -> Result<u64, ServeError> {
        let now = self.now_us();
        if let Err(error) = self.admission.try_admit(
            now,
            request.queries.len(),
            request.deadline_us,
            request.priority,
        ) {
            // A shed is a terminal request outcome too: count it per class and
            // mark it on the timeline so the trace shows load-shedding episodes
            // alongside the served requests.
            if error.is_shed() {
                self.metrics.shed[request.priority.index()].inc();
                if trace::tracing_enabled() {
                    trace::emit(
                        trace::TraceEvent::instant(
                            trace::current_track(),
                            trace::cat::REQUEST,
                            "shed".to_string(),
                            trace::clock_s(),
                        )
                        .arg_str("priority", request.priority.to_string())
                        .arg_u64("queries", request.queries.len() as u64),
                    );
                }
            }
            return Err(error);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.metrics.admitted[request.priority.index()].inc();
        if trace::tracing_enabled() {
            // The request's lifetime on the timeline: an async span keyed by
            // its sequence number, opened here and closed where the pipeline
            // produces its terminal completion (done or failed).
            trace::emit(
                trace::TraceEvent::async_begin(
                    trace::current_track(),
                    trace::cat::REQUEST,
                    "request".to_string(),
                    seq,
                    trace::clock_s(),
                )
                .arg_u64("seq", seq)
                .arg_str("priority", request.priority.to_string())
                .arg_u64("queries", request.queries.len() as u64),
            );
        }
        let close_by = batcher_close_by(
            now,
            self.max_delay_us,
            request.deadline_us,
            self.service_estimate_us,
        );
        let admitted = Admitted {
            seq,
            arrival_us: now,
            deadline_us: request.deadline_us,
            priority: request.priority,
            queries: request.queries,
        };
        if let Some(batch) = self.batcher.push_by(close_by, admitted) {
            self.dispatch(batch)?;
        }
        Ok(seq)
    }

    /// Fires the batcher's deadline trigger against the engine clock. Call
    /// this between arrivals (the open-loop harness does, every idle wait).
    ///
    /// # Errors
    ///
    /// Pipeline errors if the stage threads have died.
    pub fn pump(&mut self) -> Result<(), ServeError> {
        if let Some(batch) = self.batcher.poll(self.now_us()) {
            self.dispatch(batch)?;
        }
        Ok(())
    }

    /// Closes and dispatches whatever the batcher holds, regardless of
    /// triggers (end of a request stream).
    ///
    /// # Errors
    ///
    /// Pipeline errors if the stage threads have died.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if let Some(batch) = self.batcher.flush() {
            self.flush_closes += 1;
            self.dispatch(batch)?;
        }
        Ok(())
    }

    /// Harvests every completion the pipeline has produced so far without
    /// blocking, releasing their occupancy back to admission.
    ///
    /// # Errors
    ///
    /// Surfaces the first pipeline failure (its occupancy is released too).
    pub fn drain(&mut self) -> Result<Vec<CompletedRequest>, ServeError> {
        let mut done = Vec::new();
        loop {
            match self.completions.try_recv() {
                Ok(Completion::Done(completed, queries)) => {
                    self.admission.release(queries);
                    done.push(*completed);
                }
                Ok(Completion::Failed { queries, error }) => {
                    self.admission.release(queries);
                    return Err(error);
                }
                Err(_) => return Ok(done),
            }
        }
    }

    /// Queries admitted and not yet drained.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.admission.occupancy()
    }

    /// The engine-clock tick at which the batcher's deadline trigger will next
    /// fire, if anything is queued — what an idle driver should sleep until
    /// before calling [`StagedEngine::pump`].
    #[must_use]
    pub fn next_close_us(&self) -> Option<u64> {
        self.batcher.next_deadline_us()
    }

    /// A snapshot of the deployment's accounting so far.
    #[must_use]
    pub fn stats(&self) -> StageStats {
        let mut stats = *self.stats.lock().expect("stage stats lock");
        self.fill_front_stats(&mut stats);
        stats
    }

    /// Flushes the batcher, stops the pools, and returns every remaining
    /// completion plus the final accounting.
    ///
    /// # Errors
    ///
    /// Surfaces the first pipeline failure encountered while draining.
    pub fn shutdown(mut self) -> Result<(Vec<CompletedRequest>, StageStats), ServeError> {
        self.flush()?;
        // Closing the batch channel cascades: stage 1 drains and exits,
        // dropping the queue sender; the dense ranks drain and exit, dropping
        // the completion senders.
        drop(self.batch_tx.take());
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let mut done = Vec::new();
        let mut failure = None;
        while let Ok(completion) = self.completions.recv() {
            match completion {
                Completion::Done(completed, queries) => {
                    self.admission.release(queries);
                    done.push(*completed);
                }
                Completion::Failed { queries, error } => {
                    self.admission.release(queries);
                    failure.get_or_insert(error);
                }
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }
        let mut stats = *self.stats.lock().expect("stage stats lock");
        self.fill_front_stats(&mut stats);
        Ok((done, stats))
    }

    /// Adds the front-side counters (batcher closes, admission) the worker
    /// threads cannot see.
    fn fill_front_stats(&self, stats: &mut StageStats) {
        stats.size_closes = self.batcher.size_closes();
        stats.deadline_closes = self.batcher.deadline_closes();
        stats.flush_closes = self.flush_closes;
        for class in Priority::ALL {
            stats.admitted_by_class[class.index()] = self.admission.admitted_count(class);
            stats.shed_by_class[class.index()] = self.admission.shed_count(class);
        }
        stats.max_occupancy = self.admission.max_occupancy();
    }

    fn dispatch(&mut self, batch: Vec<Admitted>) -> Result<(), ServeError> {
        if trace::tracing_enabled() {
            trace::emit(
                trace::TraceEvent::instant(
                    trace::current_track(),
                    trace::cat::SERVE,
                    "batch close".to_string(),
                    trace::clock_s(),
                )
                .arg_u64("requests", batch.len() as u64),
            );
        }
        let tx = self.batch_tx.as_ref().ok_or_else(pipeline_down)?;
        tx.send(batch).map_err(|_| pipeline_down())
    }
}

impl Drop for StagedEngine {
    fn drop(&mut self) {
        drop(self.batch_tx.take());
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

fn pipeline_down() -> ServeError {
    ServeError::Rank {
        rank: 0,
        message: "stage pipeline disconnected".into(),
    }
}

/// One lookup rank: answer scattered key bundles from this shard.
fn lookup_loop(shard: &ShardedLookup, jobs: &Receiver<LookupJob>) {
    while let Ok(job) = jobs.recv() {
        let rows = shard
            .answer(std::slice::from_ref(&job.keys))
            .map(|mut replies| replies.pop().unwrap_or_default())
            .unwrap_or_default();
        // A dropped gather side means the orchestrator already failed the batch.
        let _ = job.reply.send((job.shard, rows));
    }
}

/// The stage-1 orchestrator: per batch, route keys across the lookup pool,
/// scatter, gather, pool embeddings, pace the modeled stage link, and push the
/// dense job into the bounded rate-matching queue (blocking when the dense
/// pool is behind — that backpressure is the disaggregation contract).
#[allow(clippy::too_many_arguments)]
fn stage1_loop(
    router: &ShardedLookup,
    features: &[usize],
    lookup_txs: &[Sender<LookupJob>],
    xfer_bytes_per_s: u64,
    batches: &Receiver<Vec<Admitted>>,
    dense_tx: &SyncSender<DenseJob>,
    completion_tx: &Sender<Completion>,
    stats: &Arc<Mutex<StageStats>>,
    metrics: &StageMetrics,
) {
    let world = lookup_txs.len();
    let dim = router.dim();
    while let Ok(batch) = batches.recv() {
        let mut span = trace::span(trace::cat::SERVE, || "lookup + pool".to_string());
        if let Some(span) = span.as_mut() {
            span.arg_u64("requests", batch.len() as u64);
        }
        let queries: Vec<Query> = batch.iter().flat_map(|r| r.queries.clone()).collect();
        if queries.is_empty() {
            fail_batch(completion_tx, batch, || ServeError::Config {
                reason: "empty batch reached the lookup stage".into(),
            });
            continue;
        }
        let bags_owned = bags_of(&queries, features);
        let bags: Vec<&[Vec<usize>]> = bags_owned.iter().map(Vec::as_slice).collect();
        let request_keys = router.route(world, &bags);
        let total_keys: usize = request_keys.iter().map(Vec::len).sum();

        // Scatter each owner's bundle to its shard, gather the row replies.
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let mut scattered = 0usize;
        for (shard, keys) in request_keys.iter().enumerate() {
            let job = LookupJob {
                shard,
                keys: keys.clone(),
                reply: reply_tx.clone(),
            };
            if lookup_txs[shard].send(job).is_ok() {
                scattered += 1;
            }
        }
        drop(reply_tx);
        let mut fetched: Vec<Vec<f32>> = vec![Vec::new(); world];
        for _ in 0..scattered {
            let Ok((shard, rows)) = reply_rx.recv() else {
                break;
            };
            fetched[shard] = rows;
        }
        let total_row_floats: usize = fetched.iter().map(Vec::len).sum();
        if scattered < world || total_row_floats != total_keys * dim {
            fail_batch(completion_tx, batch, pipeline_down);
            continue;
        }

        let routing = LookupRouting {
            request_keys,
            served_keys: Vec::new(),
        };
        let pooled = match pool_and_pack(router, &bags, &routing, &fetched, &queries) {
            Ok(pooled) => pooled,
            Err(error) => {
                let message = error.to_string();
                fail_batch(completion_tx, batch, move || ServeError::Rank {
                    rank: 0,
                    message: message.clone(),
                });
                continue;
            }
        };
        let (feature_block, dense_input) = pooled;
        let xfer = 4 * (feature_block.data().len() + dense_input.data().len()) as u64;
        {
            let mut s = stats.lock().expect("stage stats lock");
            s.batches += 1;
            s.index_bytes += 8 * total_keys as u64;
            s.row_bytes += 4 * total_row_floats as u64;
            s.xfer_bytes += xfer;
        }
        metrics.batches.inc();
        metrics.xfer_bytes.add(xfer);
        drop(span);
        if xfer_bytes_per_s > 0 {
            let _pace = trace::span(trace::cat::SERVE, || "stage link xfer".to_string());
            std::thread::sleep(Duration::from_secs_f64(
                xfer as f64 / xfer_bytes_per_s as f64,
            ));
        }
        let job = DenseJob {
            requests: batch,
            feature_block,
            dense_input,
        };
        // The enqueue span makes dense-pool backpressure visible: it covers
        // any time stage 1 spends blocked on the full rate-matching queue.
        let enqueue = trace::span(trace::cat::SERVE, || "stage queue".to_string());
        match dense_tx.send(job) {
            Ok(()) => metrics.queue_depth.add(1.0),
            Err(std::sync::mpsc::SendError(job)) => {
                fail_batch(completion_tx, job.requests, pipeline_down);
            }
        }
        drop(enqueue);
    }
}

/// Pools the gathered rows and packs the dense inputs for the batch.
fn pool_and_pack(
    router: &ShardedLookup,
    bags: &[&[Vec<usize>]],
    routing: &LookupRouting,
    fetched: &[Vec<f32>],
    queries: &[Query],
) -> Result<(Tensor, Tensor), ServeError> {
    let embs = router.pool(bags, routing, fetched)?;
    let refs: Vec<&Tensor> = embs.iter().collect();
    let feature_block = Tensor::concat_cols(&refs)?;
    let num_dense = queries[0].dense.len();
    let dense_input = Tensor::from_vec(vec![queries.len(), num_dense], dense_flat(queries))?;
    Ok((feature_block, dense_input))
}

/// One dense rank: pull pooled batches off the shared queue end, run the
/// replicated dense forward, split predictions back per request and stamp
/// completion times.
fn dense_loop(
    dense: &mut DenseStack,
    epoch: Instant,
    jobs: &Arc<Mutex<Receiver<DenseJob>>>,
    completion_tx: &Sender<Completion>,
    stats: &Arc<Mutex<StageStats>>,
    metrics: &StageMetrics,
) {
    loop {
        let job = {
            let rx = jobs.lock().expect("dense queue lock");
            rx.recv()
        };
        let Ok(job) = job else { return };
        metrics.queue_depth.add(-1.0);
        let mut span = trace::span(trace::cat::SERVE, || "dense forward".to_string());
        if let Some(span) = span.as_mut() {
            span.arg_u64("requests", job.requests.len() as u64);
        }
        let preds = match dense.forward(&job.dense_input, &job.feature_block) {
            Ok(preds) => preds,
            Err(error) => {
                let message = error.to_string();
                fail_batch(completion_tx, job.requests, move || ServeError::Rank {
                    rank: 0,
                    message: message.clone(),
                });
                continue;
            }
        };
        let done_us = u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        {
            let mut s = stats.lock().expect("stage stats lock");
            s.queries += job
                .requests
                .iter()
                .map(|r| r.queries.len() as u64)
                .sum::<u64>();
            s.pred_bytes += 4 * preds.len() as u64;
        }
        metrics.queries.add(
            job.requests
                .iter()
                .map(|r| r.queries.len() as u64)
                .sum::<u64>(),
        );
        drop(span);
        let mut offset = 0usize;
        for request in job.requests {
            let queries = request.queries.len();
            if trace::tracing_enabled() {
                trace::emit(
                    trace::TraceEvent::async_end(
                        trace::current_track(),
                        trace::cat::REQUEST,
                        "request".to_string(),
                        request.seq,
                        trace::clock_s(),
                    )
                    .arg_u64("seq", request.seq)
                    .arg_u64("sojourn_us", done_us.saturating_sub(request.arrival_us)),
                );
            }
            let completed = CompletedRequest {
                seq: request.seq,
                arrival_us: request.arrival_us,
                deadline_us: request.deadline_us,
                priority: request.priority,
                done_us,
                preds: preds[offset..offset + queries].to_vec(),
            };
            offset += queries;
            let _ = completion_tx.send(Completion::Done(Box::new(completed), queries));
        }
    }
}

/// Reports every request of a failed batch back so its occupancy is released.
/// Failure is a terminal outcome: each request's async lifecycle span closes
/// here too, so traced begin/end pairs stay balanced on every path.
fn fail_batch(
    completion_tx: &Sender<Completion>,
    batch: Vec<Admitted>,
    error: impl Fn() -> ServeError,
) {
    for request in batch {
        if trace::tracing_enabled() {
            trace::emit(
                trace::TraceEvent::async_end(
                    trace::current_track(),
                    trace::cat::REQUEST,
                    "request".to_string(),
                    request.seq,
                    trace::clock_s(),
                )
                .arg_u64("seq", request.seq)
                .arg_str("outcome", "failed"),
            );
        }
        let _ = completion_tx.send(Completion::Failed {
            queries: request.queries.len(),
            error: error(),
        });
    }
}
