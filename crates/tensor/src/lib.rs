//! Minimal dense `f32` tensor library for the DMT model-quality experiments.
//!
//! The paper's quality results (Tables 2–6) require actually training DLRM/DCN-style
//! models; this crate provides the small, CPU-only numeric substrate those models are
//! built on: a contiguous row-major [`Tensor`], shape-checked elementwise and matrix
//! operations, and the random initializers the layers need.
//!
//! The design intentionally avoids a general autograd graph — the layers in `dmt-nn`
//! implement explicit forward/backward passes, which keeps the numeric core small and
//! easy to verify.
//!
//! # Example
//!
//! ```
//! use dmt_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(&[3, 2]);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 6.0);
//! # Ok::<(), dmt_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

pub mod init;
pub mod kernels;
pub mod qgemm;
pub mod quant;
pub mod simd;
pub mod tensor;

pub use init::{kaiming_uniform, xavier_uniform};
pub use qgemm::{
    gemm_a_bt_f16, gemm_a_bt_f16_with, gemm_a_bt_q8, gemm_a_bt_q8_with, F16BtMatrix,
    F16GemmScratch, QGemmScratch, QuantizedBtMatrix,
};
pub use quant::Precision;
pub use simd::{f32_tier, f32_tier_name, prefetch_read, SimdTier};
pub use tensor::{Tensor, TensorError};
