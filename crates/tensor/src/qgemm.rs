//! Quantized GEMM microkernels: int8 with integer accumulation, fp16 storage.
//!
//! These extend the PR 1 register-tiled kernels ([`crate::kernels`]) with
//! reduced-precision *weight storage* for the serving forward pass. Both
//! variants compute `C += A·Bᵀ` — the layout [`crate::kernels::gemm_a_bt`]
//! uses, with `B` packed row-major as `Bᵀ: [n, k]` so every dot product
//! streams both operands with unit stride:
//!
//! * [`gemm_a_bt_q8`] — weights packed as int8 with one symmetric scale per
//!   output column ([`QuantizedBtMatrix`]); activations are quantized
//!   per-row on the fly. The inner product runs entirely in **i32** (exact
//!   integer arithmetic), then one `f32` multiply per output applies
//!   `a_scale · b_scale`. Because integer addition is associative, the AVX2
//!   path and the portable scalar path produce **bit-identical** results —
//!   pinned by tests, not hoped for. AVX2 is selected at runtime via
//!   `is_x86_feature_detected!` with the scalar kernel as the fallback on
//!   every other CPU.
//! * [`gemm_a_bt_f16`] — weights stored as IEEE binary16 words
//!   ([`F16BtMatrix`]), decoded row-block by row-block into an `f32` scratch
//!   and fed through the *same* fused dot-product lanes as the f32 kernel, so
//!   the result is bit-identical to decoding the whole matrix up front and
//!   calling [`crate::kernels::gemm_a_bt`].
//!
//! The i32 accumulator is exact while `k · 127²` stays below `i32::MAX`
//! (`k ≤ 133 000`); constructors assert `k ≤ 65 536`, far above any dense
//! layer in this workspace.

use crate::quant::{
    decode_row_f16_into, f16_bits_to_f32, f32_to_f16_bits, int8_scale, quantize_i8,
};
use crate::simd::{dot4_dispatch, dot_dispatch};

/// Largest inner dimension the constructors accept (keeps the i32 dot exact).
pub const MAX_QUANT_K: usize = 1 << 16;

/// `B` packed as int8 `Bᵀ: [n, k]` with one symmetric scale per output column.
///
/// Row `j` of the packed data is column `j` of the original `B: [k, n]`,
/// quantized at `scales[j] = max_abs(column j) / 127` with the wire codec's
/// element rule (round half away from zero, saturate, NaN → 0).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBtMatrix {
    data: Vec<i8>,
    scales: Vec<f32>,
    n: usize,
    k: usize,
}

impl QuantizedBtMatrix {
    /// Packs a row-major `B: [k, n]` (a linear layer's `[in, out]` weight).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n` or `k > `[`MAX_QUANT_K`].
    #[must_use]
    pub fn from_col_major(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "QuantizedBtMatrix: B length");
        assert!(
            k <= MAX_QUANT_K,
            "QuantizedBtMatrix: k too large for exact i32 accumulation"
        );
        let mut data = vec![0i8; n * k];
        let mut scales = vec![1.0f32; n];
        for j in 0..n {
            let mut max_abs = 0.0f32;
            for p in 0..k {
                let v = b[p * n + j];
                if v.is_finite() {
                    max_abs = max_abs.max(v.abs());
                }
            }
            let scale = int8_scale(max_abs);
            scales[j] = scale;
            for p in 0..k {
                data[j * k + p] = quantize_i8(b[p * n + j], scale);
            }
        }
        Self { data, scales, n, k }
    }

    /// Output columns (`n`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Inner dimension (`k`).
    #[must_use]
    pub fn inner(&self) -> usize {
        self.k
    }

    /// Resident bytes of the packed weights: int8 payload plus the per-column
    /// `f32` scales.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.data.len() as u64 + 4 * self.scales.len() as u64
    }

    /// Dequantizes back to a row-major `B: [k, n]` — the reference operand
    /// differential tests compare the quantized kernel against.
    #[must_use]
    pub fn dequantize_col_major(&self) -> Vec<f32> {
        let mut b = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            let scale = self.scales[j];
            for p in 0..self.k {
                b[p * self.n + j] = f32::from(self.data[j * self.k + p]) * scale;
            }
        }
        b
    }
}

/// `B` stored as IEEE binary16 words in `Bᵀ: [n, k]` layout.
#[derive(Debug, Clone, PartialEq)]
pub struct F16BtMatrix {
    data: Vec<u16>,
    n: usize,
    k: usize,
}

impl F16BtMatrix {
    /// Packs a row-major `B: [k, n]` into half-precision words.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    #[must_use]
    pub fn from_col_major(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "F16BtMatrix: B length");
        let mut data = vec![0u16; n * k];
        for j in 0..n {
            for p in 0..k {
                data[j * k + p] = f32_to_f16_bits(b[p * n + j]);
            }
        }
        Self { data, n, k }
    }

    /// Output columns (`n`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Inner dimension (`k`).
    #[must_use]
    pub fn inner(&self) -> usize {
        self.k
    }

    /// Resident bytes of the stored half words.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        2 * self.data.len() as u64
    }

    /// Decodes back to a row-major `B: [k, n]` — the reference operand the
    /// bit-identity tests run the f32 kernel over.
    #[must_use]
    pub fn decode_col_major(&self) -> Vec<f32> {
        let mut b = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            for p in 0..self.k {
                b[p * self.n + j] = f16_bits_to_f32(self.data[j * self.k + p]);
            }
        }
        b
    }
}

/// Whether the int8 kernels will take the AVX2 path on this host (runtime
/// feature detection, cached). Benches report this so a gate run on a
/// different machine class is interpretable.
#[must_use]
pub fn int8_simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Exact int8 dot product in i32, portable scalar loop.
#[must_use]
pub fn dot_i8_scalar(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0i32;
    for (&a, &b) in x.iter().zip(y) {
        acc += i32::from(a) * i32::from(b);
    }
    acc
}

/// Exact int8 dot product in i32: AVX2 when the CPU has it, scalar otherwise.
/// Integer accumulation is associative, so both paths return identical bits.
#[must_use]
pub fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if int8_simd_active() {
        // SAFETY: AVX2 support was verified at runtime just above.
        return unsafe { dot_i8_avx2(x, y) };
    }
    dot_i8_scalar(x, y)
}

/// AVX2 int8 dot: widen 16 lanes to i16 (`vpmovsxbw`), multiply-add adjacent
/// pairs into 8 i32 lanes (`vpmaddwd`), horizontally fold at the end. Products
/// of two int8 values fit i16 exactly and each `madd` pair sum fits i32, so
/// the result equals the scalar loop bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(x: &[i8], y: &[i8]) -> i32 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
        _mm256_extracti128_si256, _mm256_madd_epi16, _mm256_setzero_si256, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    };
    debug_assert_eq!(x.len(), y.len());
    let mut acc = _mm256_setzero_si256();
    let chunks = x.len() / 16 * 16;
    let mut p = 0;
    while p < chunks {
        let xv = _mm_loadu_si128(x.as_ptr().add(p).cast::<__m128i>());
        let yv = _mm_loadu_si128(y.as_ptr().add(p).cast::<__m128i>());
        let xw = _mm256_cvtepi8_epi16(xv);
        let yw = _mm256_cvtepi8_epi16(yv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xw, yw));
        p += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let mut s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
    let mut total = _mm_cvtsi128_si32(s);
    while p < x.len() {
        total += i32::from(*x.get_unchecked(p)) * i32::from(*y.get_unchecked(p));
        p += 1;
    }
    total
}

/// Reusable activation-quantization scratch for the int8 GEMM.
///
/// [`gemm_a_bt_q8`] quantizes its `A` rows on the fly; routing the quantized
/// bytes and per-row scales through a caller-owned scratch keeps the serving
/// hot path free of per-batch heap allocations (buffers grow to the
/// high-water mark once, then are reused).
#[derive(Debug, Default, Clone)]
pub struct QGemmScratch {
    qa: Vec<i8>,
    scales: Vec<f32>,
}

/// Quantizes the activation rows of `a: [m, k]` once for the whole GEMM,
/// into the reusable scratch.
fn quantize_activations_into(a: &[f32], m: usize, k: usize, scratch: &mut QGemmScratch) {
    scratch.qa.clear();
    scratch.qa.resize(m * k, 0);
    scratch.scales.clear();
    scratch.scales.resize(m, 1.0);
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let max_abs = row
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        let scale = int8_scale(max_abs);
        scratch.scales[i] = scale;
        for (q, &v) in scratch.qa[i * k..(i + 1) * k].iter_mut().zip(row) {
            *q = quantize_i8(v, scale);
        }
    }
}

/// `C += A·Bᵀ` with int8 weights and dynamically int8-quantized activations.
///
/// `A: [m, k]` is quantized per row (symmetric `max_abs / 127` scale), the
/// integer dot runs exactly in i32, and each output gets one fused `f32`
/// rescale: `C[i, j] += dot · a_scale[i] · b_scale[j]`. `C` must be
/// pre-initialized by the caller (zeros, or a broadcast bias for a fused
/// linear forward) — the kernel only accumulates, like [`crate::kernels::gemm`].
///
/// Dispatches to AVX2 at runtime with a bit-identical scalar fallback; see
/// [`gemm_a_bt_q8_scalar`] for the pinned-path entry point tests use.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`, `k` and `b`'s geometry.
pub fn gemm_a_bt_q8(a: &[f32], b: &QuantizedBtMatrix, c: &mut [f32], m: usize, k: usize) {
    let mut scratch = QGemmScratch::default();
    gemm_a_bt_q8_inner(a, b, c, m, k, int8_simd_active(), &mut scratch);
}

/// [`gemm_a_bt_q8`] with caller-owned activation scratch — the
/// allocation-free form the serving hot path uses.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`, `k` and `b`'s geometry.
pub fn gemm_a_bt_q8_with(
    a: &[f32],
    b: &QuantizedBtMatrix,
    c: &mut [f32],
    m: usize,
    k: usize,
    scratch: &mut QGemmScratch,
) {
    gemm_a_bt_q8_inner(a, b, c, m, k, int8_simd_active(), scratch);
}

/// [`gemm_a_bt_q8`] forced onto the portable scalar path, regardless of CPU
/// features — the differential half of the SIMD bit-identity tests.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`, `k` and `b`'s geometry.
pub fn gemm_a_bt_q8_scalar(a: &[f32], b: &QuantizedBtMatrix, c: &mut [f32], m: usize, k: usize) {
    let mut scratch = QGemmScratch::default();
    gemm_a_bt_q8_inner(a, b, c, m, k, false, &mut scratch);
}

#[allow(clippy::too_many_arguments)]
fn gemm_a_bt_q8_inner(
    a: &[f32],
    b: &QuantizedBtMatrix,
    c: &mut [f32],
    m: usize,
    k: usize,
    simd: bool,
    scratch: &mut QGemmScratch,
) {
    let n = b.n;
    assert_eq!(b.k, k, "gemm_a_bt_q8: inner dimension");
    assert_eq!(a.len(), m * k, "gemm_a_bt_q8: A length");
    assert_eq!(c.len(), m * n, "gemm_a_bt_q8: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    quantize_activations_into(a, m, k, scratch);
    for i in 0..m {
        let arow = &scratch.qa[i * k..(i + 1) * k];
        let a_scale = scratch.scales[i];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cval) in crow.iter_mut().enumerate() {
            let brow = &b.data[j * k..(j + 1) * k];
            let dot = {
                #[cfg(target_arch = "x86_64")]
                {
                    if simd {
                        // SAFETY: `simd` is only true after runtime detection.
                        unsafe { dot_i8_avx2(arow, brow) }
                    } else {
                        dot_i8_scalar(arow, brow)
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let _ = simd;
                    dot_i8_scalar(arow, brow)
                }
            };
            *cval += dot as f32 * a_scale * b.scales[j];
        }
    }
}

/// Reusable decode scratch for the fp16 GEMM (up to four weight rows of `k`
/// f32 values), so steady-state serving decodes without heap allocations.
#[derive(Debug, Default, Clone)]
pub struct F16GemmScratch {
    buf: Vec<f32>,
}

/// `C += A·Bᵀ` with fp16-stored weights, decoded on the fly.
///
/// Each group of four `Bᵀ` rows is decoded once into an `f32` scratch and fed
/// through the same canonical dot-product kernels as the f32
/// [`crate::kernels::gemm_a_bt`], so the result is **bit-identical** to
/// decoding all of `B` up front and running the f32 kernel — pinned by tests.
/// `C` must be pre-initialized; the kernel only accumulates.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`, `k` and `b`'s geometry.
pub fn gemm_a_bt_f16(a: &[f32], b: &F16BtMatrix, c: &mut [f32], m: usize, k: usize) {
    let mut scratch = F16GemmScratch::default();
    gemm_a_bt_f16_with(a, b, c, m, k, &mut scratch);
}

/// [`gemm_a_bt_f16`] with caller-owned decode scratch — the allocation-free
/// form the serving hot path uses.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`, `k` and `b`'s geometry.
pub fn gemm_a_bt_f16_with(
    a: &[f32],
    b: &F16BtMatrix,
    c: &mut [f32],
    m: usize,
    k: usize,
    scratch: &mut F16GemmScratch,
) {
    let n = b.n;
    assert_eq!(b.k, k, "gemm_a_bt_f16: inner dimension");
    assert_eq!(a.len(), m * k, "gemm_a_bt_f16: A length");
    assert_eq!(c.len(), m * n, "gemm_a_bt_f16: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let scratch = &mut scratch.buf;
    scratch.reserve(4 * k);
    let mut j = 0;
    while j + 4 <= n {
        scratch.clear();
        for q in 0..4 {
            decode_row_f16_into(&b.data[(j + q) * k..(j + q + 1) * k], scratch);
        }
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let dots = dot4_dispatch(arow, &scratch[..4 * k]);
            let crow = &mut c[i * n + j..i * n + j + 4];
            crow[0] += dots[0];
            crow[1] += dots[1];
            crow[2] += dots[2];
            crow[3] += dots[3];
        }
        j += 4;
    }
    while j < n {
        scratch.clear();
        decode_row_f16_into(&b.data[j * k..(j + 1) * k], scratch);
        for i in 0..m {
            c[i * n + j] += dot_dispatch(&a[i * k..(i + 1) * k], &scratch[..k]);
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm_a_bt;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    /// Row-major [k, n] -> Bᵀ rows [n, k] (reference layout for gemm_a_bt).
    fn transpose(b: &[f32], k: usize, n: usize) -> Vec<f32> {
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        bt
    }

    #[test]
    fn int8_simd_and_scalar_dots_are_bit_identical() {
        for len in [0usize, 1, 7, 15, 16, 17, 64, 200, 333] {
            let x: Vec<i8> = (0..len)
                .map(|i| ((i * 37 + 11) % 255) as u8 as i8)
                .collect();
            let y: Vec<i8> = (0..len).map(|i| ((i * 91 + 3) % 255) as u8 as i8).collect();
            assert_eq!(dot_i8(&x, &y), dot_i8_scalar(&x, &y), "len {len}");
        }
    }

    #[test]
    fn q8_gemm_simd_matches_scalar_bit_identically() {
        for &(m, k, n) in &[(1, 1, 1), (3, 17, 5), (8, 64, 32), (5, 130, 9)] {
            let a = fill(m * k, 11);
            let b = QuantizedBtMatrix::from_col_major(&fill(k * n, 12), k, n);
            let mut c_auto = vec![0.5f32; m * n];
            let mut c_scalar = vec![0.5f32; m * n];
            gemm_a_bt_q8(&a, &b, &mut c_auto, m, k);
            gemm_a_bt_q8_scalar(&a, &b, &mut c_scalar, m, k);
            for (x, y) in c_auto.iter().zip(&c_scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn q8_gemm_approximates_the_f32_product() {
        let (m, k, n) = (6, 48, 24);
        let a = fill(m * k, 21);
        let bf = fill(k * n, 22);
        let b = QuantizedBtMatrix::from_col_major(&bf, k, n);
        let mut c = vec![0.0f32; m * n];
        gemm_a_bt_q8(&a, &b, &mut c, m, k);
        let mut expected = vec![0.0f32; m * n];
        gemm_a_bt(&a, &transpose(&bf, k, n), &mut expected, m, k, n);
        // Two symmetric int8 quantizations (weights + activations) over values
        // in [-1, 1): per-element error stays well under k * 2 * (1/127).
        let bound = k as f32 * 2.5 / 127.0;
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() <= bound, "{x} vs {y}");
        }
    }

    #[test]
    fn q8_gemm_matches_integer_reference_exactly() {
        // The kernel's contract is exact: quantize A and B, integer-dot, rescale.
        let (m, k, n) = (4, 33, 7);
        let a = fill(m * k, 31);
        let b = QuantizedBtMatrix::from_col_major(&fill(k * n, 32), k, n);
        let mut c = vec![0.0f32; m * n];
        gemm_a_bt_q8(&a, &b, &mut c, m, k);
        let mut scratch = QGemmScratch::default();
        quantize_activations_into(&a, m, k, &mut scratch);
        for i in 0..m {
            for j in 0..n {
                let dot =
                    dot_i8_scalar(&scratch.qa[i * k..(i + 1) * k], &b.data[j * k..(j + 1) * k]);
                let expected = dot as f32 * scratch.scales[i] * b.scales[j];
                assert_eq!(c[i * n + j].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn f16_gemm_is_bit_identical_to_decode_then_f32_gemm() {
        for &(m, k, n) in &[(1, 1, 1), (3, 17, 5), (8, 64, 32), (5, 130, 9), (2, 40, 6)] {
            let a = fill(m * k, 41);
            let bf = fill(k * n, 42);
            let b = F16BtMatrix::from_col_major(&bf, k, n);
            let mut c = vec![0.25f32; m * n];
            gemm_a_bt_f16(&a, &b, &mut c, m, k);
            let decoded = b.decode_col_major();
            let mut expected = vec![0.25f32; m * n];
            gemm_a_bt(&a, &transpose(&decoded, k, n), &mut expected, m, k, n);
            for (x, y) in c.iter().zip(&expected) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn packed_matrices_report_reduced_resident_bytes() {
        let (k, n) = (64, 32);
        let bf = fill(k * n, 51);
        let f32_bytes = 4 * (k * n) as u64;
        let q8 = QuantizedBtMatrix::from_col_major(&bf, k, n);
        let f16 = F16BtMatrix::from_col_major(&bf, k, n);
        assert!(q8.resident_bytes() * 2 < f32_bytes, "int8 ≥ 2x smaller");
        assert_eq!(f16.resident_bytes() * 2, f32_bytes);
        assert_eq!((q8.cols(), q8.inner()), (n, k));
        assert_eq!((f16.cols(), f16.inner()), (n, k));
    }

    #[test]
    fn round_trip_operands_stay_within_the_per_row_bound() {
        let (k, n) = (16, 8);
        let bf = fill(k * n, 61);
        let dq = QuantizedBtMatrix::from_col_major(&bf, k, n).dequantize_col_major();
        for j in 0..n {
            let max_abs = (0..k).fold(0.0f32, |acc, p| acc.max(bf[p * n + j].abs()));
            for p in 0..k {
                let err = (bf[p * n + j] - dq[p * n + j]).abs();
                assert!(err <= max_abs / 254.0 * (1.0 + 1e-5));
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let b = QuantizedBtMatrix::from_col_major(&[], 0, 0);
        let mut c: Vec<f32> = Vec::new();
        gemm_a_bt_q8(&[], &b, &mut c, 0, 0);
        let f = F16BtMatrix::from_col_major(&[], 0, 0);
        gemm_a_bt_f16(&[], &f, &mut c, 0, 0);
    }
}
