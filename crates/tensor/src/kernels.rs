//! Runtime-dispatched, register-tiled, optionally parallel f32 matrix kernels.
//!
//! Everything dense in the DMT models funnels through the GEMM-family entry points in
//! this module, which operate on raw row-major slices:
//!
//! * [`gemm`] — `C += A·B` with `A: [m, k]`, `B: [k, n]`, used by [`crate::Tensor::matmul`].
//! * [`gemm_fused_bias`] — `C = bias ⊕ A·B` with an optional fused ReLU epilogue, the
//!   single-pass linear-layer forward ([`crate::Tensor::matmul_bias`] and the serving
//!   fast path).
//! * [`gemm_at_b`] — `C += Aᵀ·B` without materializing `Aᵀ` (the `dW = xᵀ·dy` step of a
//!   linear layer's backward pass).
//! * [`gemm_a_bt`] — `C += A·Bᵀ` without materializing `Bᵀ` (the `dx = dy·Wᵀ` step).
//!
//! The heavy lifting lives in [`crate::simd`]: AVX-512 / AVX2+FMA microkernels selected
//! once at runtime, with a portable `f32::mul_add` fallback that executes the *same*
//! per-element operation chains — so every tier (and the `*_scalar` reference entry
//! points below) produces bit-identical results on every shape. Large problems
//! (`m·k·n ≥` [`PARALLEL_FLOP_CUTOFF`]) additionally split their output row blocks
//! across threads with rayon; the split regroups independent per-element chains, so
//! parallel results are bit-identical to serial too.

use crate::simd::{a_bt_dispatch, a_bt_scalar, bgemm_dispatch, bgemm_scalar, BroadcastGemm};
use rayon::prelude::*;

/// Row-block tile size: rows of `A`/`C` per rayon work item.
pub const MC: usize = 128;

/// Widest SIMD register tile in columns (AVX-512 pair); kernel behavior
/// changes tiling — never results — at multiples of this.
pub const NR: usize = 32;

/// Minimum `m·k·n` at which the kernels fan out across threads.
///
/// Below this the serial microkernel wins. The threshold is sized for the vendored
/// rayon stand-in, which spawns scoped OS threads per call (no pool): `1 << 26`
/// multiply-accumulates is roughly a millisecond of serial work at the measured
/// single-core FMA throughput (~110 GFLOP/s at 512³), comfortably above per-call
/// thread start-up cost. The old scalar kernels used `1 << 25` for the same ~1 ms
/// invariant; the SIMD kernels are ~2x faster, so the cutoff doubles. A pooled rayon
/// would tolerate a cutoff one to two orders of magnitude lower.
pub const PARALLEL_FLOP_CUTOFF: usize = 1 << 26;

#[inline]
fn use_parallel(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PARALLEL_FLOP_CUTOFF
        && rayon::current_num_threads() > 1
        && m > 1
}

/// `C += A·B` for row-major `A: [m, k]`, `B: [k, n]`, `C: [m, n]`.
///
/// `C` must be pre-initialized by the caller (zeros for a plain product, a broadcast
/// bias for the fused linear forward); the kernel only accumulates. Each output
/// element's fma chain is seeded from its initial `C` value, so pre-initialization
/// participates in the canonical operation order (see [`crate::simd`]).
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    gemm_inner(a, b, None, c, m, k, n, false, bgemm_dispatch);
}

/// `C += A·B` on the dispatched microkernel, never fanning out across threads.
///
/// [`gemm`] normally chooses between this and the parallel path by problem size; the
/// explicit entry point exists so benches can compare serial against the parallel
/// dispatcher (results are bit-identical either way).
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_serial: A length");
    assert_eq!(b.len(), k * n, "gemm_serial: B length");
    assert_eq!(c.len(), m * n, "gemm_serial: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    bgemm_dispatch(
        &BroadcastGemm {
            a,
            a_row_stride: k,
            a_step_stride: 1,
            steps: k,
            b,
            n,
            rows: m,
            bias: None,
            relu: false,
        },
        c,
    );
}

/// [`gemm`] forced onto the portable fallback tier — the differential half of the
/// SIMD bit-identity tests. Results match [`gemm`] bit for bit by construction.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_scalar: A length");
    assert_eq!(b.len(), k * n, "gemm_scalar: B length");
    assert_eq!(c.len(), m * n, "gemm_scalar: C length");
    gemm_inner(a, b, None, c, m, k, n, false, bgemm_scalar);
}

/// `C = bias ⊕ A·B` in one pass: every output chain is seeded from `bias[j]`,
/// `C` is overwritten, and `relu` optionally applies the fused epilogue
/// `if v > 0.0 { v } else { 0.0 }` before writeback.
///
/// Bit-identical to broadcasting `bias` into `C`, calling [`gemm`], and mapping the
/// same ReLU over the result — the fused form just skips the extra passes, which is
/// what the serving forward path wants.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused_bias(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_fused_bias: A length");
    assert_eq!(b.len(), k * n, "gemm_fused_bias: B length");
    assert_eq!(bias.len(), n, "gemm_fused_bias: bias length");
    assert_eq!(c.len(), m * n, "gemm_fused_bias: C length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for row in c.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                let v = bv;
                *o = if relu {
                    if v > 0.0 {
                        v
                    } else {
                        0.0
                    }
                } else {
                    v
                };
            }
        }
        return;
    }
    gemm_inner(a, b, Some(bias), c, m, k, n, relu, bgemm_dispatch);
}

/// [`gemm_fused_bias`] forced onto the portable fallback tier, for the
/// differential bit-identity tests.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused_bias_scalar(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_fused_bias_scalar: A length");
    assert_eq!(b.len(), k * n, "gemm_fused_bias_scalar: B length");
    assert_eq!(bias.len(), n, "gemm_fused_bias_scalar: bias length");
    assert_eq!(c.len(), m * n, "gemm_fused_bias_scalar: C length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for row in c.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o = if relu && bv <= 0.0 { 0.0 } else { bv };
            }
        }
        return;
    }
    gemm_inner(a, b, Some(bias), c, m, k, n, relu, bgemm_scalar);
}

/// Shared `A·B` driver: splits output rows across threads above the cutoff,
/// delegating each band to `kernel` (the dispatched or forced-scalar tier).
#[allow(clippy::too_many_arguments)]
fn gemm_inner(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    kernel: fn(&BroadcastGemm<'_>, &mut [f32]),
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_parallel(m, k, n) {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let row0 = block * MC;
                let rows = c_rows.len() / n;
                kernel(
                    &BroadcastGemm {
                        a: &a[row0 * k..(row0 + rows) * k],
                        a_row_stride: k,
                        a_step_stride: 1,
                        steps: k,
                        b,
                        n,
                        rows,
                        bias,
                        relu,
                    },
                    c_rows,
                );
            });
    } else {
        kernel(
            &BroadcastGemm {
                a,
                a_row_stride: k,
                a_step_stride: 1,
                steps: k,
                b,
                n,
                rows: m,
                bias,
                relu,
            },
            c,
        );
    }
}

/// `C += Aᵀ·B` for row-major `A: [m, r]`, `B: [m, n]`, `C: [r, n]`, without building
/// the transpose of `A`.
///
/// This is the weight-gradient GEMM of a linear layer (`dW = xᵀ·dy`): each input row
/// `i` contributes the rank-1 update `A[i, ·] ⊗ B[i, ·]`. The parallel path splits the
/// `r` output rows across threads; each thread streams all of `A` and `B` once but
/// touches a disjoint row band of `C`.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, r: usize, n: usize) {
    assert_eq!(a.len(), m * r, "gemm_at_b: A length");
    assert_eq!(b.len(), m * n, "gemm_at_b: B length");
    assert_eq!(c.len(), r * n, "gemm_at_b: C length");
    at_b_inner(a, b, c, m, r, n, bgemm_dispatch);
}

/// [`gemm_at_b`] forced onto the portable fallback tier, for the differential
/// bit-identity tests.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_at_b_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, r: usize, n: usize) {
    assert_eq!(a.len(), m * r, "gemm_at_b_scalar: A length");
    assert_eq!(b.len(), m * n, "gemm_at_b_scalar: B length");
    assert_eq!(c.len(), r * n, "gemm_at_b_scalar: C length");
    at_b_inner(a, b, c, m, r, n, bgemm_scalar);
}

/// Shared `Aᵀ·B` driver: the broadcast kernel with swapped strides
/// (`a_row_stride = 1`, `a_step_stride = r`) walks `Aᵀ` rows for free.
fn at_b_inner(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    r: usize,
    n: usize,
    kernel: fn(&BroadcastGemm<'_>, &mut [f32]),
) {
    if m == 0 || r == 0 || n == 0 {
        return;
    }
    if use_parallel(m, r, n) && r >= 4 {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let q0 = block * MC;
                let rows = c_rows.len() / n;
                kernel(
                    &BroadcastGemm {
                        a: &a[q0..],
                        a_row_stride: 1,
                        a_step_stride: r,
                        steps: m,
                        b,
                        n,
                        rows,
                        bias: None,
                        relu: false,
                    },
                    c_rows,
                );
            });
    } else {
        kernel(
            &BroadcastGemm {
                a,
                a_row_stride: 1,
                a_step_stride: r,
                steps: m,
                b,
                n,
                rows: r,
                bias: None,
                relu: false,
            },
            c,
        );
    }
}

/// `C += A·Bᵀ` for row-major `A: [m, k]`, `B: [n, k]`, `C: [m, n]`, without building
/// the transpose of `B`.
///
/// This is the input-gradient GEMM of a linear layer (`dx = dy·Wᵀ`): `C[i, j]` is the
/// dot product of row `i` of `A` with row `j` of `B`, so both operands stream
/// row-major with unit stride. Every dot uses the canonical 16-lane layout and fold
/// tree (see [`crate::simd`]), so SIMD, scalar and parallel results are identical.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_a_bt: A length");
    assert_eq!(b.len(), n * k, "gemm_a_bt: B length");
    assert_eq!(c.len(), m * n, "gemm_a_bt: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_parallel(m, k, n) {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let row0 = block * MC;
                let rows = c_rows.len() / n;
                a_bt_dispatch(&a[row0 * k..(row0 + rows) * k], b, c_rows, rows, k, n);
            });
    } else {
        a_bt_dispatch(a, b, c, m, k, n);
    }
}

/// [`gemm_a_bt`] forced onto the portable fallback tier, for the differential
/// bit-identity tests.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_a_bt_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_a_bt_scalar: A length");
    assert_eq!(b.len(), n * k, "gemm_a_bt_scalar: B length");
    assert_eq!(c.len(), m * n, "gemm_a_bt_scalar: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    a_bt_scalar(a, b, c, m, k, n);
}

/// Reference triple-loop `C += A·B`, kept for differential tests and benches.
///
/// This is the seed implementation [`crate::Tensor::matmul`] shipped with; the
/// dispatched kernels are validated against it to `≤ 1e-4` relative error and benched
/// against it for the naive-vs-SIMD comparison. Like every other kernel here it now
/// accumulates into a caller-owned output instead of allocating one.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_naive: A length");
    assert_eq!(b.len(), k * n, "gemm_naive: B length");
    assert_eq!(c.len(), m * n, "gemm_naive: C length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32]) {
        assert_eq!(actual.len(), expected.len());
        for (i, (&x, &y)) in actual.iter().zip(expected).enumerate() {
            let denom = y.abs().max(1.0);
            assert!((x - y).abs() / denom <= 1e-4, "element {i}: {x} vs {y}");
        }
    }

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        gemm_naive(a, b, &mut c, m, k, n);
        c
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (5, 3, 4),
        (64, 64, 64),
        (65, 63, 67),
        (4, 130, 9),
        (130, 5, 130),
        (7, 33, 31),
        (8, 16, 48),
    ];

    #[test]
    fn gemm_matches_naive_across_shapes() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0; m * n];
            gemm(&a, &b, &mut c, m, k, n);
            assert_close(&c, &naive(&a, &b, m, k, n));
        }
    }

    #[test]
    fn gemm_dispatch_matches_scalar_bit_identically() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c_simd = fill(m * n, 3);
            let mut c_scalar = c_simd.clone();
            gemm(&a, &b, &mut c_simd, m, k, n);
            gemm_scalar(&a, &b, &mut c_scalar, m, k, n);
            for (x, y) in c_simd.iter().zip(&c_scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn fused_bias_matches_broadcast_then_gemm_bit_identically() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 4);
            let b = fill(k * n, 5);
            let bias = fill(n, 6);
            for relu in [false, true] {
                let mut fused = vec![-1.0; m * n];
                gemm_fused_bias(&a, &b, &bias, &mut fused, m, k, n, relu);
                let mut reference = Vec::with_capacity(m * n);
                for _ in 0..m {
                    reference.extend_from_slice(&bias);
                }
                gemm(&a, &b, &mut reference, m, k, n);
                if relu {
                    for v in &mut reference {
                        *v = if *v > 0.0 { *v } else { 0.0 };
                    }
                }
                for (x, y) in fused.iter().zip(&reference) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n}) relu={relu}");
                }
                let mut fused_scalar = vec![-2.0; m * n];
                gemm_fused_bias_scalar(&a, &b, &bias, &mut fused_scalar, m, k, n, relu);
                for (x, y) in fused.iter().zip(&fused_scalar) {
                    assert_eq!(x.to_bits(), y.to_bits(), "scalar ({m},{k},{n}) relu={relu}");
                }
            }
        }
    }

    #[test]
    fn fused_relu_epilogue_handles_special_values() {
        // One negative product, one NaN input: relu must send both to +0.0 /
        // 0.0 exactly as the scalar definition does.
        let a = [1.0f32, f32::NAN];
        let b = [1.0f32];
        let bias = [0.0f32];
        let mut c = [9.0f32; 2];
        gemm_fused_bias(&a, &b, &bias, &mut c, 2, 1, 1, true);
        assert_eq!(c[0].to_bits(), 1.0f32.to_bits());
        assert_eq!(c[1].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn gemm_accumulates_into_preinitialized_output() {
        let (m, k, n) = (3, 4, 5);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = vec![1.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        let plain = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&plain) {
            assert!((x - (y + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        for &(m, r, n) in &[(1, 1, 1), (6, 5, 4), (64, 65, 63), (129, 32, 7)] {
            let a = fill(m * r, 5);
            let b = fill(m * n, 6);
            // Explicit Aᵀ.
            let mut at = vec![0.0; r * m];
            for i in 0..m {
                for q in 0..r {
                    at[q * m + i] = a[i * r + q];
                }
            }
            let expected = naive(&at, &b, r, m, n);
            let mut c = vec![0.0; r * n];
            gemm_at_b(&a, &b, &mut c, m, r, n);
            assert_close(&c, &expected);
            let mut c_scalar = vec![0.0; r * n];
            gemm_at_b_scalar(&a, &b, &mut c_scalar, m, r, n);
            for (x, y) in c.iter().zip(&c_scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{r},{n})");
            }
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        for &(m, k, n) in &[(1, 1, 1), (6, 5, 4), (64, 65, 63), (33, 128, 130)] {
            let a = fill(m * k, 7);
            let b = fill(n * k, 8);
            let mut bt = vec![0.0; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            let expected = naive(&a, &bt, m, k, n);
            let mut c = vec![0.0; m * n];
            gemm_a_bt(&a, &b, &mut c, m, k, n);
            assert_close(&c, &expected);
            let mut c_scalar = vec![0.0; m * n];
            gemm_a_bt_scalar(&a, &b, &mut c_scalar, m, k, n);
            for (x, y) in c.iter().zip(&c_scalar) {
                assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let mut empty: Vec<f32> = Vec::new();
        gemm(&[], &[], &mut empty, 0, 3, 0);
        gemm_at_b(&[], &[], &mut empty, 0, 0, 4);
        gemm_a_bt(&[], &[], &mut empty, 0, 2, 0);
        let a = fill(3, 9);
        let mut c = vec![0.0; 3];
        // k = 0 leaves C untouched.
        gemm(&[], &[], &mut c, 3, 0, 1);
        assert_eq!(c, vec![0.0; 3]);
        let _ = a;
        // k = 0 fused bias still writes the (relu'd) bias.
        let bias = [-1.0f32, 2.0];
        let mut out = [9.0f32; 4];
        gemm_fused_bias(&[], &[], &bias, &mut out, 2, 0, 2, true);
        assert_eq!(out, [0.0, 2.0, 0.0, 2.0]);
    }
}
