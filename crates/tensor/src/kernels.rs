//! Cache-blocked, register-tiled, optionally parallel f32 matrix kernels.
//!
//! Everything dense in the DMT models funnels through the GEMM-family entry points in
//! this module, which operate on raw row-major slices:
//!
//! * [`gemm`] — `C += A·B` with `A: [m, k]`, `B: [k, n]`, used by [`crate::Tensor::matmul`]
//!   and the fused bias variant.
//! * [`gemm_at_b`] — `C += Aᵀ·B` without materializing `Aᵀ` (the `dW = xᵀ·dy` step of a
//!   linear layer's backward pass).
//! * [`gemm_a_bt`] — `C += A·Bᵀ` without materializing `Bᵀ` (the `dx = dy·Wᵀ` step).
//!
//! The compute is tiled `MC × KC × NC` (64³ by default) so each inner block works on
//! slices that stay resident in L1/L2, and the innermost loops process four output
//! rows per pass so every load of a `B` row is reused fourfold. Large problems
//! (`m·k·n ≥` [`PARALLEL_FLOP_CUTOFF`]) additionally split their output row blocks
//! across threads with rayon; small ones stay on the serial microkernel so tiny layer
//! shapes never pay thread overhead.

use rayon::prelude::*;

/// Row-block tile size (rows of `A`/`C` per block).
pub const MC: usize = 128;
/// Depth tile size (the shared `k` dimension per block).
pub const KC: usize = 256;
/// Column tile size (columns of `B`/`C` per block).
pub const NC: usize = 64;

/// Minimum `m·k·n` at which the kernels fan out across threads.
///
/// Below this the serial microkernel wins. The threshold is sized for the vendored
/// rayon stand-in, which spawns scoped OS threads per call (no pool): `1 << 25`
/// multiply-accumulates is roughly a millisecond of serial work at the measured
/// single-core throughput, comfortably above per-call thread start-up cost. A pooled
/// rayon would tolerate a cutoff one to two orders of magnitude lower.
pub const PARALLEL_FLOP_CUTOFF: usize = 1 << 25;

#[inline]
fn use_parallel(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PARALLEL_FLOP_CUTOFF
        && rayon::current_num_threads() > 1
        && m > 1
}

/// `C += A·B` for row-major `A: [m, k]`, `B: [k, n]`, `C: [m, n]`.
///
/// `C` must be pre-initialized by the caller (zeros for a plain product, a broadcast
/// bias for the fused linear forward); the kernel only accumulates.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_parallel(m, k, n) {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let row0 = block * MC;
                let rows = c_rows.len() / n;
                gemm_rows(&a[row0 * k..(row0 + rows) * k], b, c_rows, rows, k, n);
            });
    } else {
        gemm_rows(a, b, c, m, k, n);
    }
}

/// `C += A·B` on the blocked microkernel, never fanning out across threads.
///
/// [`gemm`] normally chooses between this and the parallel path by problem size; the
/// explicit entry point exists so benches can compare serial-blocked against
/// naive and against the parallel dispatcher.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_serial: A length");
    assert_eq!(b.len(), k * n, "gemm_serial: B length");
    assert_eq!(c.len(), m * n, "gemm_serial: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_rows(a, b, c, m, k, n);
}

/// Serial blocked `C += A·B` over a contiguous row range.
fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for kc in (0..k).step_by(KC) {
        let kc_end = (kc + KC).min(k);
        for jc in (0..n).step_by(NC) {
            let jc_end = (jc + NC).min(n);
            for ic in (0..m).step_by(MC) {
                let ic_end = (ic + MC).min(m);
                gemm_block(a, b, c, k, n, ic, ic_end, kc, kc_end, jc, jc_end);
            }
        }
    }
}

/// Register-tile width: C columns accumulated in registers across the k-loop.
const NR: usize = 32;

/// One `MC × KC × NC` block via a 4×[`NR`] register-tiled microkernel.
///
/// Each microkernel instance accumulates a 4-row × `NR`-column tile of `C` in
/// registers over the whole `kc..kc_end` depth, so `C` is loaded and stored once per
/// depth block instead of once per `k` step — the naive kernel's bottleneck. The
/// accumulator arrays are independent lanes, which keeps the strict-FP loop
/// vectorizable (no cross-lane reduction until the final writeback).
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    ic: usize,
    ic_end: usize,
    kc: usize,
    kc_end: usize,
    jc: usize,
    jc_end: usize,
) {
    let mut i = ic;
    while i + 4 <= ic_end {
        let mut j = jc;
        while j + NR <= jc_end {
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            let mut acc2 = [0.0f32; NR];
            let mut acc3 = [0.0f32; NR];
            for p in kc..kc_end {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let bt: &[f32; NR] = b[p * n + j..p * n + j + NR].try_into().unwrap();
                for l in 0..NR {
                    let bv = bt[l];
                    acc0[l] += a0 * bv;
                    acc1[l] += a1 * bv;
                    acc2[l] += a2 * bv;
                    acc3[l] += a3 * bv;
                }
            }
            for l in 0..NR {
                c[i * n + j + l] += acc0[l];
                c[(i + 1) * n + j + l] += acc1[l];
                c[(i + 2) * n + j + l] += acc2[l];
                c[(i + 3) * n + j + l] += acc3[l];
            }
            j += NR;
        }
        // Column remainder for this row quad.
        if j < jc_end {
            for p in kc..kc_end {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let brow = &b[p * n..];
                for jj in j..jc_end {
                    let bv = brow[jj];
                    c[i * n + jj] += a0 * bv;
                    c[(i + 1) * n + jj] += a1 * bv;
                    c[(i + 2) * n + jj] += a2 * bv;
                    c[(i + 3) * n + jj] += a3 * bv;
                }
            }
        }
        i += 4;
    }
    // Row remainder one row at a time. No zero-skip here: the quad path above always
    // multiplies, so skipping would make NaN/Inf propagation depend on which path a
    // row lands in.
    while i < ic_end {
        let crow = &mut c[i * n + jc..i * n + jc_end];
        let jw = jc_end - jc;
        for p in kc..kc_end {
            let av = a[i * k + p];
            let brow = &b[p * n + jc..p * n + jc_end];
            for jj in 0..jw {
                crow[jj] += av * brow[jj];
            }
        }
        i += 1;
    }
}

/// `C += Aᵀ·B` for row-major `A: [m, r]`, `B: [m, n]`, `C: [r, n]`, without building
/// the transpose of `A`.
///
/// This is the weight-gradient GEMM of a linear layer (`dW = xᵀ·dy`): each input row
/// `i` contributes the rank-1 update `A[i, ·] ⊗ B[i, ·]`. The parallel path splits the
/// `r` output rows across threads; each thread streams all of `A` and `B` once but
/// touches a disjoint row band of `C`.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, r: usize, n: usize) {
    assert_eq!(a.len(), m * r, "gemm_at_b: A length");
    assert_eq!(b.len(), m * n, "gemm_at_b: B length");
    assert_eq!(c.len(), r * n, "gemm_at_b: C length");
    if m == 0 || r == 0 || n == 0 {
        return;
    }
    if use_parallel(m, r, n) && r >= 4 {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let q0 = block * MC;
                let rows = c_rows.len() / n;
                at_b_rows(a, b, c_rows, m, r, n, q0, q0 + rows);
            });
    } else {
        at_b_rows(a, b, c, m, r, n, 0, r);
    }
}

/// Serial `C[q0..q1, ·] += (Aᵀ·B)[q0..q1, ·]`; `c` holds only the `q0..q1` band.
///
/// Register-tiled like [`gemm`]: a 4×[`NR`] tile of `C` stays in registers across the
/// whole sample loop. The four `A` values feeding a tile row are `a[i, q..q+4]` —
/// contiguous in row-major `A` — so the transposed operand costs nothing extra.
#[allow(clippy::too_many_arguments)]
fn at_b_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    r: usize,
    n: usize,
    q0: usize,
    q1: usize,
) {
    let band = q1 - q0;
    let mut q = 0;
    while q + 4 <= band {
        let mut j = 0;
        while j + NR <= n {
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            let mut acc2 = [0.0f32; NR];
            let mut acc3 = [0.0f32; NR];
            for i in 0..m {
                let aq: &[f32; 4] = a[i * r + q0 + q..i * r + q0 + q + 4].try_into().unwrap();
                let bt: &[f32; NR] = b[i * n + j..i * n + j + NR].try_into().unwrap();
                for l in 0..NR {
                    let bv = bt[l];
                    acc0[l] += aq[0] * bv;
                    acc1[l] += aq[1] * bv;
                    acc2[l] += aq[2] * bv;
                    acc3[l] += aq[3] * bv;
                }
            }
            for l in 0..NR {
                c[q * n + j + l] += acc0[l];
                c[(q + 1) * n + j + l] += acc1[l];
                c[(q + 2) * n + j + l] += acc2[l];
                c[(q + 3) * n + j + l] += acc3[l];
            }
            j += NR;
        }
        // Column remainder for this q quad.
        if j < n {
            for i in 0..m {
                let aq: &[f32; 4] = a[i * r + q0 + q..i * r + q0 + q + 4].try_into().unwrap();
                let brow = &b[i * n..(i + 1) * n];
                for jj in j..n {
                    let bv = brow[jj];
                    c[q * n + jj] += aq[0] * bv;
                    c[(q + 1) * n + jj] += aq[1] * bv;
                    c[(q + 2) * n + jj] += aq[2] * bv;
                    c[(q + 3) * n + jj] += aq[3] * bv;
                }
            }
        }
        q += 4;
    }
    // Row remainder: rank-1 update per sample for the last (< 4) band rows. No
    // zero-skip, matching the quad path's NaN/Inf propagation.
    while q < band {
        let crow = &mut c[q * n..(q + 1) * n];
        for i in 0..m {
            let av = a[i * r + q0 + q];
            let brow = &b[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
        q += 1;
    }
}

/// `C += A·Bᵀ` for row-major `A: [m, k]`, `B: [n, k]`, `C: [m, n]`, without building
/// the transpose of `B`.
///
/// This is the input-gradient GEMM of a linear layer (`dx = dy·Wᵀ`): `C[i, j]` is the
/// dot product of row `i` of `A` with row `j` of `B`, so both operands stream
/// row-major with unit stride.
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_a_bt: A length");
    assert_eq!(b.len(), n * k, "gemm_a_bt: B length");
    assert_eq!(c.len(), m * n, "gemm_a_bt: C length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if use_parallel(m, k, n) {
        c.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(block, c_rows)| {
                let row0 = block * MC;
                let rows = c_rows.len() / n;
                a_bt_rows(&a[row0 * k..(row0 + rows) * k], b, c_rows, rows, k, n);
            });
    } else {
        a_bt_rows(a, b, c, m, k, n);
    }
}

/// Dot-product lanes: independent partial sums so the strict-FP reduction vectorizes.
const DOT_LANES: usize = 16;

/// `Σ_p x[p]·y[p]` with [`DOT_LANES`] independent accumulator lanes.
///
/// A single running sum is a serial FP dependency chain the compiler must not
/// reassociate; `DOT_LANES` parallel lanes folded at the end keep the loop wide.
#[inline]
pub(crate) fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; DOT_LANES];
    let chunks = x.len() / DOT_LANES * DOT_LANES;
    let mut p = 0;
    while p < chunks {
        let xt: &[f32; DOT_LANES] = x[p..p + DOT_LANES].try_into().unwrap();
        let yt: &[f32; DOT_LANES] = y[p..p + DOT_LANES].try_into().unwrap();
        for l in 0..DOT_LANES {
            acc[l] += xt[l] * yt[l];
        }
        p += DOT_LANES;
    }
    let mut tail = 0.0f32;
    while p < x.len() {
        tail += x[p] * y[p];
        p += 1;
    }
    acc.iter().sum::<f32>() + tail
}

/// Four dot products against a shared left operand, computed in one fused loop.
///
/// Fusing keeps 4×[`DOT_LANES`] independent accumulator chains in flight (a single
/// running dot is a serial FP dependency the compiler must not reassociate) and reads
/// the shared `x` row once for all four products.
#[inline]
pub(crate) fn dot4_lanes(x: &[f32], y0: &[f32], y1: &[f32], y2: &[f32], y3: &[f32]) -> [f32; 4] {
    let k = x.len();
    let mut acc0 = [0.0f32; DOT_LANES];
    let mut acc1 = [0.0f32; DOT_LANES];
    let mut acc2 = [0.0f32; DOT_LANES];
    let mut acc3 = [0.0f32; DOT_LANES];
    let chunks = k / DOT_LANES * DOT_LANES;
    let mut p = 0;
    while p < chunks {
        let xt: &[f32; DOT_LANES] = x[p..p + DOT_LANES].try_into().unwrap();
        let y0t: &[f32; DOT_LANES] = y0[p..p + DOT_LANES].try_into().unwrap();
        let y1t: &[f32; DOT_LANES] = y1[p..p + DOT_LANES].try_into().unwrap();
        let y2t: &[f32; DOT_LANES] = y2[p..p + DOT_LANES].try_into().unwrap();
        let y3t: &[f32; DOT_LANES] = y3[p..p + DOT_LANES].try_into().unwrap();
        for l in 0..DOT_LANES {
            let xv = xt[l];
            acc0[l] += xv * y0t[l];
            acc1[l] += xv * y1t[l];
            acc2[l] += xv * y2t[l];
            acc3[l] += xv * y3t[l];
        }
        p += DOT_LANES;
    }
    let mut tails = [0.0f32; 4];
    while p < k {
        let xv = x[p];
        tails[0] += xv * y0[p];
        tails[1] += xv * y1[p];
        tails[2] += xv * y2[p];
        tails[3] += xv * y3[p];
        p += 1;
    }
    [
        acc0.iter().sum::<f32>() + tails[0],
        acc1.iter().sum::<f32>() + tails[1],
        acc2.iter().sum::<f32>() + tails[2],
        acc3.iter().sum::<f32>() + tails[3],
    ]
}

/// Serial `C += A·Bᵀ` over a contiguous row range, four fused dot products per pass.
fn a_bt_rows(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let dots = dot4_lanes(
                arow,
                &b[j * k..(j + 1) * k],
                &b[(j + 1) * k..(j + 2) * k],
                &b[(j + 2) * k..(j + 3) * k],
                &b[(j + 3) * k..(j + 4) * k],
            );
            crow[j] += dots[0];
            crow[j + 1] += dots[1];
            crow[j + 2] += dots[2];
            crow[j + 3] += dots[3];
            j += 4;
        }
        while j < n {
            crow[j] += dot_lanes(arow, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

/// Reference triple-loop `C = A·B`, kept for differential tests and benches.
///
/// This is the seed implementation [`crate::Tensor::matmul`] shipped with; the
/// blocked kernels are validated against it to `≤ 1e-4` relative error and benched
/// against it for the serial-vs-blocked-vs-parallel comparison.
#[must_use]
pub fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32]) {
        assert_eq!(actual.len(), expected.len());
        for (i, (&x, &y)) in actual.iter().zip(expected).enumerate() {
            let denom = y.abs().max(1.0);
            assert!((x - y).abs() / denom <= 1e-4, "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_matches_naive_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (5, 3, 4),
            (64, 64, 64),
            (65, 63, 67),
            (4, 130, 9),
            (130, 5, 130),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0; m * n];
            gemm(&a, &b, &mut c, m, k, n);
            assert_close(&c, &gemm_naive(&a, &b, m, k, n));
        }
    }

    #[test]
    fn gemm_accumulates_into_preinitialized_output() {
        let (m, k, n) = (3, 4, 5);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = vec![1.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        let plain = gemm_naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&plain) {
            assert!((x - (y + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        for &(m, r, n) in &[(1, 1, 1), (6, 5, 4), (64, 65, 63), (129, 32, 7)] {
            let a = fill(m * r, 5);
            let b = fill(m * n, 6);
            // Explicit Aᵀ.
            let mut at = vec![0.0; r * m];
            for i in 0..m {
                for q in 0..r {
                    at[q * m + i] = a[i * r + q];
                }
            }
            let expected = gemm_naive(&at, &b, r, m, n);
            let mut c = vec![0.0; r * n];
            gemm_at_b(&a, &b, &mut c, m, r, n);
            assert_close(&c, &expected);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        for &(m, k, n) in &[(1, 1, 1), (6, 5, 4), (64, 65, 63), (33, 128, 130)] {
            let a = fill(m * k, 7);
            let b = fill(n * k, 8);
            let mut bt = vec![0.0; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            let expected = gemm_naive(&a, &bt, m, k, n);
            let mut c = vec![0.0; m * n];
            gemm_a_bt(&a, &b, &mut c, m, k, n);
            assert_close(&c, &expected);
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let mut empty: Vec<f32> = Vec::new();
        gemm(&[], &[], &mut empty, 0, 3, 0);
        gemm_at_b(&[], &[], &mut empty, 0, 0, 4);
        gemm_a_bt(&[], &[], &mut empty, 0, 2, 0);
        let a = fill(3, 9);
        let mut c = vec![0.0; 3];
        // k = 0 leaves C untouched.
        gemm(&[], &[], &mut c, 3, 0, 1);
        assert_eq!(c, vec![0.0; 3]);
        let _ = a;
    }
}
