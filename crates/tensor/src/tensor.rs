//! The dense row-major `f32` tensor and its operations.

use crate::kernels;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Length of the provided data.
        data_len: usize,
    },
    /// Two tensors had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// The operation requires a different rank (number of dimensions).
    RankMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index or dimension argument was out of bounds.
    IndexOutOfBounds {
        /// Description of the operation.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => {
                write!(
                    f,
                    "shape {shape:?} requires {} elements but {data_len} were provided",
                    shape.iter().product::<usize>()
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds ({bound})")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// `(rows, cols)` of one matrix operand.
type MatDims = (usize, usize);

/// A dense, contiguous, row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// The default tensor is the empty `[0]` vector — the natural seed for
/// reusable `*_into` output buffers, which reshape on first use.
impl Default for Tensor {
    fn default() -> Self {
        Self {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                data_len: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// A tensor filled with zeros.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with ones.
    #[must_use]
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Reshapes `self` in place to `shape` and zero-fills the data — the
    /// reusable-output idiom of the `*_into` kernels. Allocation-free once the
    /// buffer's capacity has grown to `shape`'s element count.
    pub fn reset_to_shape(&mut self, shape: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        let len = shape.iter().product();
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// A tensor filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Borrow of the underlying row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the new shape does not preserve
    /// the number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        Self::from_vec(shape.to_vec(), self.data.clone())
    }

    /// Element at a 2-D position. Only valid for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at() requires a rank-2 tensor");
        self.data[row * self.shape[1] + col]
    }

    /// Sets the element at a 2-D position. Only valid for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.rank(), 2, "set() requires a rank-2 tensor");
        let cols = self.shape[1];
        self.data[row * cols + col] = value;
    }

    fn check_same_shape(&self, other: &Self, op: &'static str) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, TensorError> {
        self.check_same_shape(other, "mul")?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scalar`, returning a new tensor.
    #[must_use]
    pub fn scale(&self, scalar: f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|x| x * scalar).collect(),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn dot(&self, other: &Self) -> Result<f32, TensorError> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// L2 norm of the tensor viewed as a flat vector.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Checks that `self` and `other` are matrices with compatible `[m, k] x [k2, n]`
    /// shapes for `op`, where the caller interprets `k`/`k2` according to the kernel
    /// (e.g. for `AᵀB` the *row* counts must agree). Returns `(rows, cols)` of each.
    fn matmul_dims(
        &self,
        other: &Self,
        op: &'static str,
    ) -> Result<(MatDims, MatDims), TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: other.rank(),
            });
        }
        Ok((
            (self.shape[0], self.shape[1]),
            (other.shape[0], other.shape[1]),
        ))
    }

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Dispatches to the cache-blocked kernel in [`crate::kernels`], which tiles the
    /// loops for locality and parallelizes large shapes across threads.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        let ((m, k), (k2, n)) = self.matmul_dims(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        kernels::gemm(&self.data, &other.data, &mut out, m, k, n);
        Ok(Self {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Fused `self · weight + bias` with the bias row broadcast over every output row:
    /// `[m, k] x [k, n] + [n] -> [m, n]`.
    ///
    /// Single-pass: every output element's fma chain is seeded directly from its bias
    /// value inside the kernel ([`kernels::gemm_fused_bias`]), so no intermediate
    /// product tensor or separate bias broadcast pass exists. Bit-identical to
    /// broadcasting the bias and accumulating a GEMM on top.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] if the
    /// operands are not conforming matrices or `bias` is not a length-`n` vector.
    pub fn matmul_bias(&self, weight: &Self, bias: &Self) -> Result<Self, TensorError> {
        let mut out = Self::zeros(&[0]);
        self.matmul_bias_act_into(weight, bias, false, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matmul_bias`] with an optional fused ReLU epilogue, writing into a
    /// caller-owned output tensor (reshaped and overwritten; its buffer is reused) —
    /// the allocation-free linear-layer forward the serving hot path uses.
    ///
    /// The fused ReLU (`if v > 0.0 { v } else { 0.0 }`) is bit-identical to applying
    /// [`Tensor::map`]-style ReLU over the un-fused result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] if the
    /// operands are not conforming matrices or `bias` is not a length-`n` vector.
    pub fn matmul_bias_act_into(
        &self,
        weight: &Self,
        bias: &Self,
        relu: bool,
        out: &mut Self,
    ) -> Result<(), TensorError> {
        let ((m, k), (k2, n)) = self.matmul_dims(weight, "matmul_bias")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: self.shape.clone(),
                rhs: weight.shape.clone(),
            });
        }
        if bias.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "matmul_bias",
                expected: 1,
                actual: bias.rank(),
            });
        }
        if bias.shape[0] != n {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: weight.shape.clone(),
                rhs: bias.shape.clone(),
            });
        }
        out.reset_to_shape(&[m, n]);
        kernels::gemm_fused_bias(
            &self.data,
            &weight.data,
            &bias.data,
            &mut out.data,
            m,
            k,
            n,
            relu,
        );
        Ok(())
    }

    /// Fused `selfᵀ · other` without materializing the transpose:
    /// `[m, r]ᵀ x [m, n] -> [r, n]`.
    ///
    /// This is the weight-gradient product of a linear layer (`dW = xᵀ·dy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the row counts disagree.
    pub fn matmul_at_b(&self, other: &Self) -> Result<Self, TensorError> {
        let ((m, r), (m2, n)) = self.matmul_dims(other, "matmul_at_b")?;
        if m != m2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_at_b",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; r * n];
        kernels::gemm_at_b(&self.data, &other.data, &mut out, m, r, n);
        Ok(Self {
            shape: vec![r, n],
            data: out,
        })
    }

    /// Fused `self · otherᵀ` without materializing the transpose:
    /// `[m, k] x [n, k]ᵀ -> [m, n]`.
    ///
    /// This is the input-gradient product of a linear layer (`dx = dy·Wᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the shared inner widths disagree.
    pub fn matmul_a_bt(&self, other: &Self) -> Result<Self, TensorError> {
        let ((m, k), (n, k2)) = self.matmul_dims(other, "matmul_a_bt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_a_bt",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        kernels::gemm_a_bt(&self.data, &other.data, &mut out, m, k, n);
        Ok(Self {
            shape: vec![m, n],
            data: out,
        })
    }

    /// Fused elementwise `self ⊙ a + b` in a single pass (no intermediate product
    /// tensor) — the DCN cross-layer update `x_{l+1} = x_0 ⊙ u_l + x_l`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul_add(&self, a: &Self, b: &Self) -> Result<Self, TensorError> {
        self.check_same_shape(a, "mul_add")?;
        self.check_same_shape(b, "mul_add")?;
        let data = self
            .data
            .iter()
            .zip(&a.data)
            .zip(&b.data)
            .map(|((&x, &y), &z)| x * y + z)
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Self, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Self {
            shape: vec![n, m],
            data: out,
        })
    }

    /// Concatenates rank-2 tensors along the column dimension (dim 1). All inputs must
    /// have the same number of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if row counts differ,
    /// [`TensorError::RankMismatch`] for non-matrices, and
    /// [`TensorError::IndexOutOfBounds`] for an empty input list.
    pub fn concat_cols(tensors: &[&Self]) -> Result<Self, TensorError> {
        if tensors.is_empty() {
            return Err(TensorError::IndexOutOfBounds {
                op: "concat_cols",
                index: 0,
                bound: 0,
            });
        }
        let rows = tensors[0].shape.first().copied().unwrap_or(0);
        for t in tensors {
            if t.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "concat_cols",
                    expected: 2,
                    actual: t.rank(),
                });
            }
            if t.shape[0] != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: tensors[0].shape.clone(),
                    rhs: t.shape.clone(),
                });
            }
        }
        let total_cols: usize = tensors.iter().map(|t| t.shape[1]).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for t in tensors {
                let cols = t.shape[1];
                data.extend_from_slice(&t.data[r * cols..(r + 1) * cols]);
            }
        }
        Ok(Self {
            shape: vec![rows, total_cols],
            data,
        })
    }

    /// [`Tensor::concat_cols`] into a caller-owned tensor: `out` is overwritten
    /// (shape and data) without allocating once its buffer capacity has grown to
    /// the batch shape — the serving hot path's allocation-free form.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::concat_cols`].
    pub fn concat_cols_into(tensors: &[&Self], out: &mut Self) -> Result<(), TensorError> {
        if tensors.is_empty() {
            return Err(TensorError::IndexOutOfBounds {
                op: "concat_cols",
                index: 0,
                bound: 0,
            });
        }
        let rows = tensors[0].shape.first().copied().unwrap_or(0);
        for t in tensors {
            if t.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "concat_cols",
                    expected: 2,
                    actual: t.rank(),
                });
            }
            if t.shape[0] != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: tensors[0].shape.clone(),
                    rhs: t.shape.clone(),
                });
            }
        }
        let total_cols: usize = tensors.iter().map(|t| t.shape[1]).sum();
        out.shape.clear();
        out.shape.extend_from_slice(&[rows, total_cols]);
        out.data.clear();
        out.data.reserve(rows * total_cols);
        for r in 0..rows {
            for t in tensors {
                let cols = t.shape[1];
                out.data
                    .extend_from_slice(&t.data[r * cols..(r + 1) * cols]);
            }
        }
        Ok(())
    }

    /// [`Tensor::mul_add`] into a caller-owned tensor (same elementwise float
    /// path, allocation-free once `out`'s capacity has grown to the shape).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul_add_into(&self, a: &Self, b: &Self, out: &mut Self) -> Result<(), TensorError> {
        self.check_same_shape(a, "mul_add")?;
        self.check_same_shape(b, "mul_add")?;
        out.shape.clear();
        out.shape.extend_from_slice(&self.shape);
        out.data.clear();
        out.data.extend(
            self.data
                .iter()
                .zip(&a.data)
                .zip(&b.data)
                .map(|((&x, &y), &z)| x * y + z),
        );
        Ok(())
    }

    /// Splits a rank-2 tensor column-wise into pieces of the given widths.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the widths do not sum to the column
    /// count, or [`TensorError::RankMismatch`] for non-matrices.
    pub fn split_cols(&self, widths: &[usize]) -> Result<Vec<Self>, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "split_cols",
                expected: 2,
                actual: self.rank(),
            });
        }
        let total: usize = widths.iter().sum();
        if total != self.shape[1] {
            return Err(TensorError::ShapeMismatch {
                op: "split_cols",
                lhs: self.shape.clone(),
                rhs: vec![self.shape[0], total],
            });
        }
        let rows = self.shape[0];
        let cols = self.shape[1];
        let mut bufs: Vec<Vec<f32>> = widths
            .iter()
            .map(|w| Vec::with_capacity(rows * w))
            .collect();
        for r in 0..rows {
            let mut offset = 0;
            for (buf, w) in bufs.iter_mut().zip(widths) {
                buf.extend_from_slice(&self.data[r * cols + offset..r * cols + offset + w]);
                offset += w;
            }
        }
        Ok(bufs
            .into_iter()
            .zip(widths)
            .map(|(data, &w)| Self {
                shape: vec![rows, w],
                data,
            })
            .collect())
    }

    /// Returns the rows `[start, start + count)` of a rank-2 tensor as a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the range exceeds the row count,
    /// or [`TensorError::RankMismatch`] for non-matrices.
    pub fn slice_rows(&self, start: usize, count: usize) -> Result<Self, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "slice_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let rows = self.shape[0];
        if start + count > rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_rows",
                index: start + count,
                bound: rows,
            });
        }
        let cols = self.shape[1];
        let data = self.data[start * cols..(start + count) * cols].to_vec();
        Ok(Self {
            shape: vec![count, cols],
            data,
        })
    }

    /// Stacks rank-2 tensors with identical shapes along a new leading row dimension
    /// (i.e. vertical concatenation).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ,
    /// [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for an empty input list.
    pub fn concat_rows(tensors: &[&Self]) -> Result<Self, TensorError> {
        if tensors.is_empty() {
            return Err(TensorError::IndexOutOfBounds {
                op: "concat_rows",
                index: 0,
                bound: 0,
            });
        }
        let cols = tensors[0].shape.get(1).copied().unwrap_or(0);
        let mut rows = 0;
        for t in tensors {
            if t.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "concat_rows",
                    expected: 2,
                    actual: t.rank(),
                });
            }
            if t.shape[1] != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: tensors[0].shape.clone(),
                    rhs: t.shape.clone(),
                });
            }
            rows += t.shape[0];
        }
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Ok(Self {
            shape: vec![rows, cols],
            data,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![2, 2], vec![1.0; 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::full(&[2, 2], 2.0);
        assert_eq!(a.add(&b).unwrap().data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.scale(0.5).data(), &[0.5, 1.0, 1.5, 2.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &g).unwrap();
        a.axpy(0.5, &g).unwrap();
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&Tensor::zeros(&[4, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
        assert!(Tensor::zeros(&[3]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_bias_broadcasts_rows() {
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = Tensor::ones(&[3, 2]);
        let b = Tensor::from_vec(vec![2], vec![10.0, -10.0]).unwrap();
        let y = x.matmul_bias(&w, &b).unwrap();
        assert_eq!(y.data(), &[16.0, -4.0, 25.0, 5.0]);
        assert!(x.matmul_bias(&w, &Tensor::zeros(&[3])).is_err());
        assert!(x.matmul_bias(&Tensor::zeros(&[4, 2]), &b).is_err());
        assert!(x.matmul_bias(&w, &Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn fused_transposed_products_match_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|i| i as f32 * 0.5).collect()).unwrap();
        let fused = a.matmul_at_b(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(fused.shape(), explicit.shape());
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::from_vec(vec![4, 2], (0..8).map(|i| i as f32 - 3.0).collect()).unwrap();
        let fused = a.matmul_a_bt(&c).unwrap();
        let explicit = a.matmul(&c.transpose().unwrap()).unwrap();
        assert_eq!(fused.shape(), &[3, 4]);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        assert!(a.matmul_at_b(&Tensor::zeros(&[2, 4])).is_err());
        assert!(a.matmul_a_bt(&Tensor::zeros(&[4, 3])).is_err());
    }

    #[test]
    fn mul_add_fuses_hadamard_and_residual() {
        let x0 = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u = Tensor::from_vec(vec![2, 2], vec![0.5, 0.5, 2.0, 2.0]).unwrap();
        let xl = Tensor::from_vec(vec![2, 2], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let next = x0.mul_add(&u, &xl).unwrap();
        assert_eq!(next.data(), &[1.5, 2.0, 7.0, 9.0]);
        assert!(x0.mul_add(&u, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn concat_and_split_cols_are_inverse() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 1], vec![5.0, 6.0]).unwrap();
        let cat = Tensor::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), &[2, 3]);
        assert_eq!(cat.data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let parts = cat.split_cols(&[2, 1]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_rows_stacks_batches() {
        let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let cat = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), &[3, 2]);
        assert_eq!(cat.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(Tensor::concat_rows(&[]).is_err());
    }

    #[test]
    fn slice_rows_extracts_a_window() {
        let a = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = a.slice_rows(1, 2).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(a.slice_rows(2, 2).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.dot(&a).unwrap(), 30.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0; 6]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.shape(), &[3, 2]);
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn display_mentions_shape() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.to_string().contains("[2, 3]"));
    }

    #[test]
    fn map_applies_function() {
        let a = Tensor::from_vec(vec![2], vec![-1.0, 2.0]).unwrap();
        assert_eq!(a.map(|x| x.max(0.0)).data(), &[0.0, 2.0]);
    }
}
