//! Random weight initializers.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight matrix:
/// samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the initializer PyTorch's `nn.Linear`-style layers in DLRM/DCN use for
/// their dense weights.
#[must_use]
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    let dist = Uniform::new_inclusive(-a, a);
    let data = (0..fan_in * fan_out).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(vec![fan_in, fan_out], data).expect("xavier shape always matches data")
}

/// Kaiming/He uniform initialization for a `[fan_in, fan_out]` weight matrix feeding a
/// ReLU: samples from `U(-a, a)` with `a = sqrt(6 / fan_in)`.
#[must_use]
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / fan_in.max(1) as f64).sqrt() as f32;
    let dist = Uniform::new_inclusive(-a, a);
    let data = (0..fan_in * fan_out).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(vec![fan_in, fan_out], data).expect("kaiming shape always matches data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound_and_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 128, 64);
        assert_eq!(w.shape(), &[128, 64]);
        let bound = (6.0f32 / 192.0).sqrt() + 1e-6;
        assert!(w.data().iter().all(|x| x.abs() <= bound));
        // Not all zeros, and roughly centered.
        assert!(w.norm() > 0.0);
        assert!(w.mean().abs() < 0.01);
    }

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = kaiming_uniform(&mut rng, 64, 32);
        let bound = (6.0f32 / 64.0).sqrt() + 1e-6;
        assert!(w.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn initialization_is_deterministic_per_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(1), 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(1), 8, 8);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(2), 8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_fan_in_does_not_panic() {
        let w = kaiming_uniform(&mut StdRng::seed_from_u64(1), 0, 4);
        assert_eq!(w.len(), 0);
    }
}
