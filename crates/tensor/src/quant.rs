//! Storage precisions and scalar quantization primitives.
//!
//! PR 4 quantized the *wire* (`dmt_comm::codec` packs collective payloads into
//! fp16/int8 words); this module pushes the same two formats into *storage and
//! compute*: embedding tables and dense-layer weights held as int8 or fp16 and
//! dequantized on the fly inside the hot loops. The scalar conversions here are
//! the canonical definitions — the wire codec delegates its half-precision
//! conversion to [`f32_to_f16_bits`] / [`f16_bits_to_f32`] so wire words and
//! stored words are bit-compatible by construction.
//!
//! Two formats, two error models (identical to the wire codec's):
//!
//! * **fp16** — IEEE 754 binary16, round to nearest even. Round-trip error is
//!   `|x| · 2⁻¹¹ + 2⁻²⁵` for finite in-range inputs; values already
//!   representable in half precision (including everything that *came from* an
//!   fp16 word) round-trip bit-exactly.
//! * **int8** — symmetric linear quantization with a per-row scale
//!   `max_abs / 127`, rounding half away from zero. Round-trip error is
//!   bounded by `max_abs / 254` per row.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of stored model state (embedding rows, dense weights).
///
/// This is the storage/compute twin of `dmt_comm::codec::WireFormat` (which
/// packs bytes *in flight*): `dmt-serve` exposes it as `ComputePrecision` and
/// threads it through the whole serving forward pass — table shards, the
/// hot-row cache, and the tower/dense GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes per element: full single precision, the training format.
    #[default]
    F32,
    /// 2 bytes per element: IEEE 754 binary16 words, decoded on access.
    Fp16,
    /// 1 byte per element plus one `f32` scale per row: symmetric linear
    /// quantization with per-row scale `max_abs / 127`.
    Int8,
}

impl Precision {
    /// Whether this precision stores plain `f32` (no decode on access).
    #[must_use]
    pub fn is_f32(self) -> bool {
        self == Precision::F32
    }

    /// Bytes of payload storage for `elements` values at this precision,
    /// excluding per-row scale words (int8 adds 4 bytes per row on top).
    #[must_use]
    pub fn payload_bytes(self, elements: usize) -> u64 {
        match self {
            Precision::F32 => 4 * elements as u64,
            Precision::Fp16 => 2 * elements as u64,
            Precision::Int8 => elements as u64,
        }
    }

    /// Worst-case absolute round-trip error for one stored value in a row whose
    /// largest finite magnitude is `max_abs` (same bounds as the wire codec).
    #[must_use]
    pub fn max_abs_error(self, max_abs: f32) -> f32 {
        match self {
            Precision::F32 => 0.0,
            // Relative 2^-11 in the normal range plus the subnormal quantum.
            Precision::Fp16 => max_abs / 2048.0 + f32::from_bits(0x3300_0000), // 2^-25
            Precision::Int8 => max_abs / 254.0,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::Fp16 => "fp16",
            Precision::Int8 => "int8",
        })
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest even.
/// Overflow saturates to ±inf; NaN stays NaN (payload truncated, kept non-zero).
#[must_use]
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: preserve the class; keep a NaN's payload non-zero.
        if man == 0 {
            return sign | 0x7c00;
        }
        let payload = ((man >> 13) & 0x3ff) as u16;
        return sign | 0x7c00 | if payload == 0 { 1 } else { payload };
    }
    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1f {
        return sign | 0x7c00; // overflow -> inf
    }
    let (mantissa, shift) = if half_exp <= 0 {
        if half_exp < -10 {
            return sign; // underflow -> signed zero
        }
        // Subnormal: shift the (implicit-bit-restored) mantissa into place.
        (man | 0x0080_0000, (14 - half_exp) as u32)
    } else {
        (man, 13u32)
    };
    let kept = mantissa >> shift;
    let rem = mantissa & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let round_up = rem > half || (rem == half && (kept & 1) == 1);
    let body = if half_exp <= 0 {
        kept as u16
    } else {
        ((half_exp as u16) << 10) | (kept & 0x3ff) as u16
    };
    // A carry out of the mantissa lands in the exponent, which is exactly the
    // IEEE rounding behaviour (up to the next binade, or to inf).
    sign | body.wrapping_add(u16::from(round_up))
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact).
///
/// Branch-free so bulk decodes ([`decode_row_f16_into`]) auto-vectorize:
/// normals and subnormals share one path — shift the magnitude into f32
/// position and rescale by 2¹¹² (a power-of-two multiply, exact in both
/// regimes) — and the inf/NaN patch is a select, not a branch.
#[inline]
#[must_use]
pub fn f16_bits_to_f32(half: u16) -> f32 {
    let sign = u32::from(half & 0x8000) << 16;
    let mag = u32::from(half & 0x7fff);
    let finite = (f32::from_bits(mag << 13) * f32::from_bits(0x7780_0000)).to_bits(); // × 2^112
    let special = 0x7f80_0000 | ((mag & 0x3ff) << 13);
    let body = if mag >= 0x7c00 { special } else { finite };
    f32::from_bits(sign | body)
}

/// Symmetric int8 scale for a row whose largest finite magnitude is `max_abs`
/// (`max_abs / 127`, or `1.0` for an all-zero row so dequantization is exact).
#[must_use]
pub fn int8_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value at `scale`: round half away from zero, saturate to
/// ±127, NaN to zero — the wire codec's exact element rule.
#[inline]
#[must_use]
pub fn quantize_i8(value: f32, scale: f32) -> i8 {
    if value.is_nan() {
        0
    } else {
        (value / scale).round().clamp(-127.0, 127.0) as i8
    }
}

/// Quantizes `row` into `out` with a fresh symmetric scale, returning the
/// scale. `out` is overwritten and resized to `row.len()`.
pub fn quantize_row_i8(row: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = row
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |acc, v| acc.max(v.abs()));
    let scale = int8_scale(max_abs);
    out.clear();
    out.extend(row.iter().map(|&v| quantize_i8(v, scale)));
    scale
}

/// Appends the dequantized values of `row` (at `scale`) onto `out`.
#[inline]
pub fn dequantize_row_i8_into(row: &[i8], scale: f32, out: &mut Vec<f32>) {
    out.extend(row.iter().map(|&q| f32::from(q) * scale));
}

/// Appends the decoded values of the fp16 `row` onto `out`.
#[inline]
pub fn decode_row_f16_into(row: &[u16], out: &mut Vec<f32>) {
    let start = out.len();
    out.resize(start + row.len(), 0.0);
    decode_f16_slice(row, &mut out[start..]);
}

/// Decodes the fp16 `row` into `out` (same length), using the hardware
/// `vcvtph2ps` converter when F16C is available.
///
/// The hardware converter implements the same IEEE 754 binary16 → binary32
/// widening as [`f16_bits_to_f32`] (the conversion is exact — every f16 value
/// is representable in f32 — so there is no rounding to disagree on), which
/// the exhaustive all-65536-patterns test below pins bit for bit.
///
/// # Panics
/// If `row` and `out` differ in length.
pub fn decode_f16_slice(row: &[u16], out: &mut [f32]) {
    assert_eq!(
        row.len(),
        out.len(),
        "decode_f16_slice: length mismatch {} vs {}",
        row.len(),
        out.len()
    );
    #[cfg(target_arch = "x86_64")]
    if f16c_active() {
        // SAFETY: `f16c_active` checked the CPU feature at runtime.
        unsafe { decode_f16_f16c(row, out) };
        return;
    }
    for (o, &h) in out.iter_mut().zip(row) {
        *o = f16_bits_to_f32(h);
    }
}

/// Encodes `src` into IEEE 754 binary16 bits in `dst` (same length), using
/// the hardware `vcvtps2ph` converter when F16C is available.
///
/// The hardware converter rounds to nearest even with overflow saturating to
/// ±inf — the same semantics as [`f32_to_f16_bits`] — so both paths produce
/// identical bits (pinned by the round-trip and random-pattern tests below).
/// The one divergence is NaN payloads: `vcvtps2ph` quiets signaling NaNs
/// where the scalar encoder truncates the payload untouched, so any group
/// containing a NaN lane is redone through the scalar path (cold: collectives
/// never carry NaNs in steady state).
///
/// # Panics
/// If `src` and `dst` differ in length.
pub fn encode_f16_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "encode_f16_slice: length mismatch {} vs {}",
        src.len(),
        dst.len()
    );
    #[cfg(target_arch = "x86_64")]
    if f16c_active() {
        // SAFETY: `f16c_active` checked the CPU feature at runtime.
        unsafe { encode_f16_f16c(src, dst) };
        return;
    }
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(v);
    }
}

/// Bulk f32 → f16 encode through `vcvtps2ph`, eight elements per conversion,
/// scalar [`f32_to_f16_bits`] (bit-identical) for the tail and NaN groups.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn encode_f16_f16c(src: &[f32], dst: &mut [u16]) {
    use std::arch::x86_64::{
        __m128i, _mm256_cmp_ps, _mm256_cvtps_ph, _mm256_loadu_ps, _mm256_movemask_ps,
        _mm_storeu_si128, _CMP_UNORD_Q, _MM_FROUND_TO_NEAREST_INT,
    };
    let n = src.len();
    let from = src.as_ptr();
    let to = dst.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let values = _mm256_loadu_ps(from.add(i));
        let halves = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(values);
        _mm_storeu_si128(to.add(i).cast::<__m128i>(), halves);
        if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_UNORD_Q>(values, values)) != 0 {
            for j in i..i + 8 {
                dst[j] = f32_to_f16_bits(src[j]);
            }
        }
        i += 8;
    }
    for j in i..n {
        dst[j] = f32_to_f16_bits(src[j]);
    }
}

/// Runtime F16C detection, memoized like the other kernel dispatch gates.
#[cfg(target_arch = "x86_64")]
fn f16c_active() -> bool {
    static ACTIVE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ACTIVE.get_or_init(|| std::arch::is_x86_feature_detected!("f16c"))
}

/// Bulk f16 → f32 decode through `vcvtph2ps`, eight elements per conversion,
/// scalar [`f16_bits_to_f32`] (bit-identical) for the tail.
///
/// One semantic wrinkle: `vcvtph2ps` quiets signaling NaNs (sets the f32
/// quiet bit) where the scalar decoder propagates the payload untouched, so
/// any group containing a NaN lane is redone through the scalar path. The
/// encoder never produces signaling NaNs, so the fixup branch is cold.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn decode_f16_f16c(row: &[u16], out: &mut [f32]) {
    use std::arch::x86_64::{
        __m128i, _mm256_cvtph_ps, _mm256_storeu_ps, _mm_and_si128, _mm_cmpgt_epi16,
        _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi16,
    };
    let n = row.len();
    let src = row.as_ptr();
    let dst = out.as_mut_ptr();
    let mag_mask = _mm_set1_epi16(0x7fff);
    let inf_bits = _mm_set1_epi16(0x7c00);
    let mut i = 0;
    while i + 8 <= n {
        let halves = _mm_loadu_si128(src.add(i).cast::<__m128i>());
        _mm256_storeu_ps(dst.add(i), _mm256_cvtph_ps(halves));
        let mag = _mm_and_si128(halves, mag_mask);
        if _mm_movemask_epi8(_mm_cmpgt_epi16(mag, inf_bits)) != 0 {
            for j in i..i + 8 {
                out[j] = f16_bits_to_f32(row[j]);
            }
        }
        i += 8;
    }
    for j in i..n {
        out[j] = f16_bits_to_f32(row[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The straightforward per-class decoder the branch-free one replaced; the
    /// exhaustive test below pins the two to identical bits on every pattern.
    fn f16_bits_to_f32_reference(half: u16) -> f32 {
        let sign = u32::from(half & 0x8000) << 16;
        let exp = (half >> 10) & 0x1f;
        let man = u32::from(half & 0x3ff);
        match exp {
            0 => {
                // Signed zero / subnormal: value = man * 2^-24, exact in f32.
                let magnitude = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
                f32::from_bits(magnitude.to_bits() | sign)
            }
            0x1f => f32::from_bits(sign | 0x7f80_0000 | (man << 13)),
            _ => f32::from_bits(sign | ((u32::from(exp) + 112) << 23) | (man << 13)),
        }
    }

    #[test]
    fn f16_decode_matches_the_reference_on_every_bit_pattern() {
        for half in 0..=u16::MAX {
            let fast = f16_bits_to_f32(half);
            let reference = f16_bits_to_f32_reference(half);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "pattern {half:#06x}: {fast} != {reference}"
            );
        }
    }

    #[test]
    fn bulk_f16_decode_matches_scalar_on_every_bit_pattern() {
        // Every pattern through the dispatched bulk path (hardware vcvtph2ps
        // where available), laid out so both the 8-wide body and the scalar
        // tail see all 65536 patterns.
        let all: Vec<u16> = (0..=u16::MAX).collect();
        for offset in [0usize, 3] {
            let row = &all[offset..];
            let mut out = vec![0.0f32; row.len()];
            decode_f16_slice(row, &mut out);
            for (&half, &got) in row.iter().zip(&out) {
                let want = f16_bits_to_f32(half);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "pattern {half:#06x}: {got} != {want}"
                );
            }
        }
        let mut appended = vec![1.0f32];
        decode_row_f16_into(&all[..17], &mut appended);
        assert_eq!(appended.len(), 18);
        assert_eq!(appended[0], 1.0);
        assert_eq!(appended[1], f16_bits_to_f32(0));
    }

    #[test]
    fn bulk_f16_encode_matches_scalar_on_rich_inputs() {
        // Every f16-representable value (all 65536 patterns widened to f32),
        // every rounding-boundary neighbourhood a structured sweep can reach,
        // and a pseudo-random sweep over raw f32 bit patterns — NaNs, infs
        // and subnormals included. Offsets exercise both the 8-wide body and
        // the scalar tail.
        let mut inputs: Vec<f32> = (0..=u16::MAX).map(f16_bits_to_f32).collect();
        for center in [1.0f32, 65504.0, 65520.0, 6.104e-5, 5.96e-8, 1e-40] {
            for ulps in -4i32..=4 {
                inputs.push(f32::from_bits(center.to_bits().wrapping_add_signed(ulps)));
                inputs.push(-f32::from_bits(center.to_bits().wrapping_add_signed(ulps)));
            }
        }
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            inputs.push(f32::from_bits((state >> 32) as u32));
        }
        for offset in [0usize, 5] {
            let src = &inputs[offset..];
            let mut bulk = vec![0u16; src.len()];
            encode_f16_slice(src, &mut bulk);
            for (&v, &got) in src.iter().zip(&bulk) {
                let want = f32_to_f16_bits(v);
                assert_eq!(got, want, "input {:#010x} ({v})", v.to_bits());
            }
        }
    }

    #[test]
    fn f16_round_trips_exact_halves() {
        for v in [0.0f32, -0.0, 1.0, -1.5, 0.25, 65504.0, -65504.0] {
            let rt = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(rt.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even_and_saturates() {
        let halfway = 1.0f32 + f32::from_bits(0x3a00_0000); // 1 + 2^-11
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e30)), f32::INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn int8_row_round_trip_is_bounded() {
        let row = [0.013f32, -1.7, 0.4, 1.9, -0.002, 0.0];
        let mut q = Vec::new();
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = Vec::new();
        dequantize_row_i8_into(&q, scale, &mut back);
        let bound = Precision::Int8.max_abs_error(1.9);
        for (v, d) in row.iter().zip(&back) {
            assert!((v - d).abs() <= bound, "{v} -> {d}");
        }
    }

    #[test]
    fn int8_zero_row_is_exact() {
        let mut q = Vec::new();
        let scale = quantize_row_i8(&[0.0, 0.0, -0.0], &mut q);
        assert_eq!(scale, 1.0);
        let mut back = Vec::new();
        dequantize_row_i8_into(&q, scale, &mut back);
        assert_eq!(back, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn int8_saturates_and_zeroes_non_finite() {
        let scale = int8_scale(2.0);
        assert_eq!(quantize_i8(f32::INFINITY, scale), 127);
        assert_eq!(quantize_i8(f32::NEG_INFINITY, scale), -127);
        assert_eq!(quantize_i8(f32::NAN, scale), 0);
    }

    #[test]
    fn payload_bytes_halve_and_quarter() {
        assert_eq!(Precision::F32.payload_bytes(1000), 4000);
        assert_eq!(Precision::Fp16.payload_bytes(1000), 2000);
        assert_eq!(Precision::Int8.payload_bytes(1000), 1000);
    }

    #[test]
    fn precision_displays_like_the_wire_format() {
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::Fp16.to_string(), "fp16");
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
        assert!(Precision::F32.is_f32() && !Precision::Int8.is_f32());
    }
}
