//! Storage precisions and scalar quantization primitives.
//!
//! PR 4 quantized the *wire* (`dmt_comm::codec` packs collective payloads into
//! fp16/int8 words); this module pushes the same two formats into *storage and
//! compute*: embedding tables and dense-layer weights held as int8 or fp16 and
//! dequantized on the fly inside the hot loops. The scalar conversions here are
//! the canonical definitions — the wire codec delegates its half-precision
//! conversion to [`f32_to_f16_bits`] / [`f16_bits_to_f32`] so wire words and
//! stored words are bit-compatible by construction.
//!
//! Two formats, two error models (identical to the wire codec's):
//!
//! * **fp16** — IEEE 754 binary16, round to nearest even. Round-trip error is
//!   `|x| · 2⁻¹¹ + 2⁻²⁵` for finite in-range inputs; values already
//!   representable in half precision (including everything that *came from* an
//!   fp16 word) round-trip bit-exactly.
//! * **int8** — symmetric linear quantization with a per-row scale
//!   `max_abs / 127`, rounding half away from zero. Round-trip error is
//!   bounded by `max_abs / 254` per row.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision of stored model state (embedding rows, dense weights).
///
/// This is the storage/compute twin of `dmt_comm::codec::WireFormat` (which
/// packs bytes *in flight*): `dmt-serve` exposes it as `ComputePrecision` and
/// threads it through the whole serving forward pass — table shards, the
/// hot-row cache, and the tower/dense GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes per element: full single precision, the training format.
    #[default]
    F32,
    /// 2 bytes per element: IEEE 754 binary16 words, decoded on access.
    Fp16,
    /// 1 byte per element plus one `f32` scale per row: symmetric linear
    /// quantization with per-row scale `max_abs / 127`.
    Int8,
}

impl Precision {
    /// Whether this precision stores plain `f32` (no decode on access).
    #[must_use]
    pub fn is_f32(self) -> bool {
        self == Precision::F32
    }

    /// Bytes of payload storage for `elements` values at this precision,
    /// excluding per-row scale words (int8 adds 4 bytes per row on top).
    #[must_use]
    pub fn payload_bytes(self, elements: usize) -> u64 {
        match self {
            Precision::F32 => 4 * elements as u64,
            Precision::Fp16 => 2 * elements as u64,
            Precision::Int8 => elements as u64,
        }
    }

    /// Worst-case absolute round-trip error for one stored value in a row whose
    /// largest finite magnitude is `max_abs` (same bounds as the wire codec).
    #[must_use]
    pub fn max_abs_error(self, max_abs: f32) -> f32 {
        match self {
            Precision::F32 => 0.0,
            // Relative 2^-11 in the normal range plus the subnormal quantum.
            Precision::Fp16 => max_abs / 2048.0 + f32::from_bits(0x3300_0000), // 2^-25
            Precision::Int8 => max_abs / 254.0,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::Fp16 => "fp16",
            Precision::Int8 => "int8",
        })
    }
}

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest even.
/// Overflow saturates to ±inf; NaN stays NaN (payload truncated, kept non-zero).
#[must_use]
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: preserve the class; keep a NaN's payload non-zero.
        if man == 0 {
            return sign | 0x7c00;
        }
        let payload = ((man >> 13) & 0x3ff) as u16;
        return sign | 0x7c00 | if payload == 0 { 1 } else { payload };
    }
    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1f {
        return sign | 0x7c00; // overflow -> inf
    }
    let (mantissa, shift) = if half_exp <= 0 {
        if half_exp < -10 {
            return sign; // underflow -> signed zero
        }
        // Subnormal: shift the (implicit-bit-restored) mantissa into place.
        (man | 0x0080_0000, (14 - half_exp) as u32)
    } else {
        (man, 13u32)
    };
    let kept = mantissa >> shift;
    let rem = mantissa & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let round_up = rem > half || (rem == half && (kept & 1) == 1);
    let body = if half_exp <= 0 {
        kept as u16
    } else {
        ((half_exp as u16) << 10) | (kept & 0x3ff) as u16
    };
    // A carry out of the mantissa lands in the exponent, which is exactly the
    // IEEE rounding behaviour (up to the next binade, or to inf).
    sign | body.wrapping_add(u16::from(round_up))
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact).
///
/// Branch-free so bulk decodes ([`decode_row_f16_into`]) auto-vectorize:
/// normals and subnormals share one path — shift the magnitude into f32
/// position and rescale by 2¹¹² (a power-of-two multiply, exact in both
/// regimes) — and the inf/NaN patch is a select, not a branch.
#[inline]
#[must_use]
pub fn f16_bits_to_f32(half: u16) -> f32 {
    let sign = u32::from(half & 0x8000) << 16;
    let mag = u32::from(half & 0x7fff);
    let finite = (f32::from_bits(mag << 13) * f32::from_bits(0x7780_0000)).to_bits(); // × 2^112
    let special = 0x7f80_0000 | ((mag & 0x3ff) << 13);
    let body = if mag >= 0x7c00 { special } else { finite };
    f32::from_bits(sign | body)
}

/// Symmetric int8 scale for a row whose largest finite magnitude is `max_abs`
/// (`max_abs / 127`, or `1.0` for an all-zero row so dequantization is exact).
#[must_use]
pub fn int8_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value at `scale`: round half away from zero, saturate to
/// ±127, NaN to zero — the wire codec's exact element rule.
#[inline]
#[must_use]
pub fn quantize_i8(value: f32, scale: f32) -> i8 {
    if value.is_nan() {
        0
    } else {
        (value / scale).round().clamp(-127.0, 127.0) as i8
    }
}

/// Quantizes `row` into `out` with a fresh symmetric scale, returning the
/// scale. `out` is overwritten and resized to `row.len()`.
pub fn quantize_row_i8(row: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = row
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |acc, v| acc.max(v.abs()));
    let scale = int8_scale(max_abs);
    out.clear();
    out.extend(row.iter().map(|&v| quantize_i8(v, scale)));
    scale
}

/// Appends the dequantized values of `row` (at `scale`) onto `out`.
#[inline]
pub fn dequantize_row_i8_into(row: &[i8], scale: f32, out: &mut Vec<f32>) {
    out.extend(row.iter().map(|&q| f32::from(q) * scale));
}

/// Appends the decoded values of the fp16 `row` onto `out`.
#[inline]
pub fn decode_row_f16_into(row: &[u16], out: &mut Vec<f32>) {
    out.extend(row.iter().map(|&h| f16_bits_to_f32(h)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The straightforward per-class decoder the branch-free one replaced; the
    /// exhaustive test below pins the two to identical bits on every pattern.
    fn f16_bits_to_f32_reference(half: u16) -> f32 {
        let sign = u32::from(half & 0x8000) << 16;
        let exp = (half >> 10) & 0x1f;
        let man = u32::from(half & 0x3ff);
        match exp {
            0 => {
                // Signed zero / subnormal: value = man * 2^-24, exact in f32.
                let magnitude = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
                f32::from_bits(magnitude.to_bits() | sign)
            }
            0x1f => f32::from_bits(sign | 0x7f80_0000 | (man << 13)),
            _ => f32::from_bits(sign | ((u32::from(exp) + 112) << 23) | (man << 13)),
        }
    }

    #[test]
    fn f16_decode_matches_the_reference_on_every_bit_pattern() {
        for half in 0..=u16::MAX {
            let fast = f16_bits_to_f32(half);
            let reference = f16_bits_to_f32_reference(half);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "pattern {half:#06x}: {fast} != {reference}"
            );
        }
    }

    #[test]
    fn f16_round_trips_exact_halves() {
        for v in [0.0f32, -0.0, 1.0, -1.5, 0.25, 65504.0, -65504.0] {
            let rt = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(rt.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even_and_saturates() {
        let halfway = 1.0f32 + f32::from_bits(0x3a00_0000); // 1 + 2^-11
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e30)), f32::INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn int8_row_round_trip_is_bounded() {
        let row = [0.013f32, -1.7, 0.4, 1.9, -0.002, 0.0];
        let mut q = Vec::new();
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = Vec::new();
        dequantize_row_i8_into(&q, scale, &mut back);
        let bound = Precision::Int8.max_abs_error(1.9);
        for (v, d) in row.iter().zip(&back) {
            assert!((v - d).abs() <= bound, "{v} -> {d}");
        }
    }

    #[test]
    fn int8_zero_row_is_exact() {
        let mut q = Vec::new();
        let scale = quantize_row_i8(&[0.0, 0.0, -0.0], &mut q);
        assert_eq!(scale, 1.0);
        let mut back = Vec::new();
        dequantize_row_i8_into(&q, scale, &mut back);
        assert_eq!(back, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn int8_saturates_and_zeroes_non_finite() {
        let scale = int8_scale(2.0);
        assert_eq!(quantize_i8(f32::INFINITY, scale), 127);
        assert_eq!(quantize_i8(f32::NEG_INFINITY, scale), -127);
        assert_eq!(quantize_i8(f32::NAN, scale), 0);
    }

    #[test]
    fn payload_bytes_halve_and_quarter() {
        assert_eq!(Precision::F32.payload_bytes(1000), 4000);
        assert_eq!(Precision::Fp16.payload_bytes(1000), 2000);
        assert_eq!(Precision::Int8.payload_bytes(1000), 1000);
    }

    #[test]
    fn precision_displays_like_the_wire_format() {
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::Fp16.to_string(), "fp16");
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
        assert!(Precision::F32.is_f32() && !Precision::Int8.is_f32());
    }
}
