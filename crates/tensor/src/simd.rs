//! Runtime-dispatched FMA microkernels shared by the f32 GEMM family in
//! [`crate::kernels`].
//!
//! # Dispatch
//!
//! [`f32_tier`] probes the host once (cached in a `OnceLock`), mirroring the
//! int8 dispatch proven in [`crate::qgemm`]: `avx512f`+`fma` selects the
//! 512-bit kernels, `avx2`+`fma` the 256-bit kernels, anything else the
//! portable fallback. Every public kernel in [`crate::kernels`] routes through
//! the same tier; the `*_scalar` entry points there force the fallback so
//! differential tests can compare tiers on any host.
//!
//! # Bit-identity by construction
//!
//! All tiers execute the *same* floating-point operation sequence per output
//! element, so SIMD and scalar results are bit-identical on every shape — not
//! approximately equal:
//!
//! * **Broadcast kernels** (`A·B`, `Aᵀ·B` and the fused bias/ReLU variants):
//!   each output element is a single fused-multiply-add chain
//!   `acc = fma(a, b, acc)` over the reduction index in ascending order,
//!   seeded from the element's initial `C` value (or its bias). Vector width
//!   only changes how many *independent* chains run side by side, never the
//!   order within a chain, so 16-lane AVX-512, 8-lane AVX2 and scalar
//!   `f32::mul_add` code agree bit for bit — and so do any row/column tiling
//!   and the rayon row split, which merely regroup independent chains.
//! * **Dot kernels** (`A·Bᵀ`): every dot product uses a canonical 16-lane
//!   layout — lane `l` accumulates the products at positions `p ≡ l (mod 16)`
//!   with fused multiply-adds — followed by a fixed fold tree
//!   (`t8[l] = acc[l] + acc[l+8]`, `t4[l] = t8[l] + t8[l+4]`,
//!   `t2[l] = t4[l] + t4[l+2]`, `s = t2[0] + t2[1]`) and a scalar `mul_add`
//!   chain over the `len % 16` tail. AVX-512 keeps the 16 lanes in one
//!   register, AVX2 in two, the fallback in an array; the fold sequence is
//!   identical in all three.
//!
//! The fused ReLU epilogue is `if v > 0.0 { v } else { 0.0 }` — exactly the
//! semantics of `maxps(v, 0.0)` (NaN ⇒ `0.0`, `-0.0` ⇒ `+0.0`), so the vector
//! epilogue and the scalar one cannot disagree on special values.

use std::sync::OnceLock;

/// Instruction set the f32 kernels dispatch to at runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdTier {
    /// 512-bit FMA microkernels (`avx512f` + `fma`).
    Avx512,
    /// 256-bit FMA microkernels (`avx2` + `fma`).
    Avx2,
    /// Portable lane-grouped `f32::mul_add` fallback, bit-identical to SIMD.
    Scalar,
}

/// Returns the SIMD tier the f32 kernels use on this host (detected once).
#[must_use]
pub fn f32_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") && std::is_x86_feature_detected!("fma") {
                return SimdTier::Avx512;
            }
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    })
}

/// Human-readable tier name, recorded in bench metadata so a gate run on a
/// different machine class is interpretable.
#[must_use]
pub fn f32_tier_name() -> &'static str {
    match f32_tier() {
        SimdTier::Avx512 => "avx512",
        SimdTier::Avx2 => "avx2+fma",
        SimdTier::Scalar => "scalar",
    }
}

/// Hints the CPU to pull the cache line at `&slice[index]` into L1 with read
/// intent. A pure performance hint: no-op when out of bounds or off x86-64,
/// and never changes results.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < slice.len() {
            // SAFETY: the pointer is in bounds and prefetch has no
            // architectural effect — it cannot fault or alter data.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(slice.as_ptr().add(index).cast::<i8>());
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, index);
    }
}

/// One broadcast-style GEMM problem over a contiguous band of output rows:
///
/// `C[r, j] ⊕= Σ_p A[r·a_row_stride + p·a_step_stride] · B[p, j]`
///
/// With `a_row_stride = k, a_step_stride = 1` this is `C += A·B`; with
/// `a_row_stride = 1, a_step_stride = r_total` it is `C += Aᵀ·B` without
/// materializing the transpose. `bias: Some` switches `⊕=` from accumulate to
/// overwrite, seeding every row's chains from `bias[j]` (the fused linear
/// forward); `relu` applies the fused epilogue described in the module docs.
pub(crate) struct BroadcastGemm<'x> {
    /// Left operand, already offset to the first band row.
    pub a: &'x [f32],
    /// Element stride between consecutive output rows in `a`.
    pub a_row_stride: usize,
    /// Element stride between consecutive reduction steps in `a`.
    pub a_step_stride: usize,
    /// Reduction length.
    pub steps: usize,
    /// Right operand, row-major `[steps, n]`.
    pub b: &'x [f32],
    /// Output columns.
    pub n: usize,
    /// Output rows in this band.
    pub rows: usize,
    /// `Some(bias)` seeds chains from `bias[j]` and overwrites `C`;
    /// `None` seeds from the existing `C` contents and accumulates.
    pub bias: Option<&'x [f32]>,
    /// Apply the fused ReLU epilogue before writeback.
    pub relu: bool,
}

/// Scalar `mul_add` chains for output columns `j0..n` of every band row —
/// the exact per-element recipe the vector tiles implement, used for column
/// remainders by all tiers.
pub(crate) fn bgemm_scalar_cols(p: &BroadcastGemm<'_>, c: &mut [f32], j0: usize) {
    for i in 0..p.rows {
        for j in j0..p.n {
            let mut acc = match p.bias {
                Some(bias) => bias[j],
                None => c[i * p.n + j],
            };
            let mut ai = i * p.a_row_stride;
            let mut bj = j;
            for _ in 0..p.steps {
                acc = p.a[ai].mul_add(p.b[bj], acc);
                ai += p.a_step_stride;
                bj += p.n;
            }
            if p.relu {
                acc = if acc > 0.0 { acc } else { 0.0 };
            }
            c[i * p.n + j] = acc;
        }
    }
}

/// Portable tier: the same chains grouped in 16-wide lane arrays (which
/// auto-vectorize to FMA on hosts compiled with native features) with rows
/// processed in quads, plus the shared scalar column tail.
pub(crate) fn bgemm_scalar(p: &BroadcastGemm<'_>, c: &mut [f32]) {
    const L: usize = 16;
    let n = p.n;
    let w1 = n / L * L;

    /// One `R`-row × 16-lane tile: seeds from `C` or bias, runs the fma
    /// chains over the full reduction, applies the optional ReLU, stores.
    #[inline(always)]
    fn tile<const R: usize>(p: &BroadcastGemm<'_>, c: &mut [f32], i0: usize, j: usize) {
        const L: usize = 16;
        let n = p.n;
        let mut acc = [[0.0f32; L]; R];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            match p.bias {
                Some(bias) => acc_r.copy_from_slice(&bias[j..j + L]),
                None => acc_r.copy_from_slice(&c[(i0 + r) * n + j..(i0 + r) * n + j + L]),
            }
        }
        for step in 0..p.steps {
            let bt: &[f32; L] = p.b[step * n + j..step * n + j + L].try_into().unwrap();
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = p.a[(i0 + r) * p.a_row_stride + step * p.a_step_stride];
                for l in 0..L {
                    acc_r[l] = av.mul_add(bt[l], acc_r[l]);
                }
            }
        }
        for (r, acc_r) in acc.iter_mut().enumerate() {
            if p.relu {
                for v in acc_r.iter_mut() {
                    *v = if *v > 0.0 { *v } else { 0.0 };
                }
            }
            c[(i0 + r) * n + j..(i0 + r) * n + j + L].copy_from_slice(acc_r);
        }
    }

    let mut i = 0;
    while i + 4 <= p.rows {
        let mut j = 0;
        while j < w1 {
            tile::<4>(p, c, i, j);
            j += L;
        }
        i += 4;
    }
    while i < p.rows {
        let mut j = 0;
        while j < w1 {
            tile::<1>(p, c, i, j);
            j += L;
        }
        i += 1;
    }
    if w1 < n {
        bgemm_scalar_cols(p, c, w1);
    }
}

/// Canonical 16-lane fold: `t8[l] = acc[l] + acc[l+8]`, `t4[l] = t8[l] +
/// t8[l+4]`, `t2[l] = t4[l] + t4[l+2]`, `s = t2[0] + t2[1]` — the exact tree
/// the SIMD dot kernels implement with shuffles.
#[inline(always)]
pub(crate) fn fold16(acc: &[f32; 16]) -> f32 {
    let mut t8 = [0.0f32; 8];
    for l in 0..8 {
        t8[l] = acc[l] + acc[l + 8];
    }
    let mut t4 = [0.0f32; 4];
    for l in 0..4 {
        t4[l] = t8[l] + t8[l + 4];
    }
    let t2 = [t4[0] + t4[2], t4[1] + t4[3]];
    t2[0] + t2[1]
}

/// Canonical dot product (see module docs), portable tier.
#[inline]
pub(crate) fn dot16_scalar(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 16];
    let chunks = x.len() / 16 * 16;
    let mut p = 0;
    while p < chunks {
        let xt: &[f32; 16] = x[p..p + 16].try_into().unwrap();
        let yt: &[f32; 16] = y[p..p + 16].try_into().unwrap();
        for l in 0..16 {
            acc[l] = xt[l].mul_add(yt[l], acc[l]);
        }
        p += 16;
    }
    let mut s = fold16(&acc);
    while p < x.len() {
        s = x[p].mul_add(y[p], s);
        p += 1;
    }
    s
}

/// Four canonical dot products sharing the left operand, portable tier.
#[inline]
pub(crate) fn dot16x4_scalar(x: &[f32], ys: [&[f32]; 4]) -> [f32; 4] {
    let k = x.len();
    let mut acc = [[0.0f32; 16]; 4];
    let chunks = k / 16 * 16;
    let mut p = 0;
    while p < chunks {
        let xt: &[f32; 16] = x[p..p + 16].try_into().unwrap();
        for (q, y) in ys.iter().enumerate() {
            let yt: &[f32; 16] = y[p..p + 16].try_into().unwrap();
            for l in 0..16 {
                acc[q][l] = xt[l].mul_add(yt[l], acc[q][l]);
            }
        }
        p += 16;
    }
    let mut out = [0.0f32; 4];
    for (q, y) in ys.iter().enumerate() {
        let mut s = fold16(&acc[q]);
        let mut t = chunks;
        while t < k {
            s = x[t].mul_add(y[t], s);
            t += 1;
        }
        out[q] = s;
    }
    out
}

/// Portable-tier `C += A·Bᵀ` over a row band: four shared-operand canonical
/// dots per pass, then singles.
pub(crate) fn a_bt_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let dots = dot16x4_scalar(
                arow,
                [
                    &b[j * k..(j + 1) * k],
                    &b[(j + 1) * k..(j + 2) * k],
                    &b[(j + 2) * k..(j + 3) * k],
                    &b[(j + 3) * k..(j + 4) * k],
                ],
            );
            for q in 0..4 {
                crow[j + q] += dots[q];
            }
            j += 4;
        }
        while j < n {
            crow[j] += dot16_scalar(arow, &b[j * k..(j + 1) * k]);
            j += 1;
        }
    }
}

/// Generates a broadcast-GEMM driver for one AVX ISA: `R`-row × `W`-vector
/// register tiles over the full reduction, single-vector and scalar column
/// tails, any row count. The chains per output element are exactly the
/// canonical ones, so every instantiation matches [`bgemm_scalar`] bit for
/// bit.
#[cfg(target_arch = "x86_64")]
macro_rules! bgemm_isa {
    ($modname:ident, $feat:literal, $vec:ident, $lanes:expr, $rmain:expr,
     $loadu:ident, $storeu:ident, $set1:ident, $fma:ident, $max:ident, $zero:ident) => {
        pub(crate) mod $modname {
            use super::{bgemm_scalar_cols, BroadcastGemm};
            use std::arch::x86_64::*;

            const LANES: usize = $lanes;
            const RMAIN: usize = $rmain;

            /// `R`-row × `W`-vector tile: seed, fma chains over the full
            /// reduction, optional fused ReLU, writeback.
            #[inline(always)]
            #[allow(clippy::too_many_arguments)] // raw-pointer kernel ABI: strides travel with their pointers
            unsafe fn tile<const R: usize, const W: usize>(
                a: *const f32,
                ars: usize,
                ass: usize,
                steps: usize,
                b: *const f32,
                n: usize,
                c: *mut f32,
                bias: *const f32,
                relu: bool,
            ) {
                let mut acc = [[$zero(); W]; R];
                for r in 0..R {
                    for w in 0..W {
                        let seed = if bias.is_null() {
                            c.add(r * n + w * LANES)
                        } else {
                            bias.add(w * LANES)
                        };
                        acc[r][w] = $loadu(seed);
                    }
                }
                let mut ap = a;
                let mut bp = b;
                for _ in 0..steps {
                    let mut bv = [$zero(); W];
                    for (w, slot) in bv.iter_mut().enumerate() {
                        *slot = $loadu(bp.add(w * LANES));
                    }
                    for r in 0..R {
                        let av = $set1(*ap.add(r * ars));
                        for w in 0..W {
                            acc[r][w] = $fma(av, bv[w], acc[r][w]);
                        }
                    }
                    ap = ap.add(ass);
                    bp = bp.add(n);
                }
                if relu {
                    let z = $zero();
                    for row in acc.iter_mut() {
                        for v in row.iter_mut() {
                            *v = $max(*v, z);
                        }
                    }
                }
                for r in 0..R {
                    for w in 0..W {
                        $storeu(c.add(r * n + w * LANES), acc[r][w]);
                    }
                }
            }

            /// Column sweep for one `R`-row group starting at row `i`.
            #[inline(always)]
            unsafe fn row_group<const R: usize>(p: &BroadcastGemm<'_>, c: *mut f32, i: usize) {
                let n = p.n;
                let a = p.a.as_ptr().add(i * p.a_row_stride);
                let crow = c.add(i * n);
                let b = p.b.as_ptr();
                let bias = p.bias.map_or(std::ptr::null(), <[f32]>::as_ptr);
                #[inline(always)]
                unsafe fn off(ptr: *const f32, j: usize) -> *const f32 {
                    if ptr.is_null() {
                        ptr
                    } else {
                        ptr.add(j)
                    }
                }
                let mut j = 0;
                while j + 2 * LANES <= n {
                    tile::<R, 2>(
                        a,
                        p.a_row_stride,
                        p.a_step_stride,
                        p.steps,
                        b.add(j),
                        n,
                        crow.add(j),
                        off(bias, j),
                        p.relu,
                    );
                    j += 2 * LANES;
                }
                if j + LANES <= n {
                    tile::<R, 1>(
                        a,
                        p.a_row_stride,
                        p.a_step_stride,
                        p.steps,
                        b.add(j),
                        n,
                        crow.add(j),
                        off(bias, j),
                        p.relu,
                    );
                }
            }

            /// Full band driver; the `n % LANES` column tail falls through to
            /// the shared scalar chains after the vector sweep.
            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn bgemm(p: &BroadcastGemm<'_>, c: &mut [f32]) {
                let cptr = c.as_mut_ptr();
                let mut i = 0;
                while i + RMAIN <= p.rows {
                    row_group::<RMAIN>(p, cptr, i);
                    i += RMAIN;
                }
                while i + 2 <= p.rows {
                    row_group::<2>(p, cptr, i);
                    i += 2;
                }
                while i < p.rows {
                    row_group::<1>(p, cptr, i);
                    i += 1;
                }
                let w1 = p.n / LANES * LANES;
                if w1 < p.n {
                    bgemm_scalar_cols(p, c, w1);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
bgemm_isa!(
    avx512_bgemm,
    "avx512f",
    __m512,
    16,
    12,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_set1_ps,
    _mm512_fmadd_ps,
    _mm512_max_ps,
    _mm512_setzero_ps
);

#[cfg(target_arch = "x86_64")]
bgemm_isa!(
    avx2_bgemm,
    "avx2,fma",
    __m256,
    8,
    6,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_fmadd_ps,
    _mm256_max_ps,
    _mm256_setzero_ps
);

/// Dispatches one broadcast-GEMM band to the detected tier.
pub(crate) fn bgemm_dispatch(p: &BroadcastGemm<'_>, c: &mut [f32]) {
    match f32_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only ever `Avx512`/`Avx2` after runtime
        // feature detection in `f32_tier`.
        SimdTier::Avx512 => unsafe { avx512_bgemm::bgemm(p, c) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { avx2_bgemm::bgemm(p, c) },
        _ => bgemm_scalar(p, c),
    }
}

/// AVX-512 canonical dot kernels: one 16-lane register per accumulator.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512_dot {
    use std::arch::x86_64::*;

    /// The canonical fold tree on a 16-lane register (see module docs).
    #[inline(always)]
    unsafe fn fold512(acc: __m512) -> f32 {
        let lo = _mm512_castps512_ps256(acc);
        let hi = _mm256_castpd_ps(_mm512_extractf64x4_pd::<1>(_mm512_castps_pd(acc)));
        super::fold256_tree(_mm256_add_ps(lo, hi))
    }

    /// `RA`-row × `RB`-column dot tile: shared operand loads, one canonical
    /// 16-lane accumulator per output, fold + scalar tail per output.
    #[inline(always)]
    #[allow(clippy::needless_range_loop)] // the ra/rb indices address two arrays in lockstep
    unsafe fn tile<const RA: usize, const RB: usize>(
        a: *const f32,
        a_stride: usize,
        b: *const f32,
        b_stride: usize,
        len: usize,
        c: *mut f32,
        c_stride: usize,
    ) {
        let mut acc = [[_mm512_setzero_ps(); RB]; RA];
        let chunks = len / 16 * 16;
        let mut p = 0;
        while p < chunks {
            let mut xv = [_mm512_setzero_ps(); RA];
            for (ra, slot) in xv.iter_mut().enumerate() {
                *slot = _mm512_loadu_ps(a.add(ra * a_stride + p));
            }
            for rb in 0..RB {
                let yv = _mm512_loadu_ps(b.add(rb * b_stride + p));
                for ra in 0..RA {
                    acc[ra][rb] = _mm512_fmadd_ps(xv[ra], yv, acc[ra][rb]);
                }
            }
            p += 16;
        }
        for ra in 0..RA {
            for rb in 0..RB {
                let mut s = fold512(acc[ra][rb]);
                let mut q = chunks;
                while q < len {
                    s = (*a.add(ra * a_stride + q)).mul_add(*b.add(rb * b_stride + q), s);
                    q += 1;
                }
                *c.add(ra * c_stride + rb) += s;
            }
        }
    }

    /// `C += A·Bᵀ` band driver, 4×4 main tiles.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        #[inline(always)]
        unsafe fn cols<const RA: usize>(
            ap: *const f32,
            bp: *const f32,
            cp: *mut f32,
            i: usize,
            k: usize,
            n: usize,
        ) {
            let mut j = 0;
            while j + 4 <= n {
                tile::<RA, 4>(ap.add(i * k), k, bp.add(j * k), k, k, cp.add(i * n + j), n);
                j += 4;
            }
            while j < n {
                tile::<RA, 1>(ap.add(i * k), k, bp.add(j * k), k, k, cp.add(i * n + j), n);
                j += 1;
            }
        }
        let mut i = 0;
        while i + 4 <= m {
            cols::<4>(ap, bp, cp, i, k, n);
            i += 4;
        }
        while i < m {
            cols::<1>(ap, bp, cp, i, k, n);
            i += 1;
        }
    }

    /// Single canonical dot product.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let mut out = [0.0f32];
        tile::<1, 1>(x.as_ptr(), 0, y.as_ptr(), 0, x.len(), out.as_mut_ptr(), 1);
        out[0]
    }

    /// Four canonical dot products sharing the left operand. `ys` rows must
    /// be contiguous at stride `stride` starting from `ys0`.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn dot4(x: &[f32], ys0: *const f32, stride: usize) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        tile::<1, 4>(x.as_ptr(), 0, ys0, stride, x.len(), out.as_mut_ptr(), 4);
        out
    }
}

/// Shared 8-lane fold: `t4 = lo128 + hi128`, `t2[l] = t4[l] + t4[l+2]`,
/// `s = t2[0] + t2[1]` — the lower half of the canonical 16-lane tree.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn fold256_tree(t8: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let t4 = _mm_add_ps(_mm256_castps256_ps128(t8), _mm256_extractf128_ps::<1>(t8));
    let t2 = _mm_add_ps(t4, _mm_movehl_ps(t4, t4));
    let s = _mm_add_ss(t2, _mm_shuffle_ps::<1>(t2, t2));
    _mm_cvtss_f32(s)
}

/// AVX2 canonical dot kernels: the 16 lanes live in a register pair
/// (`lo` = lanes 0–7, `hi` = lanes 8–15), so `lo + hi` *is* the first fold
/// level and the rest of the tree matches AVX-512 exactly.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2_dot {
    use std::arch::x86_64::*;

    /// `RB`-column dot tile for one `A` row: a lane-pair accumulator per
    /// output, canonical fold + scalar tail per output.
    #[inline(always)]
    unsafe fn tile<const RB: usize>(
        x: *const f32,
        b: *const f32,
        b_stride: usize,
        len: usize,
        c: *mut f32,
    ) {
        let mut lo = [_mm256_setzero_ps(); RB];
        let mut hi = [_mm256_setzero_ps(); RB];
        let chunks = len / 16 * 16;
        let mut p = 0;
        while p < chunks {
            let xl = _mm256_loadu_ps(x.add(p));
            let xh = _mm256_loadu_ps(x.add(p + 8));
            for rb in 0..RB {
                let yl = _mm256_loadu_ps(b.add(rb * b_stride + p));
                let yh = _mm256_loadu_ps(b.add(rb * b_stride + p + 8));
                lo[rb] = _mm256_fmadd_ps(xl, yl, lo[rb]);
                hi[rb] = _mm256_fmadd_ps(xh, yh, hi[rb]);
            }
            p += 16;
        }
        for rb in 0..RB {
            let mut s = super::fold256_tree(_mm256_add_ps(lo[rb], hi[rb]));
            let mut q = chunks;
            while q < len {
                s = (*x.add(q)).mul_add(*b.add(rb * b_stride + q), s);
                q += 1;
            }
            *c.add(rb) += s;
        }
    }

    /// `C += A·Bᵀ` band driver, 1×4 main tiles.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        for i in 0..m {
            let mut j = 0;
            while j + 4 <= n {
                tile::<4>(ap.add(i * k), bp.add(j * k), k, k, cp.add(i * n + j));
                j += 4;
            }
            while j < n {
                tile::<1>(ap.add(i * k), bp.add(j * k), k, k, cp.add(i * n + j));
                j += 1;
            }
        }
    }

    /// Single canonical dot product.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let mut out = [0.0f32];
        tile::<1>(x.as_ptr(), y.as_ptr(), 0, x.len(), out.as_mut_ptr());
        out[0]
    }

    /// Four canonical dot products sharing the left operand.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn dot4(x: &[f32], ys0: *const f32, stride: usize) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        tile::<4>(x.as_ptr(), ys0, stride, x.len(), out.as_mut_ptr());
        out
    }
}

/// Dispatches `C += A·Bᵀ` over a row band to the detected tier.
pub(crate) fn a_bt_dispatch(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match f32_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies the features were detected at runtime.
        SimdTier::Avx512 => unsafe { avx512_dot::a_bt(a, b, c, m, k, n) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { avx2_dot::a_bt(a, b, c, m, k, n) },
        _ => a_bt_scalar(a, b, c, m, k, n),
    }
}

/// Canonical dot product on the detected tier (used by the fp16 GEMM after
/// decoding weight rows, so fp16 results stay bit-identical to
/// decode-then-f32-GEMM).
pub(crate) fn dot_dispatch(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    match f32_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies the features were detected at runtime.
        SimdTier::Avx512 => unsafe { avx512_dot::dot(x, y) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { avx2_dot::dot(x, y) },
        _ => dot16_scalar(x, y),
    }
}

/// Four canonical dot products against rows of a contiguous `[4, len]` panel,
/// on the detected tier.
pub(crate) fn dot4_dispatch(x: &[f32], panel: &[f32]) -> [f32; 4] {
    let len = x.len();
    debug_assert_eq!(panel.len(), 4 * len);
    match f32_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier implies the features were detected at runtime; the
        // panel holds 4 contiguous rows of `len` elements.
        SimdTier::Avx512 => unsafe { avx512_dot::dot4(x, panel.as_ptr(), len) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { avx2_dot::dot4(x, panel.as_ptr(), len) },
        _ => dot16x4_scalar(
            x,
            [
                &panel[..len],
                &panel[len..2 * len],
                &panel[2 * len..3 * len],
                &panel[3 * len..4 * len],
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn tier_detection_is_stable_and_named() {
        assert_eq!(f32_tier(), f32_tier());
        assert!(!f32_tier_name().is_empty());
    }

    #[test]
    fn dispatched_dots_match_scalar_bit_identically() {
        for len in [0usize, 1, 5, 15, 16, 17, 31, 32, 100, 257] {
            let x = fill(len, 7);
            let y = fill(len, 8);
            assert_eq!(
                dot_dispatch(&x, &y).to_bits(),
                dot16_scalar(&x, &y).to_bits(),
                "len {len}"
            );
            let panel = fill(4 * len, 9);
            let simd = dot4_dispatch(&x, &panel);
            let scalar = dot16x4_scalar(
                &x,
                [
                    &panel[..len],
                    &panel[len..2 * len],
                    &panel[2 * len..3 * len],
                    &panel[3 * len..4 * len],
                ],
            );
            for q in 0..4 {
                assert_eq!(simd[q].to_bits(), scalar[q].to_bits(), "len {len} q {q}");
            }
        }
    }

    #[test]
    fn prefetch_is_safe_on_any_index() {
        let data = [1.0f32; 8];
        prefetch_read(&data, 0);
        prefetch_read(&data, 7);
        prefetch_read(&data, 8); // out of bounds: no-op
        prefetch_read::<f32>(&[], 0);
    }
}
