//! The one per-rank execution driver behind both deployments and both schedules.
//!
//! A deployment is a [`RankLowering`]: it owns the rank-local model state and
//! knows how to lower one iteration onto an
//! [`super::graph::IterationGraph`]. Everything else — the iteration loop, batch
//! generation, micro-batch splitting, wall-clock and optimizer timing, and the
//! assembly of measured segments from the graph's logged waits — lives here,
//! once, instead of four times (baseline/DMT × sync/pipelined, as the engine
//! was originally written).
//!
//! The schedule distinction is entirely in the *lowered graph*: under
//! [`super::config::ScheduleMode::Sync`] the driver hands the lowering a single
//! micro-batch and the lowering emits every `wait` node directly after its
//! `issue` node (blocking semantics, the bit-identical reference); under
//! [`super::config::ScheduleMode::Pipelined`] it hands over
//! `effective_micro_batches()` pieces and the lowering stretches the
//! issue→wait distance so transfers hide under compute. The executor itself is
//! schedule-agnostic: it runs whatever list-ordered DAG it is given.

use super::config::{DistributedConfig, DistributedError};
use super::measure::{accumulate, collect_comm_samples, iteration_samples, RankOutcome, WaitEntry};
use super::RankComms;
use dmt_data::{Batch, SyntheticClickDataset};
use dmt_metrics::trace;
use std::time::Instant;

/// Per-iteration result a lowering reports back to the driver.
pub(crate) struct IterationStats {
    /// Mean training loss of the iteration (sample-weighted across micro-batches).
    pub loss: f64,
    /// Training ROC AUC over the iteration's local batch, when defined.
    pub auc: Option<f64>,
}

/// One deployment's rank-local lowering: model state plus the recipe for turning
/// a batch into an iteration graph.
pub(crate) trait RankLowering {
    /// Label of the aggregated compute segment.
    fn compute_label(&self) -> &'static str;

    /// Lowers one iteration onto a graph and runs it: `mbs` holds the schedule's
    /// micro-batches (exactly one under sync), `waits` logs every collective
    /// wait in schedule order for the measurement epilogue.
    fn run_graph(
        &mut self,
        comm: &mut RankComms,
        mbs: Vec<Batch>,
        waits: &mut Vec<WaitEntry>,
    ) -> Result<IterationStats, DistributedError>;

    /// Applies the deployment's optimizers after the graph completes.
    fn optimizer_step(&mut self);
}

/// Runs `lowering` for `config.iterations` iterations on this rank's thread and
/// returns its measured outcome.
pub(crate) fn run_rank<L: RankLowering>(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
    lowering: &mut L,
) -> Result<RankOutcome, DistributedError> {
    let mut data = SyntheticClickDataset::new(
        config.schema.clone(),
        config.seed ^ ((rank as u64 + 1) << 16),
    );
    let m = config.schedule_micro_batches();
    let mut totals = Vec::new();
    let mut losses = Vec::with_capacity(config.iterations);
    let mut aucs = Vec::with_capacity(config.iterations);
    let mut wall_s = 0.0;
    let mut iter_wall_s = Vec::with_capacity(config.iterations);
    let mut wait_seq = 0u64;
    for iter in 0..config.iterations {
        let _iter_span = trace::span(trace::cat::ITER, || format!("iteration {iter}"));
        let iter_start = Instant::now();
        let batch = data.next_batch(config.local_batch);
        // m == 1 keeps the batch untouched — the sync schedule sees exactly the
        // bytes-for-bytes batch the pre-IR engine saw.
        let mbs = if m == 1 { vec![batch] } else { batch.split(m) };
        let mut waits = Vec::new();
        let stats = lowering.run_graph(comm, mbs, &mut waits)?;
        if config.schedule == super::config::ScheduleMode::Sync {
            // Blocking schedule: every `claim` node directly follows its `issue`
            // node, so the whole transfer sits on the rank's critical path by
            // construction. Measured blocked-time would only subtract
            // thread-wake-up noise from that, so sync runs pin each wait's
            // exposure to the full transfer duration — the pre-IR convention
            // (`SegmentSample::from_record` clamps to the transfer length).
            for wait in &mut waits {
                wait.blocked_s = f64::INFINITY;
            }
        }
        if trace::tracing_enabled() {
            // One accounting instant per collective wait, in schedule order —
            // together with the backends' COMM transfer events these let
            // `hidden_comm_fraction_from_trace` replay the wait↔record pairing
            // below from the exported trace alone. The sync schedule's pinned
            // infinite exposure rides as the FULL_EXPOSURE sentinel (JSON has
            // no infinity).
            let track = trace::current_track();
            for wait in &waits {
                let blocked = if wait.blocked_s.is_finite() {
                    wait.blocked_s
                } else {
                    trace::FULL_EXPOSURE
                };
                trace::emit(
                    trace::TraceEvent::instant(
                        track,
                        trace::cat::WAIT,
                        wait.label.to_string(),
                        trace::clock_s(),
                    )
                    .arg_u64("rank", rank as u64)
                    .arg_u64("seq", wait_seq)
                    .arg_u64("iter", iter as u64)
                    .arg_f64("blocked_s", blocked)
                    .arg_str("scope", wait.scope.name()),
                );
                wait_seq += 1;
            }
        }
        losses.push(stats.loss);
        aucs.push(stats.auc);

        let opt_start = Instant::now();
        lowering.optimizer_step();
        let opt_s = opt_start.elapsed().as_secs_f64();

        let iter_s = iter_start.elapsed().as_secs_f64();
        let comm_samples = collect_comm_samples(comm, &waits);
        accumulate(
            &mut totals,
            iteration_samples(lowering.compute_label(), comm_samples, iter_s, opt_s),
        );
        wall_s += iter_s;
        iter_wall_s.push(iter_s);
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
        aucs,
        wall_s,
        iter_wall_s,
    })
}
