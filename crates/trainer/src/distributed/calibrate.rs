//! Measured-vs-analytical calibration: re-cost every measured segment with the
//! α–β model and check that both agree on the paper's orderings.

use super::config::DistributedConfig;
use super::graph::price_comm;
use super::measure::{CommScope, MeasuredRun};
use super::{run_baseline, run_dmt, DistributedError};
use dmt_commsim::{CostModel, IterationTimeline, LatencyBreakdown, Segment};
use dmt_topology::ProcessGroup;
use serde::{Deserialize, Serialize};

/// The analytical simulator's prediction for the *same* segments a measured run
/// executed: compute/overhead segments keep their measured durations, while every
/// communication segment is re-costed by the α–β model from its measured per-rank
/// payload and process group. When the run paced its collectives with a throttled
/// [`dmt_comm::FabricProfile`], the cost model's link bandwidths are scaled down by
/// the same factors, so measured and predicted times are on the same footing.
///
/// Exposure is **overlap-aware**: each re-costed communication segment is exposed
/// for `max(0, predicted_comm − overlappable_compute)` seconds
/// ([`dmt_commsim::exposed_after_overlap`]), where the overlappable compute is what
/// the run's schedule actually hid behind that segment (its measured
/// hidden window). A sync run hides nothing, so its prediction stays fully
/// exposed; a pipelined run's prediction inherits the schedule's overlap
/// structure.
///
/// This isolates the communication model: measured and predicted timelines differ
/// only where the cost model disagrees with the executed collectives.
#[must_use]
pub fn predicted_timeline(config: &DistributedConfig, run: &MeasuredRun) -> IterationTimeline {
    use dmt_topology::LinkKind;
    let cluster = &config.cluster;
    let mut model = CostModel::new(cluster.clone());
    if config.fabric.cross_host_bytes_per_sec.is_finite() {
        model = model.with_cross_host_scale(
            config.fabric.cross_host_bytes_per_sec / cluster.link_bandwidth(LinkKind::CrossHost),
        );
    }
    if config.fabric.intra_host_bytes_per_sec.is_finite() {
        model = model.with_intra_host_scale(
            config.fabric.intra_host_bytes_per_sec / cluster.link_bandwidth(LinkKind::IntraHost),
        );
    }
    let global = ProcessGroup::global(cluster);
    let intra = ProcessGroup::intra_host_groups(cluster);
    let peer = ProcessGroup::peer_groups(cluster);
    run.segments
        .iter()
        .map(|seg| {
            let group = match seg.scope {
                CommScope::Local => None,
                CommScope::Global => Some(&global),
                CommScope::IntraHost => Some(&intra[0]),
                CommScope::Peer => Some(&peer[0]),
            };
            match (group, seg.op) {
                (Some(group), Some(op)) => {
                    // Measured payloads already reflect the wire precision (the
                    // codec's encoded bytes), so the α–β re-costing prices the
                    // same traffic the fabric paced. The op→estimate mapping is
                    // shared with the simulator (`graph::price_comm`).
                    let est = price_comm(&model, group, op, seg.payload_bytes);
                    // The schedule hid `hidden_s` of compute behind this transfer;
                    // the analytical twin gets the same overlap budget.
                    Segment::overlapped(seg.kind, seg.label.clone(), est.time_s, seg.hidden_s())
                }
                _ => Segment::new(
                    seg.kind,
                    seg.label.clone(),
                    seg.time_s,
                    seg.exposed_fraction,
                ),
            }
        })
        .collect()
}

/// Measured-vs-analytical comparison of both deployments on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Measured baseline run.
    pub baseline: MeasuredRun,
    /// Measured DMT run.
    pub dmt: MeasuredRun,
    /// Analytical twin of the baseline run (see [`predicted_timeline`]).
    pub predicted_baseline: IterationTimeline,
    /// Analytical twin of the DMT run.
    pub predicted_dmt: IterationTimeline,
}

impl CalibrationReport {
    /// Exposed-communication fraction of a breakdown.
    #[must_use]
    pub fn comm_fraction(b: &LatencyBreakdown) -> f64 {
        let total = b.total_s();
        if total <= 0.0 {
            return 0.0;
        }
        (b.embedding_comm_s + b.dense_sync_s) / total
    }

    /// Exposed-communication seconds of a breakdown.
    #[must_use]
    pub fn comm_seconds(b: &LatencyBreakdown) -> f64 {
        b.embedding_comm_s + b.dense_sync_s
    }

    /// The calibration check: the measured engine and the analytical simulator must
    /// agree on the paper's Figure 13 orderings — DMT exposes less communication
    /// than the baseline (absolute seconds), finishes the whole iteration faster,
    /// and moves strictly fewer cross-host bytes.
    ///
    /// The *fraction* of the iteration spent communicating is reported (see
    /// [`CalibrationReport::comm_fraction`]) but not gated: at CPU-toy scale the
    /// tower modules shrink the dense over-arch far more than at paper scale, so
    /// DMT's compute denominator can fall faster than its communication — a scale
    /// artifact, not a property of the dataflow.
    #[must_use]
    pub fn measured_ordering_matches_prediction(&self) -> bool {
        let measured_baseline = self.baseline.breakdown();
        let measured_dmt = self.dmt.breakdown();
        let predicted_baseline = self.predicted_baseline.breakdown();
        let predicted_dmt = self.predicted_dmt.breakdown();
        let measured_ok = Self::comm_seconds(&measured_dmt)
            < Self::comm_seconds(&measured_baseline)
            && measured_dmt.total_s() < measured_baseline.total_s();
        let predicted_ok = Self::comm_seconds(&predicted_dmt)
            < Self::comm_seconds(&predicted_baseline)
            && predicted_dmt.total_s() < predicted_baseline.total_s();
        let bytes_ok = self.dmt.cross_host_bytes() < self.baseline.cross_host_bytes();
        measured_ok && predicted_ok && bytes_ok
    }
}

/// Runs both deployments (under `config`'s schedule) and builds their analytical
/// twins.
///
/// # Errors
///
/// Returns a [`DistributedError`] if either run fails.
pub fn calibrate(config: &DistributedConfig) -> Result<CalibrationReport, DistributedError> {
    let baseline = run_baseline(config)?;
    let dmt = run_dmt(config)?;
    let predicted_baseline = predicted_timeline(config, &baseline);
    let predicted_dmt = predicted_timeline(config, &dmt);
    Ok(CalibrationReport {
        baseline,
        dmt,
        predicted_baseline,
        predicted_dmt,
    })
}
