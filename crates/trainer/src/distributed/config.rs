//! Configuration and error types of the distributed execution engine.

use dmt_comm::codec::WireFormat;
use dmt_comm::{CommError, FabricProfile};
use dmt_commsim::Quantization;
use dmt_data::DatasetSchema;
use dmt_models::{ModelArch, ModelHyperparams};
use dmt_tensor::TensorError;
use dmt_topology::{ClusterTopology, TopologyError};
use serde::{Deserialize, Serialize};

/// Errors produced while configuring or running the distributed engine.
#[derive(Debug)]
pub enum DistributedError {
    /// A collective failed.
    Comm(CommError),
    /// A tensor shape mismatch inside a rank's local compute.
    Tensor(TensorError),
    /// The cluster shape was invalid.
    Topology(TopologyError),
    /// The configuration cannot be executed (e.g. more towers than features).
    Config {
        /// Explanation of the problem.
        reason: String,
    },
    /// A rank thread died.
    Rank {
        /// The global rank that failed.
        rank: usize,
        /// Panic or join failure description.
        message: String,
    },
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Comm(e) => write!(f, "collective failed: {e}"),
            DistributedError::Tensor(e) => write!(f, "tensor error: {e}"),
            DistributedError::Topology(e) => write!(f, "topology error: {e}"),
            DistributedError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            DistributedError::Rank { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<CommError> for DistributedError {
    fn from(value: CommError) -> Self {
        DistributedError::Comm(value)
    }
}

impl From<TensorError> for DistributedError {
    fn from(value: TensorError) -> Self {
        DistributedError::Tensor(value)
    }
}

impl From<TopologyError> for DistributedError {
    fn from(value: TopologyError) -> Self {
        DistributedError::Topology(value)
    }
}

impl From<dmt_core::DmtError> for DistributedError {
    fn from(value: dmt_core::DmtError) -> Self {
        DistributedError::Config {
            reason: value.to_string(),
        }
    }
}

/// Which deployment the engine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Hybrid-parallel strong baseline: globally sharded tables, global exchanges.
    Baseline,
    /// Disaggregated Multi-Tower: one tower per host, peer + intra-host exchanges.
    Dmt,
}

/// How an iteration's collectives are scheduled against its compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleMode {
    /// Every collective blocks the issuing rank — the original engine, preserved
    /// bit-identically (losses and byte counts) as the semantic reference.
    Sync,
    /// Double-buffered software pipeline over
    /// [`DistributedConfig::micro_batches`] micro-batches: collectives are issued
    /// nonblocking (`dmt_comm::PendingOp`) so micro-batch `b+1`'s exchanges run
    /// while micro-batch `b` computes, and the gradient AllReduce overlaps the
    /// embedding backward. Numerics stay deterministic but differ from [`Sync`]
    /// (the batch is split and gradients are micro-batch-averaged).
    ///
    /// [`Sync`]: ScheduleMode::Sync
    Pipelined,
}

/// Configuration of one distributed engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Cluster the rank threads are mapped onto (one thread per GPU rank).
    pub cluster: ClusterTopology,
    /// Dataset schema (defines the embedding tables).
    pub schema: DatasetSchema,
    /// Interaction architecture of the dense stack.
    pub arch: ModelArch,
    /// Dense hyper-parameters.
    pub hyper: ModelHyperparams,
    /// Per-rank batch size.
    pub local_batch: usize,
    /// Training iterations to run and average over.
    pub iterations: usize,
    /// Learning rate (Adam for dense parameters, row-wise Adagrad for embeddings).
    pub learning_rate: f32,
    /// Tower-module output feature dimension `D` (DMT mode).
    pub tower_output_dim: usize,
    /// Tower-module ensemble parameter `c` (per-feature projections; DMT mode).
    pub tower_ensemble_c: usize,
    /// Tower-module ensemble parameter `p` (flat projections; DMT mode).
    pub tower_ensemble_p: usize,
    /// Fabric pacing applied to every collective (see [`FabricProfile`]).
    pub fabric: FabricProfile,
    /// Base seed for model initialization and per-rank data streams.
    pub seed: u64,
    /// Collective scheduling discipline (see [`ScheduleMode`]).
    pub schedule: ScheduleMode,
    /// Micro-batches per iteration in [`ScheduleMode::Pipelined`] (clamped to the
    /// local batch size at run time; ignored in sync mode).
    pub micro_batches: usize,
    /// Wire precision of the quantizable exchanges (embedding rows, tower
    /// outputs, gradients and the gradient AllReduces): the lowerings insert
    /// `Quantize`/`Dequantize` nodes around those transfers so only encoded
    /// bytes hit the wire. Index exchanges always ride native `u64` width.
    /// [`Quantization::Fp32`] (the default) is the bit-identical identity path.
    pub wire_precision: Quantization,
}

impl DistributedConfig {
    /// A small configuration over `cluster` that runs in CPU-test time: the reduced
    /// Criteo-like schema, tiny dense stack, 64-sample local batches and maximally
    /// compressing tower modules (`c = 0`, `p = 1`). Scheduling defaults to
    /// [`ScheduleMode::Sync`].
    #[must_use]
    pub fn quick(cluster: ClusterTopology, arch: ModelArch) -> Self {
        Self {
            cluster,
            schema: DatasetSchema::criteo_like_small(),
            arch,
            hyper: ModelHyperparams::tiny(),
            local_batch: 64,
            iterations: 4,
            learning_rate: 1e-2,
            tower_output_dim: 16,
            tower_ensemble_c: 0,
            tower_ensemble_p: 1,
            fabric: FabricProfile::unthrottled(),
            seed: 7,
            schedule: ScheduleMode::Sync,
            micro_batches: 2,
            wire_precision: Quantization::Fp32,
        }
    }

    /// Overrides the fabric profile.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricProfile) -> Self {
        self.fabric = fabric;
        self
    }

    /// Overrides the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Overrides the per-rank batch size.
    #[must_use]
    pub fn with_local_batch(mut self, local_batch: usize) -> Self {
        self.local_batch = local_batch.max(1);
        self
    }

    /// Overrides the scheduling discipline.
    #[must_use]
    pub fn with_schedule(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the pipelined micro-batch count (minimum 1).
    #[must_use]
    pub fn with_micro_batches(mut self, micro_batches: usize) -> Self {
        self.micro_batches = micro_batches.max(1);
        self
    }

    /// Overrides the wire precision of the quantizable exchanges.
    #[must_use]
    pub fn with_wire_precision(mut self, wire_precision: Quantization) -> Self {
        self.wire_precision = wire_precision;
        self
    }

    /// The executable codec format for this configuration's wire precision.
    #[must_use]
    pub fn wire_format(&self) -> WireFormat {
        super::graph::wire_format(self.wire_precision)
    }

    /// Number of towers in DMT mode (the paper's default: one per host).
    #[must_use]
    pub fn num_towers(&self) -> usize {
        self.cluster.num_hosts()
    }

    /// The micro-batch count the pipelined schedule will actually use: at least 1,
    /// at most the local batch size (every micro-batch must hold a sample).
    #[must_use]
    pub fn effective_micro_batches(&self) -> usize {
        self.micro_batches.clamp(1, self.local_batch.max(1))
    }

    /// Micro-batches the executed schedule splits each iteration into: one under
    /// [`ScheduleMode::Sync`] (the whole batch, blocking semantics), the
    /// effective count under [`ScheduleMode::Pipelined`].
    #[must_use]
    pub fn schedule_micro_batches(&self) -> usize {
        match self.schedule {
            ScheduleMode::Sync => 1,
            ScheduleMode::Pipelined => self.effective_micro_batches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_topology::HardwareGeneration;

    #[test]
    fn quick_defaults_to_sync_double_buffering() {
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 4).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm);
        assert_eq!(cfg.schedule, ScheduleMode::Sync);
        assert_eq!(cfg.micro_batches, 2);
        assert_eq!(cfg.effective_micro_batches(), 2);
    }

    #[test]
    fn micro_batches_clamp_to_the_local_batch() {
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 1, 2).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_local_batch(3)
            .with_micro_batches(16);
        assert_eq!(cfg.effective_micro_batches(), 3);
        let cfg = cfg.with_micro_batches(1);
        assert_eq!(cfg.effective_micro_batches(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DistributedError::Config {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e = DistributedError::Rank {
            rank: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("boom"));
    }
}
