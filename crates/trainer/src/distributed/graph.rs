//! The iteration-graph IR: one typed DAG of ops that both deployments lower onto.
//!
//! An iteration of either deployment — hybrid-parallel baseline or DMT — is the
//! *same* training step expressed over different topology-aware communication
//! patterns. This module makes that literal: a lowering (see
//! [`super::baseline`] / [`super::dmt`]) emits an [`IterationGraph`] whose nodes
//! are typed [`OpKind`]s (index exchanges, row exchanges, tower compute,
//! gradient synchronization, quantize/dequantize codec steps, …), and one
//! scheduler — the deterministic list schedule of [`super::pipeline::StageGraph`]
//! — executes any graph under either [`super::config::ScheduleMode`]. The
//! schedule is encoded purely in node *order*: the sync lowering places every
//! `wait` directly after its `issue`, the pipelined lowering stretches the
//! distance between them so micro-batch `b+1`'s transfers ride under micro-batch
//! `b`'s compute.
//!
//! The declarative side of the same IR is the [`SpecNode`] sequence
//! ([`baseline_engine_spec`] / [`dmt_engine_spec`]): for each deployment, the
//! ordered communication segments an
//! iteration produces — kind, label, communicator scope, collective and wire
//! precision — independent of any rank state. It is the single source of truth
//! three consumers share:
//!
//! * the execution engine's measured segments are asserted against it (tests),
//! * the analytical simulator prices its per-segment payloads through the same
//!   [`price_comm`] the calibration twin uses,
//! * wire-byte expectations derive from [`dmt_comm::WireFormat::encoded_bytes`]
//!   instead of parallel arithmetic.

use super::config::DistributedError;
use super::measure::CommScope;
use super::pipeline::{StageGraph, StageId};
use dmt_comm::codec::{self, WireFormat};
use dmt_comm::{CommError, CommOp};
use dmt_commsim::{collectives, CollectiveEstimate, CostModel, Quantization, SegmentKind};
use dmt_topology::ProcessGroup;
use serde::{Deserialize, Serialize};

/// What a graph node *does* — the op vocabulary of the IR.
///
/// The README's architecture table enumerates which link class each comm kind
/// rides per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Local sharded-table work: routing requests, answering them, pooling rows.
    EmbeddingLookup,
    /// AlltoAll of sparse indices / request keys (`u64` payload, never quantized).
    IndexExchange,
    /// AlltoAll of raw embedding rows (`f32` payload, quantizable).
    RowExchange,
    /// AlltoAll of compressed tower outputs or their gradients (`f32`, quantizable).
    OutputExchange,
    /// AlltoAll of embedding-row gradients back to their owners (`f32`, quantizable).
    GradExchange,
    /// Tower-module forward over the combined tower batch.
    TowerForward,
    /// Tower-module backward.
    TowerBackward,
    /// Replicated dense-stack forward + backward on the local (micro-)batch.
    DenseForwardBackward,
    /// Gradient AllReduce (dense or tower-module parameters; wire-quantizable).
    AllReduce,
    /// Encode an `f32` payload into reduced-precision wire words ([`dmt_comm::codec`]).
    Quantize,
    /// Decode received wire words back to `f32`.
    Dequantize,
    /// Device-local permute / shuffle (simulator-only segment).
    Shuffle,
    /// Optimizer step and other host-side overhead.
    Optimizer,
}

impl OpKind {
    /// The latency category this kind lands in on an
    /// [`dmt_commsim::IterationTimeline`].
    #[must_use]
    pub fn segment_kind(self) -> SegmentKind {
        match self {
            OpKind::EmbeddingLookup
            | OpKind::TowerForward
            | OpKind::TowerBackward
            | OpKind::DenseForwardBackward
            | OpKind::Quantize
            | OpKind::Dequantize => SegmentKind::Compute,
            OpKind::IndexExchange
            | OpKind::RowExchange
            | OpKind::OutputExchange
            | OpKind::GradExchange => SegmentKind::EmbeddingComm,
            OpKind::AllReduce => SegmentKind::DenseSync,
            OpKind::Shuffle => SegmentKind::Shuffle,
            OpKind::Optimizer => SegmentKind::Other,
        }
    }

    /// Whether this kind moves bytes over a communicator world.
    #[must_use]
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            OpKind::IndexExchange
                | OpKind::RowExchange
                | OpKind::OutputExchange
                | OpKind::GradExchange
                | OpKind::AllReduce
        )
    }

    /// Whether this kind's payload is `f32` data the wire codec may quantize
    /// (index exchanges carry `u64` ids and always ride at native width).
    #[must_use]
    pub fn is_quantizable(self) -> bool {
        matches!(
            self,
            OpKind::RowExchange | OpKind::OutputExchange | OpKind::GradExchange | OpKind::AllReduce
        )
    }
}

/// Static description of one graph node: what it is and how it shows up in
/// measured timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMeta {
    /// The op vocabulary entry.
    pub kind: OpKind,
    /// Scheduling label (also the debug name in stage errors).
    pub label: &'static str,
}

/// A typed iteration DAG over a mutable rank context `C`.
///
/// Thin IR layer over [`StageGraph`]: every node carries a [`NodeMeta`] so the
/// lowered graph is introspectable (op census, quantization-node placement),
/// while scheduling and dependency validation stay in the one list scheduler.
pub struct IterationGraph<'a, C> {
    stages: StageGraph<'a, C>,
    metas: Vec<NodeMeta>,
}

impl<C> Default for IterationGraph<'_, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, C> IterationGraph<'a, C> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stages: StageGraph::new(),
            metas: Vec::new(),
        }
    }

    /// Appends a node with `meta` depending on `deps`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency does not precede this node in the list (see
    /// [`StageGraph::add`]).
    pub fn add(
        &mut self,
        meta: NodeMeta,
        deps: &[StageId],
        run: impl FnOnce(&mut C) -> Result<(), DistributedError> + 'a,
    ) -> StageId {
        self.metas.push(meta);
        self.stages.add(meta.label, deps, run)
    }

    /// The metas of every node, in schedule order.
    #[must_use]
    pub fn ops(&self) -> &[NodeMeta] {
        &self.metas
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Executes every node in list order against `ctx` (see [`StageGraph::run`]).
    ///
    /// # Errors
    ///
    /// Propagates the first node failure (configuration errors are annotated
    /// with the failing node's label; transport and tensor errors keep their
    /// own type so callers can still match on them).
    pub fn run(self, ctx: &mut C) -> Result<(), DistributedError> {
        self.stages.run(ctx)
    }
}

/// One declared segment of a lowered iteration: the IR's data-only view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecNode {
    /// Op vocabulary entry.
    pub kind: OpKind,
    /// Measured-segment label this node produces.
    pub label: &'static str,
    /// Communicator world the bytes ride ([`CommScope::Local`] for compute).
    pub scope: CommScope,
    /// The collective executed, `None` for compute/overhead segments.
    pub comm: Option<CommOp>,
    /// Wire precision of the payload ([`Quantization::Fp32`] where the codec
    /// does not apply — index exchanges, compute).
    pub wire: Quantization,
    /// Declared payload in FP32 bytes per rank (the quantity the wire precision
    /// scales). Zero for compute segments and for engine specs, whose payloads
    /// are measured rather than declared.
    pub fp32_bytes: u64,
    /// Declared local duration in seconds for compute/shuffle/overhead segments
    /// (ignored for comm segments, whose time is priced from bytes).
    pub local_time_s: f64,
    /// Exposure fraction the analytical simulator assumes for this segment.
    pub exposed: f64,
}

impl SpecNode {
    /// A communication spec node.
    #[must_use]
    pub fn comm(
        kind: OpKind,
        label: &'static str,
        scope: CommScope,
        comm: CommOp,
        wire: Quantization,
        fp32_bytes: u64,
        exposed: f64,
    ) -> Self {
        Self {
            kind,
            label,
            scope,
            comm: Some(comm),
            wire: if kind.is_quantizable() {
                wire
            } else {
                Quantization::Fp32
            },
            fp32_bytes,
            local_time_s: 0.0,
            exposed,
        }
    }

    /// A local (compute / shuffle / overhead) spec node of a fixed duration.
    #[must_use]
    pub fn local(kind: OpKind, label: &'static str, time_s: f64) -> Self {
        Self {
            kind,
            label,
            scope: CommScope::Local,
            comm: None,
            wire: Quantization::Fp32,
            fp32_bytes: 0,
            local_time_s: time_s,
            exposed: 1.0,
        }
    }

    /// Declared on-wire bytes: the FP32 payload scaled to the node's wire
    /// precision — the one place this arithmetic lives.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.wire.scale_fp32_bytes(self.fp32_bytes)
    }
}

/// Prices one collective of `bytes` per-rank payload over `group` with the α–β
/// model — the shared op→estimate mapping of the analytical simulator
/// ([`crate::simulation`]) and the calibration twin
/// ([`super::calibrate::predicted_timeline`]).
#[must_use]
pub fn price_comm(
    model: &CostModel,
    group: &ProcessGroup,
    op: CommOp,
    bytes: u64,
) -> CollectiveEstimate {
    match op {
        CommOp::AllReduce => collectives::all_reduce(model, group, bytes),
        CommOp::ReduceScatter => collectives::reduce_scatter(model, group, bytes),
        CommOp::AllGather => collectives::all_gather(model, group, bytes),
        CommOp::AllToAll | CommOp::AllToAllIndices | CommOp::Barrier => {
            collectives::all_to_all(model, group, bytes)
        }
    }
}

/// Maps the simulator's wire-precision vocabulary onto the executable codec's
/// (FP8 is carried by the int8 codec: 1 byte per element on the wire).
#[must_use]
pub fn wire_format(quant: Quantization) -> WireFormat {
    match quant {
        Quantization::Fp32 => WireFormat::Fp32,
        Quantization::Fp16 => WireFormat::Fp16,
        Quantization::Fp8 | Quantization::Int8 => WireFormat::Int8,
    }
}

/// Encodes each destination shard of an AlltoAll payload at `wire` precision
/// (identity — no copy — at FP32).
#[must_use]
pub(crate) fn encode_shards(wire: WireFormat, shards: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    if wire.is_identity() {
        return shards;
    }
    shards
        .into_iter()
        .map(|shard| codec::encode(wire, shard))
        .collect()
}

/// Decodes each received shard of an AlltoAll payload, with `elements(src)`
/// supplying the receiver-known element count per source rank.
pub(crate) fn decode_shards(
    wire: WireFormat,
    shards: Vec<Vec<f32>>,
    elements: impl Fn(usize) -> usize,
) -> Result<Vec<Vec<f32>>, CommError> {
    if wire.is_identity() {
        return Ok(shards);
    }
    shards
        .into_iter()
        .enumerate()
        .map(|(src, shard)| codec::decode(wire, shard, elements(src)))
        .collect()
}

/// The declared segment sequence of one **sync-scheduled baseline** iteration —
/// what [`super::run_baseline`] measures, in order. Engine specs declare
/// structure (kind, label, scope, collective, wire precision); payload bytes are
/// measured at run time, so `fp32_bytes` is zero here.
#[must_use]
pub fn baseline_engine_spec(wire: Quantization) -> Vec<SpecNode> {
    use CommOp::{AllReduce, AllToAll, AllToAllIndices};
    vec![
        SpecNode::local(OpKind::DenseForwardBackward, "dense + sparse compute", 0.0),
        SpecNode::comm(
            OpKind::IndexExchange,
            "feature distribution AlltoAll",
            CommScope::Global,
            AllToAllIndices,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::RowExchange,
            "embedding row fetch AlltoAll (fwd)",
            CommScope::Global,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::GradExchange,
            "embedding gradient AlltoAll (bwd)",
            CommScope::Global,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::AllReduce,
            "dense gradient AllReduce",
            CommScope::Global,
            AllReduce,
            wire,
            0,
            1.0,
        ),
        SpecNode::local(OpKind::Optimizer, "optimizer + host overhead", 0.0),
    ]
}

/// The declared segment sequence of one **sync-scheduled DMT** iteration — what
/// [`super::run_dmt`] measures, in order. The intra-host index and row-fetch
/// exchanges share one label (they form a single lookup round trip and are
/// merged into one measured segment), so the row-fetch entry stands for both.
#[must_use]
pub fn dmt_engine_spec(wire: Quantization) -> Vec<SpecNode> {
    use CommOp::{AllReduce, AllToAll, AllToAllIndices};
    vec![
        SpecNode::local(
            OpKind::DenseForwardBackward,
            "dense + tower-module compute",
            0.0,
        ),
        SpecNode::comm(
            OpKind::IndexExchange,
            "peer index distribution AlltoAll",
            CommScope::Peer,
            AllToAllIndices,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::RowExchange,
            "intra-host row fetch AlltoAll (fwd)",
            CommScope::IntraHost,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::OutputExchange,
            "peer tower-output AlltoAll (fwd)",
            CommScope::Peer,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::OutputExchange,
            "peer tower-grad AlltoAll (bwd)",
            CommScope::Peer,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::GradExchange,
            "intra-host gradient AlltoAll (bwd)",
            CommScope::IntraHost,
            AllToAll,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::AllReduce,
            "tower-module intra-host AllReduce",
            CommScope::IntraHost,
            AllReduce,
            wire,
            0,
            1.0,
        ),
        SpecNode::comm(
            OpKind::AllReduce,
            "dense gradient AllReduce",
            CommScope::Global,
            AllReduce,
            wire,
            0,
            1.0,
        ),
        SpecNode::local(OpKind::Optimizer, "optimizer + host overhead", 0.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_nodes_carry_meta_and_run_in_order() {
        let mut graph: IterationGraph<Vec<OpKind>> = IterationGraph::new();
        let a = graph.add(
            NodeMeta {
                kind: OpKind::EmbeddingLookup,
                label: "lookup",
            },
            &[],
            |log| {
                log.push(OpKind::EmbeddingLookup);
                Ok(())
            },
        );
        graph.add(
            NodeMeta {
                kind: OpKind::Quantize,
                label: "quantize",
            },
            &[a],
            |log| {
                log.push(OpKind::Quantize);
                Ok(())
            },
        );
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.ops()[1].kind, OpKind::Quantize);
        let mut log = Vec::new();
        graph.run(&mut log).unwrap();
        assert_eq!(log, vec![OpKind::EmbeddingLookup, OpKind::Quantize]);
    }

    #[test]
    fn quantizable_kinds_scale_spec_bytes_and_index_kinds_do_not() {
        let rows = SpecNode::comm(
            OpKind::RowExchange,
            "rows",
            CommScope::Global,
            CommOp::AllToAll,
            Quantization::Fp16,
            1000,
            1.0,
        );
        assert_eq!(rows.wire_bytes(), 500);
        let idx = SpecNode::comm(
            OpKind::IndexExchange,
            "idx",
            CommScope::Global,
            CommOp::AllToAllIndices,
            Quantization::Fp16,
            1000,
            1.0,
        );
        assert_eq!(idx.wire_bytes(), 1000, "index payloads ride native width");
    }

    #[test]
    fn engine_specs_cover_both_deployments() {
        let baseline = baseline_engine_spec(Quantization::Fp32);
        assert_eq!(baseline.len(), 6);
        assert!(baseline.iter().filter(|n| n.kind.is_comm()).count() == 4);
        let dmt = dmt_engine_spec(Quantization::Fp16);
        assert_eq!(dmt.len(), 9);
        // Peer exchanges ride the peer scope; the lookup round trip is intra-host.
        assert!(dmt
            .iter()
            .filter(|n| n.scope == CommScope::Peer)
            .all(|n| n.kind != OpKind::AllReduce));
        // At fp16 the index exchange stays at native width.
        assert_eq!(dmt[1].wire, Quantization::Fp32);
        assert_eq!(dmt[2].wire, Quantization::Fp16);
    }

    #[test]
    fn codec_shard_helpers_round_trip() {
        let shards = vec![vec![1.0f32, -2.0, 3.5], vec![], vec![0.25]];
        let lens = [3usize, 0, 1];
        let encoded = encode_shards(WireFormat::Fp16, shards.clone());
        assert_eq!(encoded[0].len(), 2);
        let decoded = decode_shards(WireFormat::Fp16, encoded, |src| lens[src]).unwrap();
        assert_eq!(decoded, shards, "these values are exact in fp16");
        // FP32 is the identity.
        let decoded = decode_shards(WireFormat::Fp32, shards.clone(), |src| lens[src]).unwrap();
        assert_eq!(decoded, shards);
    }
}
