//! Measurement types of the distributed engine: per-segment samples, per-rank
//! accumulation and the aggregated [`MeasuredRun`].
//!
//! Exposure is *measured*, not assumed: every communication segment carries both
//! its full transfer duration (from the backend's [`OpRecord`] issue/complete
//! timestamps) and the seconds the issuing rank actually spent blocked on it — the
//! op's exposed share of the critical path. Under the sync schedule the two
//! coincide (the rank blocks for the whole transfer); under the pipelined schedule
//! a hidden op shows near-zero exposure. `MeasuredRun::exposed_comm_fraction`
//! therefore reports real overlap instead of the fixed per-category constants the
//! analytical simulator uses.

use super::config::{DistributedConfig, ExecutionMode, ScheduleMode};
use super::RankComms;
use dmt_comm::{Backend, CommOp, OpRecord};
use dmt_commsim::{IterationTimeline, LatencyBreakdown, Quantization, Segment, SegmentKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which communicator world a measured segment ran over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// Rank-local compute, no communicator.
    Local,
    /// The global world (all ranks).
    Global,
    /// One host's ranks.
    IntraHost,
    /// Same-slot ranks across hosts (SPTT peer group).
    Peer,
}

impl CommScope {
    /// The scope's name as it appears in trace-event `scope` arguments (the
    /// vocabulary [`dmt_metrics::trace::hidden_comm_fraction_from_trace`]
    /// keys its wait↔op pairing on).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CommScope::Local => "Local",
            CommScope::Global => "Global",
            CommScope::IntraHost => "IntraHost",
            CommScope::Peer => "Peer",
        }
    }
}

/// One measured timeline segment, averaged over the run's iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSegment {
    /// Human-readable label.
    pub label: String,
    /// Latency category (matches the analytical simulator's segments).
    pub kind: SegmentKind,
    /// Measured fraction of the duration exposed on the issuing rank's critical
    /// path (blocked-wait seconds / transfer seconds). `1.0` for compute segments
    /// and for sync-scheduled collectives; near `0.0` for a fully hidden transfer.
    pub exposed_fraction: f64,
    /// Measured mean wall-clock seconds per iteration (slowest rank).
    pub time_s: f64,
    /// Mean per-rank payload bytes per iteration.
    pub payload_bytes: u64,
    /// Mean per-rank bytes crossing scale-out (cross-host) links per iteration.
    pub cross_host_bytes: u64,
    /// Mean per-rank bytes crossing scale-up (intra-host) links per iteration.
    pub intra_host_bytes: u64,
    /// Communicator world the segment ran over.
    pub scope: CommScope,
    /// The collective executed, `None` for compute/overhead segments.
    pub op: Option<CommOp>,
}

impl MeasuredSegment {
    /// Exposed seconds of this segment (duration × measured exposed fraction).
    #[must_use]
    pub fn exposed_s(&self) -> f64 {
        self.time_s * self.exposed_fraction
    }

    /// Seconds of this segment hidden behind compute (duration − exposed).
    #[must_use]
    pub fn hidden_s(&self) -> f64 {
        self.time_s * (1.0 - self.exposed_fraction)
    }

    /// Whether this segment is communication (has an op and a non-local scope).
    #[must_use]
    pub fn is_comm(&self) -> bool {
        self.op.is_some() && self.scope != CommScope::Local
    }
}

/// Result of running one deployment for real.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// The executed deployment.
    pub mode: ExecutionMode,
    /// The collective schedule the run used.
    pub schedule: ScheduleMode,
    /// Wire precision of the quantizable exchanges (embedding rows, tower
    /// outputs, gradients, AllReduces); index exchanges always ride native width.
    pub wire: Quantization,
    /// Number of rank threads.
    pub world_size: usize,
    /// Iterations averaged over.
    pub iterations: usize,
    /// Per-segment measurements in iteration order.
    pub segments: Vec<MeasuredSegment>,
    /// Mean training loss across ranks, one entry per iteration.
    pub losses: Vec<f64>,
    /// Mean training ROC AUC on the local batches across ranks, one entry per
    /// iteration (`None` when no rank's batch held both classes).
    pub aucs: Vec<Option<f64>>,
    /// Mean wall-clock seconds per iteration (slowest rank) — the end-to-end
    /// figure overlap is supposed to shrink. Under the sync schedule this is close
    /// to the sum of segment durations; under the pipelined schedule it is
    /// smaller, by exactly the communication that was hidden.
    pub wall_s_per_iter: f64,
    /// Per-iteration wall-clock seconds (slowest rank per iteration), the raw
    /// samples behind [`MeasuredRun::wall_latency`].
    pub iter_wall_s: Vec<f64>,
}

impl MeasuredRun {
    /// The measured timeline in the simulator's [`IterationTimeline`] form, with
    /// each segment's *measured* exposed fraction.
    #[must_use]
    pub fn timeline(&self) -> IterationTimeline {
        self.segments
            .iter()
            .map(|s| Segment::new(s.kind, s.label.clone(), s.time_s, s.exposed_fraction))
            .collect()
    }

    /// Exposed-latency breakdown of the measured timeline.
    #[must_use]
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.timeline().breakdown()
    }

    /// Mean per-rank cross-host bytes per iteration.
    #[must_use]
    pub fn cross_host_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.cross_host_bytes).sum()
    }

    /// Mean per-rank intra-host bytes per iteration.
    #[must_use]
    pub fn intra_host_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.intra_host_bytes).sum()
    }

    /// Full (pre-overlap) communication seconds per iteration.
    #[must_use]
    pub fn comm_time_s(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.is_comm())
            .map(|s| s.time_s)
            .sum()
    }

    /// *Exposed* communication seconds per iteration, from the measured per-op
    /// blocked time.
    #[must_use]
    pub fn exposed_comm_s(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.is_comm())
            .map(MeasuredSegment::exposed_s)
            .sum()
    }

    /// Fraction of the exposed iteration spent communicating (embedding exchanges +
    /// gradient synchronization) — the quantity the paper's Figure 1 is about.
    ///
    /// Computed from op-level measurements (issue/complete timestamps and
    /// blocked-wait times), **not** from assumed per-category exposure constants:
    /// a pipelined run whose transfers hide behind compute reports a smaller
    /// fraction than a sync run moving identical bytes.
    #[must_use]
    pub fn exposed_comm_fraction(&self) -> f64 {
        super::calibrate::CalibrationReport::comm_fraction(&self.breakdown())
    }

    /// Fraction of this run's communication that overlap *hid* (0 = everything
    /// exposed, as in sync mode; 1 = every transfer fully behind compute).
    #[must_use]
    pub fn hidden_comm_fraction(&self) -> f64 {
        let total = self.comm_time_s();
        if total <= 0.0 {
            return 0.0;
        }
        (1.0 - self.exposed_comm_s() / total).clamp(0.0, 1.0)
    }

    /// Mean training AUC over the iterations where it was defined.
    #[must_use]
    pub fn mean_auc(&self) -> Option<f64> {
        let defined: Vec<f64> = self.aucs.iter().filter_map(|a| *a).collect();
        if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        }
    }

    /// p50/p95/p99 summary of the per-iteration wall times, computed with the
    /// same nearest-rank helper the serving engine uses for request latency
    /// ([`fn@dmt_metrics::percentile`]). `None` when no iterations were recorded.
    #[must_use]
    pub fn wall_latency(&self) -> Option<dmt_metrics::LatencyPercentiles> {
        dmt_metrics::LatencyPercentiles::of(&self.iter_wall_s)
    }

    /// The run as a [`dmt_metrics::ThroughputWindow`] — iterations over total
    /// wall time — so training and serving report rates through one vocabulary.
    #[must_use]
    pub fn throughput(&self) -> dmt_metrics::ThroughputWindow {
        dmt_metrics::ThroughputWindow {
            count: self.iter_wall_s.len(),
            wall_s: self.iter_wall_s.iter().sum(),
        }
    }

    /// Mean training loss over the run's iterations.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        if self.losses.is_empty() {
            return 0.0;
        }
        self.losses.iter().sum::<f64>() / self.losses.len() as f64
    }
}

/// One measured sample of a segment within a single iteration.
pub(crate) struct SegmentSample {
    pub label: &'static str,
    pub kind: SegmentKind,
    pub scope: CommScope,
    pub op: Option<CommOp>,
    pub time_s: f64,
    /// Seconds of `time_s` the rank spent blocked (exposed); equals `time_s` for
    /// compute segments and sync-scheduled collectives.
    pub exposed_s: f64,
    pub payload_bytes: u64,
    pub cross_host_bytes: u64,
    pub intra_host_bytes: u64,
}

impl SegmentSample {
    /// A fully exposed compute/overhead sample.
    pub(crate) fn compute(label: &'static str, kind: SegmentKind, time_s: f64) -> Self {
        Self {
            label,
            kind,
            scope: CommScope::Local,
            op: None,
            time_s,
            exposed_s: time_s,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
        }
    }

    /// A communication sample built from one completed op record and the measured
    /// seconds the rank blocked on it.
    pub(crate) fn from_record(
        label: &'static str,
        kind: SegmentKind,
        scope: CommScope,
        record: &OpRecord,
        blocked_s: f64,
    ) -> Self {
        Self {
            label,
            kind,
            scope,
            op: Some(record.op),
            time_s: record.elapsed_s,
            exposed_s: blocked_s.min(record.elapsed_s),
            payload_bytes: record.payload_bytes,
            cross_host_bytes: record.cross_host_bytes,
            intra_host_bytes: record.intra_host_bytes,
        }
    }
}

/// One logged wait of the executed schedule: which op, which world, how long
/// the rank was blocked.
pub(crate) struct WaitEntry {
    pub label: &'static str,
    pub kind: SegmentKind,
    pub scope: CommScope,
    pub blocked_s: f64,
}

/// Waits for `op`, logging the blocked seconds as the op's exposed time.
pub(crate) fn wait_logged<T>(
    op: dmt_comm::PendingOp<T>,
    waits: &mut Vec<WaitEntry>,
    label: &'static str,
    kind: SegmentKind,
    scope: CommScope,
) -> Result<T, super::config::DistributedError> {
    let (result, blocked_s) = op.wait_timed();
    waits.push(WaitEntry {
        label,
        kind,
        scope,
        blocked_s,
    });
    result.map_err(Into::into)
}

/// Zips one iteration's logged waits with the worlds' drained op records into
/// measured samples — **in wait order across worlds**, which is the graph's
/// schedule order. Within one world, records are FIFO (the helper thread runs
/// in issue order and the schedule waits in issue order), so each wait claims
/// the front of its scope's record queue. Consecutive same-labelled samples on
/// the same scope merge into one (e.g. the intra-host index + row-fetch pair
/// forms one "row fetch" segment; a micro-batched exchange folds into one
/// segment per pipeline wave), keeping the segment sequence schedule-invariant.
pub(crate) fn collect_comm_samples(
    comm: &mut RankComms,
    waits: &[WaitEntry],
) -> Vec<SegmentSample> {
    let mut global: VecDeque<OpRecord> = comm.global.drain_records().into();
    let mut intra: VecDeque<OpRecord> = comm.intra.drain_records().into();
    let mut peer: VecDeque<OpRecord> = comm.peer.drain_records().into();
    let mut samples: Vec<SegmentSample> = Vec::new();
    for wait in waits {
        let queue = match wait.scope {
            CommScope::Global => &mut global,
            CommScope::IntraHost => &mut intra,
            CommScope::Peer => &mut peer,
            CommScope::Local => unreachable!("local segments never wait on a collective"),
        };
        let record = queue
            .pop_front()
            .expect("every waited op leaves exactly one record");
        let sample =
            SegmentSample::from_record(wait.label, wait.kind, wait.scope, &record, wait.blocked_s);
        match samples.last_mut() {
            Some(last) if last.label == sample.label && last.scope == sample.scope => {
                last.time_s += sample.time_s;
                last.exposed_s += sample.exposed_s;
                last.payload_bytes += sample.payload_bytes;
                last.cross_host_bytes += sample.cross_host_bytes;
                last.intra_host_bytes += sample.intra_host_bytes;
                // The merged segment reports the round trip's final collective
                // (the row fetch of an index+rows pair), matching what a
                // bandwidth model should price the bulk bytes as.
                last.op = sample.op;
            }
            _ => samples.push(sample),
        }
    }
    debug_assert!(
        global.is_empty() && intra.is_empty() && peer.is_empty(),
        "every executed collective must be claimed by a wait"
    );
    samples
}

/// Assembles one iteration's full sample list: the compute segment (everything
/// not blocked in a wait and not the optimizer), the communication samples in
/// schedule order, and the optimizer/host segment.
pub(crate) fn iteration_samples(
    compute_label: &'static str,
    comm_samples: Vec<SegmentSample>,
    iter_s: f64,
    opt_s: f64,
) -> Vec<SegmentSample> {
    let exposed_s: f64 = comm_samples.iter().map(|s| s.exposed_s).sum();
    // Straggler waits beyond the transfer duration fold into compute, so
    // breakdown totals stay comparable across schedules on imbalanced ranks.
    let compute_s = (iter_s - exposed_s - opt_s).max(0.0);
    let mut samples = vec![SegmentSample::compute(
        compute_label,
        SegmentKind::Compute,
        compute_s,
    )];
    samples.extend(comm_samples);
    samples.push(SegmentSample::compute(
        "optimizer + host overhead",
        SegmentKind::Other,
        opt_s,
    ));
    samples
}

/// Per-rank result of a full run.
pub(crate) struct RankOutcome {
    /// Accumulated segment totals across iterations, in segment order.
    pub segments: Vec<SegmentSample>,
    pub losses: Vec<f64>,
    /// Per-iteration training AUC on this rank's local batches (`None` when a
    /// batch held a single class).
    pub aucs: Vec<Option<f64>>,
    /// Total wall-clock seconds this rank spent across all iterations.
    pub wall_s: f64,
    /// Per-iteration wall-clock seconds on this rank.
    pub iter_wall_s: Vec<f64>,
}

/// Folds one iteration's samples into the run accumulator.
pub(crate) fn accumulate(total: &mut Vec<SegmentSample>, iteration: Vec<SegmentSample>) {
    if total.is_empty() {
        *total = iteration;
        return;
    }
    debug_assert_eq!(
        total.len(),
        iteration.len(),
        "segment sequence must be static"
    );
    for (acc, s) in total.iter_mut().zip(iteration) {
        debug_assert_eq!(acc.label, s.label);
        acc.time_s += s.time_s;
        acc.exposed_s += s.exposed_s;
        acc.payload_bytes += s.payload_bytes;
        acc.cross_host_bytes += s.cross_host_bytes;
        acc.intra_host_bytes += s.intra_host_bytes;
    }
}

/// Mean-aggregates rank outcomes into the run's measured segments.
pub(crate) fn aggregate(
    mode: ExecutionMode,
    config: &DistributedConfig,
    outcomes: Vec<RankOutcome>,
) -> MeasuredRun {
    let world = outcomes.len();
    let iters = config.iterations as f64;
    let mut segments: Vec<MeasuredSegment> = outcomes[0]
        .segments
        .iter()
        .map(|s| MeasuredSegment {
            label: s.label.to_string(),
            kind: s.kind,
            exposed_fraction: 1.0,
            time_s: 0.0,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
            scope: s.scope,
            op: s.op,
        })
        .collect();
    let mut exposed: Vec<f64> = vec![0.0; segments.len()];
    for outcome in &outcomes {
        for (i, (agg, s)) in segments.iter_mut().zip(&outcome.segments).enumerate() {
            // Wall time is set by the slowest rank; exposure follows it (the
            // slowest rank's blocked time is what lands on the critical path);
            // byte counts are per-rank means.
            let time = s.time_s / iters;
            if time > agg.time_s {
                agg.time_s = time;
                exposed[i] = s.exposed_s / iters;
            }
            agg.payload_bytes += s.payload_bytes;
            agg.cross_host_bytes += s.cross_host_bytes;
            agg.intra_host_bytes += s.intra_host_bytes;
        }
    }
    for (agg, exposed_s) in segments.iter_mut().zip(exposed) {
        agg.exposed_fraction = if agg.time_s > 0.0 {
            (exposed_s / agg.time_s).clamp(0.0, 1.0)
        } else {
            1.0
        };
    }
    let per_rank = |total: u64| (total as f64 / world as f64 / iters).round() as u64;
    for seg in &mut segments {
        seg.payload_bytes = per_rank(seg.payload_bytes);
        seg.cross_host_bytes = per_rank(seg.cross_host_bytes);
        seg.intra_host_bytes = per_rank(seg.intra_host_bytes);
    }
    let losses = (0..config.iterations)
        .map(|i| outcomes.iter().map(|o| o.losses[i]).sum::<f64>() / world as f64)
        .collect();
    let aucs = (0..config.iterations)
        .map(|i| {
            let defined: Vec<f64> = outcomes.iter().filter_map(|o| o.aucs[i]).collect();
            if defined.is_empty() {
                None
            } else {
                Some(defined.iter().sum::<f64>() / defined.len() as f64)
            }
        })
        .collect();
    let wall_s_per_iter = outcomes
        .iter()
        .map(|o| o.wall_s / iters)
        .fold(0.0f64, f64::max);
    // Per iteration, the wall time is set by the slowest rank of that iteration.
    let iter_wall_s = (0..config.iterations)
        .map(|i| {
            outcomes
                .iter()
                .map(|o| o.iter_wall_s[i])
                .fold(0.0f64, f64::max)
        })
        .collect();
    MeasuredRun {
        mode,
        schedule: config.schedule,
        wire: config.wire_precision,
        world_size: world,
        iterations: config.iterations,
        segments,
        losses,
        aucs,
        wall_s_per_iter,
        iter_wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm_segment(exposed_fraction: f64, time_s: f64) -> MeasuredSegment {
        MeasuredSegment {
            label: "x".into(),
            kind: SegmentKind::EmbeddingComm,
            exposed_fraction,
            time_s,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
            scope: CommScope::Global,
            op: Some(CommOp::AllToAll),
        }
    }

    #[test]
    fn hidden_fraction_complements_exposure() {
        let run = MeasuredRun {
            mode: ExecutionMode::Baseline,
            schedule: ScheduleMode::Pipelined,
            wire: Quantization::Fp32,
            world_size: 2,
            iterations: 1,
            segments: vec![comm_segment(1.0, 10e-3), comm_segment(0.0, 10e-3)],
            losses: vec![0.5],
            aucs: vec![Some(0.6)],
            wall_s_per_iter: 15e-3,
            iter_wall_s: vec![15e-3],
        };
        assert!((run.comm_time_s() - 20e-3).abs() < 1e-12);
        assert!((run.exposed_comm_s() - 10e-3).abs() < 1e-12);
        assert!((run.hidden_comm_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fully_exposed_run_hides_nothing() {
        let run = MeasuredRun {
            mode: ExecutionMode::Baseline,
            schedule: ScheduleMode::Sync,
            wire: Quantization::Fp32,
            world_size: 2,
            iterations: 1,
            segments: vec![comm_segment(1.0, 5e-3)],
            losses: vec![0.5],
            aucs: vec![None],
            wall_s_per_iter: 5e-3,
            iter_wall_s: vec![5e-3],
        };
        assert_eq!(run.hidden_comm_fraction(), 0.0);
        // And a run with no comm at all reports zero rather than NaN.
        let empty = MeasuredRun {
            segments: Vec::new(),
            ..run
        };
        assert_eq!(empty.hidden_comm_fraction(), 0.0);
    }

    #[test]
    fn sample_exposure_is_clamped_to_the_transfer() {
        let record = OpRecord {
            op: CommOp::AllReduce,
            payload_bytes: 8,
            cross_host_bytes: 4,
            intra_host_bytes: 0,
            elapsed_s: 2e-3,
            issued_at_s: 0.0,
            completed_at_s: 2e-3,
        };
        // Blocked longer than the transfer (straggler wait): exposure caps at the
        // transfer duration — imbalance is not communication.
        let s = SegmentSample::from_record(
            "x",
            SegmentKind::DenseSync,
            CommScope::Global,
            &record,
            5e-3,
        );
        assert!((s.exposed_s - 2e-3).abs() < 1e-12);
        // Barely blocked (hidden transfer): exposure is the blocked time.
        let s = SegmentSample::from_record(
            "x",
            SegmentKind::DenseSync,
            CommScope::Global,
            &record,
            1e-4,
        );
        assert!((s.exposed_s - 1e-4).abs() < 1e-12);
    }
}
