//! The stage-graph scheduler every lowered iteration runs on.
//!
//! An iteration — sync or pipelined, baseline or DMT — lowers onto a DAG of
//! *stages* (see [`super::graph::IterationGraph`], the typed layer over this
//! one): compute stages run on the rank's own thread, communication stages issue
//! a nonblocking collective ([`dmt_comm::PendingOp`]) or claim one's result. The
//! scheduler executes a **deterministic list schedule**: stages run exactly in
//! the order they were added, and the declared dependency edges are *validated*
//! against that order — a stage listed before one of its dependencies is a bug
//! in the schedule (it would consume data that does not exist yet, or issue
//! collectives in an order that differs across ranks and deadlocks the world),
//! and the graph rejects it at construction instead of letting the world hang.
//!
//! Determinism is non-negotiable here: every rank must issue the same collective
//! sequence on each communicator world, so a work-stealing or readiness-ordered
//! executor would have to be constrained back to a fixed order anyway. Encoding
//! the schedule as the stage list keeps the overlap structure auditable — the
//! distance between a `issue X` stage and its `wait X` stage *is* the compute that
//! hides transfer X (zero distance = blocking semantics, the sync lowering).
//!
//! ```text
//! baseline, 2 micro-batches (one global world, FIFO):
//!   issue idx0 | issue idx1 | wait idx0 → answer0 → issue rows0
//!   | wait idx1 → answer1 → issue rows1          (answer1 hides rows0)
//!   | wait rows0 → pool0 → dense0 → issue grads0 (dense0 hides rows1)
//!   | wait rows1 → pool1 → dense1 → issue grads1 (dense1 hides grads0)
//!   | issue allreduce | wait grads0 → merge0     (merge0 hides grads1)
//!   | wait grads1 → merge1                       (merge1 hides allreduce)
//!   | wait allreduce → optimizer
//! ```

use super::config::DistributedError;

/// Identifier of a stage within one [`StageGraph`], returned by
/// [`StageGraph::add`] and used to declare dependencies of later stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

/// A boxed stage body: runs once against the iteration context.
type StageFn<'a, C> = Box<dyn FnOnce(&mut C) -> Result<(), DistributedError> + 'a>;

/// One node of the iteration DAG.
struct Stage<'a, C> {
    label: &'static str,
    run: StageFn<'a, C>,
}

/// A deterministic list-scheduled stage DAG over a mutable context `C`.
///
/// `C` is the iteration state (model, communicator handles, in-flight
/// [`dmt_comm::PendingOp`]s, measurement log); each stage is a closure mutating
/// it. See the [module docs](self) for the scheduling contract.
pub struct StageGraph<'a, C> {
    stages: Vec<Stage<'a, C>>,
}

impl<C> Default for StageGraph<'_, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, C> StageGraph<'a, C> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a stage that depends on `deps` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency does not precede this stage in the list — the
    /// schedule would be executed out of dependency order. This is a programming
    /// error in the schedule, caught at graph-construction time on every rank
    /// identically (all ranks build the same graph), long before a world could
    /// deadlock on mismatched collective orders.
    pub fn add(
        &mut self,
        label: &'static str,
        deps: &[StageId],
        run: impl FnOnce(&mut C) -> Result<(), DistributedError> + 'a,
    ) -> StageId {
        let id = self.stages.len();
        for dep in deps {
            assert!(
                dep.0 < id,
                "stage `{label}` (#{id}) scheduled before its dependency #{}",
                dep.0
            );
        }
        self.stages.push(Stage {
            label,
            run: Box::new(run),
        });
        StageId(id)
    }

    /// Number of stages in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the graph has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Executes every stage in list order against `ctx`, stopping at the first
    /// error (annotated with the failing stage's label).
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure.
    pub fn run(self, ctx: &mut C) -> Result<(), DistributedError> {
        for stage in self.stages {
            // One trace span per graph-node execution (no-op when tracing is
            // off); the span lands on the rank thread's registered lane.
            let _span =
                dmt_metrics::trace::span(dmt_metrics::trace::cat::NODE, || stage.label.to_string());
            (stage.run)(ctx).map_err(|e| match e {
                DistributedError::Config { reason } => DistributedError::Config {
                    reason: format!("stage `{}`: {reason}", stage.label),
                },
                other => other,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_run_in_list_order() {
        let mut graph: StageGraph<Vec<&'static str>> = StageGraph::new();
        let a = graph.add("a", &[], |log| {
            log.push("a");
            Ok(())
        });
        let b = graph.add("b", &[a], |log| {
            log.push("b");
            Ok(())
        });
        graph.add("c", &[a, b], |log| {
            log.push("c");
            Ok(())
        });
        assert_eq!(graph.len(), 3);
        let mut log = Vec::new();
        graph.run(&mut log).unwrap();
        assert_eq!(log, vec!["a", "b", "c"]);
    }

    #[test]
    fn errors_stop_the_schedule_and_name_the_stage() {
        let mut graph: StageGraph<Vec<&'static str>> = StageGraph::new();
        graph.add("ok", &[], |log| {
            log.push("ok");
            Ok(())
        });
        graph.add("boom", &[], |_| {
            Err(DistributedError::Config {
                reason: "broken".into(),
            })
        });
        graph.add("never", &[], |log| {
            log.push("never");
            Ok(())
        });
        let mut log = Vec::new();
        let err = graph.run(&mut log).unwrap_err();
        assert_eq!(log, vec!["ok"]);
        let message = err.to_string();
        assert!(
            message.contains("boom") && message.contains("broken"),
            "{message}"
        );
    }

    #[test]
    #[should_panic(expected = "scheduled before its dependency")]
    fn forward_dependencies_are_rejected() {
        let mut graph: StageGraph<()> = StageGraph::new();
        let first = graph.add("first", &[], |()| Ok(()));
        // A dependency on a stage that does not precede it: fabricate an id past
        // the end of the list (as a mis-built schedule would).
        let bogus = StageId(7);
        let _ = first;
        graph.add("second", &[bogus], |()| Ok(()));
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let graph: StageGraph<u32> = StageGraph::new();
        assert!(graph.is_empty());
        let mut ctx = 5;
        graph.run(&mut ctx).unwrap();
        assert_eq!(ctx, 5);
    }
}
