//! Frozen model snapshots: the export/import boundary between training and
//! serving.
//!
//! [`ModelSnapshot`] captures everything the online inference engine
//! (`dmt-serve`) needs to answer queries exactly like the training-side model
//! would: the dataset schema and interaction geometry, the replicated dense-stack
//! weights, the per-tower tower-module weights (DMT mode), and the **full**
//! embedding tables reassembled from every rank's shards. Tables are stored
//! unsharded so a snapshot can be re-sharded onto *any* serving cluster
//! ([`super::model::ShardedLookup::from_tables`]), independent of the world size
//! it was trained with.
//!
//! Snapshots are inference artifacts, not checkpoints: optimizer state (Adam
//! moments, row-wise Adagrad accumulators) is deliberately dropped.
//!
//! # On-disk format
//!
//! A snapshot serializes to a little-endian binary stream (JSON would balloon the
//! table weights ~4×): the magic `DMTSNAP1`, the metadata fields, then the flat
//! `f32` parameter buffers. See `to_bytes` / `from_bytes` for the exact layout;
//! round-tripping is bit-exact and covered by tests.

use super::config::{DistributedConfig, DistributedError, ExecutionMode};
use dmt_data::{DatasetSchema, FeatureBlock};
use dmt_models::{ModelArch, ModelHyperparams};
use std::path::Path;

/// Magic + version prefix of the binary snapshot format.
const MAGIC: &[u8; 8] = b"DMTSNAP1";

/// One sparse feature's full (unsharded) embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWeights {
    /// Global sparse-feature id.
    pub feature: usize,
    /// Logical row count (the feature's cardinality).
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Row-major `[rows, dim]` weights.
    pub data: Vec<f32>,
}

/// A frozen, servable snapshot of a trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The deployment that trained the model; serving replays the same flow
    /// (global sharded lookup for the baseline, SPTT for DMT).
    pub mode: ExecutionMode,
    /// Dataset schema the model was trained against.
    pub schema: DatasetSchema,
    /// Interaction architecture of the dense stack.
    pub arch: ModelArch,
    /// Dense hyper-parameters (geometry only; weights are in `dense_params`).
    pub hyper: ModelHyperparams,
    /// Tower-module output feature dimension `D` (DMT mode).
    pub tower_output_dim: usize,
    /// Tower-module ensemble parameter `c`.
    pub tower_ensemble_c: usize,
    /// Tower-module ensemble parameter `p`.
    pub tower_ensemble_p: usize,
    /// Training seed (fixes the constructor geometry the weights load into).
    pub seed: u64,
    /// Number of towers the model was trained with (0 for the baseline).
    pub num_towers: usize,
    /// Flat dense-stack weights, in parameter-visitation order.
    pub dense_params: Vec<f32>,
    /// Flat tower-module weights, one buffer per tower (empty for the baseline).
    pub tower_params: Vec<Vec<f32>>,
    /// Full embedding tables, one per sparse feature, ascending by feature id.
    pub tables: Vec<TableWeights>,
}

/// Errors reading or writing a snapshot file.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The byte stream is not a valid snapshot.
    Corrupt(
        /// What was wrong.
        String,
    ),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(reason) => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(value: std::io::Error) -> Self {
        SnapshotError::Io(value)
    }
}

impl From<SnapshotError> for DistributedError {
    fn from(value: SnapshotError) -> Self {
        DistributedError::Config {
            reason: value.to_string(),
        }
    }
}

impl ModelSnapshot {
    /// The table of `feature`, if the snapshot holds it.
    #[must_use]
    pub fn table(&self, feature: usize) -> Option<&TableWeights> {
        self.tables.iter().find(|t| t.feature == feature)
    }

    /// Total embedding rows across all tables.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Total `f32` parameters in the snapshot (dense + towers + tables).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.dense_params.len()
            + self.tower_params.iter().map(Vec::len).sum::<usize>()
            + self.tables.iter().map(|t| t.data.len()).sum::<usize>()
    }

    /// Serializes the snapshot to its binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(match self.mode {
            ExecutionMode::Baseline => 0,
            ExecutionMode::Dmt => 1,
        });
        out.push(match self.arch {
            ModelArch::Dlrm => 0,
            ModelArch::Dcn => 1,
        });
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.tower_output_dim as u64);
        put_u64(&mut out, self.tower_ensemble_c as u64);
        put_u64(&mut out, self.tower_ensemble_p as u64);
        put_u64(&mut out, self.num_towers as u64);
        // Schema.
        put_u64(&mut out, self.schema.num_dense as u64);
        put_u64(&mut out, self.schema.num_sparse() as u64);
        for f in 0..self.schema.num_sparse() {
            put_u64(&mut out, self.schema.sparse_cardinalities[f] as u64);
            out.push(match self.schema.blocks[f] {
                FeatureBlock::User => 0,
                FeatureBlock::Item => 1,
                FeatureBlock::Context => 2,
            });
            put_u64(&mut out, self.schema.pooling_factors[f] as u64);
        }
        // Hyper-parameters.
        put_u64(&mut out, self.hyper.embedding_dim as u64);
        put_u64_list(&mut out, &self.hyper.bottom_mlp_hidden);
        put_u64_list(&mut out, &self.hyper.over_mlp_hidden);
        put_u64(&mut out, self.hyper.cross_layers as u64);
        // Weights.
        put_f32_list(&mut out, &self.dense_params);
        put_u64(&mut out, self.tower_params.len() as u64);
        for tower in &self.tower_params {
            put_f32_list(&mut out, tower);
        }
        put_u64(&mut out, self.tables.len() as u64);
        for table in &self.tables {
            put_u64(&mut out, table.feature as u64);
            put_u64(&mut out, table.rows as u64);
            put_u64(&mut out, table.dim as u64);
            put_f32_raw(&mut out, &table.data);
        }
        out
    }

    /// Deserializes a snapshot from its binary format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] if the stream is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut c = Cursor { bytes, pos: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        let mode = match c.u8()? {
            0 => ExecutionMode::Baseline,
            1 => ExecutionMode::Dmt,
            m => return Err(SnapshotError::Corrupt(format!("unknown mode {m}"))),
        };
        let arch = match c.u8()? {
            0 => ModelArch::Dlrm,
            1 => ModelArch::Dcn,
            a => return Err(SnapshotError::Corrupt(format!("unknown arch {a}"))),
        };
        let seed = c.u64()?;
        let tower_output_dim = c.usize()?;
        let tower_ensemble_c = c.usize()?;
        let tower_ensemble_p = c.usize()?;
        let num_towers = c.usize()?;
        let num_dense = c.usize()?;
        // Counts are untrusted: cap every pre-allocation by what the remaining
        // bytes could possibly encode, so a corrupt length field yields
        // `Corrupt` instead of an allocator abort.
        let num_sparse = c.count(17)?; // cardinality u64 + block u8 + pooling u64
        let mut cardinalities = Vec::with_capacity(num_sparse);
        let mut blocks = Vec::with_capacity(num_sparse);
        let mut pooling = Vec::with_capacity(num_sparse);
        for _ in 0..num_sparse {
            let cardinality = c.usize()?;
            blocks.push(match c.u8()? {
                0 => FeatureBlock::User,
                1 => FeatureBlock::Item,
                2 => FeatureBlock::Context,
                b => return Err(SnapshotError::Corrupt(format!("unknown block {b}"))),
            });
            let pool = c.usize()?;
            if cardinality == 0 || pool == 0 {
                return Err(SnapshotError::Corrupt(
                    "zero cardinality or pooling factor".into(),
                ));
            }
            cardinalities.push(cardinality);
            pooling.push(pool);
        }
        let schema = DatasetSchema::new(num_dense, cardinalities, blocks, pooling);
        let hyper = ModelHyperparams {
            embedding_dim: c.usize()?,
            bottom_mlp_hidden: c.usize_list()?,
            over_mlp_hidden: c.usize_list()?,
            cross_layers: c.usize()?,
        };
        let dense_params = c.f32_list()?;
        let towers = c.count(8)?; // at least a u64 length per tower
        let mut tower_params = Vec::with_capacity(towers);
        for _ in 0..towers {
            tower_params.push(c.f32_list()?);
        }
        let table_count = c.count(24)?; // feature + rows + dim u64s per table
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let feature = c.usize()?;
            let rows = c.usize()?;
            let dim = c.usize()?;
            let data = c.f32_raw(rows.saturating_mul(dim))?;
            tables.push(TableWeights {
                feature,
                rows,
                dim,
                data,
            });
        }
        if c.pos != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes",
                bytes.len() - c.pos
            )));
        }
        Ok(Self {
            mode,
            schema,
            arch,
            hyper,
            tower_output_dim,
            tower_ensemble_c,
            tower_ensemble_p,
            seed,
            num_towers,
            dense_params,
            tower_params,
            tables,
        })
    }

    /// Writes the snapshot to `path` in its binary format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on filesystem failure or a malformed file.
    pub fn read_from<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_list(out: &mut Vec<u8>, values: &[usize]) {
    put_u64(out, values.len() as u64);
    for &v in values {
        put_u64(out, v as u64);
    }
}

fn put_f32_raw(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_f32_list(out: &mut Vec<u8>, values: &[f32]) {
    put_u64(out, values.len() as u64);
    put_f32_raw(out, values);
}

/// Minimal checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Corrupt("unexpected end of stream".into()));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let raw: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(u64::from_le_bytes(raw))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("length exceeds usize".into()))
    }

    /// Reads an element count whose elements occupy at least `min_bytes_each`,
    /// rejecting counts the remaining stream cannot possibly hold — untrusted
    /// counts must fail as `Corrupt` *before* any proportional allocation.
    fn count(&mut self, min_bytes_each: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > (self.bytes.len() - self.pos) / min_bytes_each {
            return Err(SnapshotError::Corrupt(format!(
                "count {n} exceeds the remaining stream"
            )));
        }
        Ok(n)
    }

    fn usize_list(&mut self) -> Result<Vec<usize>, SnapshotError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn f32_raw(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| SnapshotError::Corrupt("f32 buffer length overflows".into()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunks of 4")))
            .collect())
    }

    fn f32_list(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.usize()?;
        self.f32_raw(n)
    }
}

/// One rank's contribution to a snapshot, produced after the final optimizer
/// step (all dense replicas are identical by then, so only designated ranks
/// contribute the replicated modules).
pub(crate) struct RankExport {
    /// Flat dense-stack weights; `Some` on global rank 0 only.
    pub dense_params: Option<Vec<f32>>,
    /// `(tower index, flat tower-module weights)`; `Some` on each host's slot-0
    /// rank in DMT mode.
    pub tower: Option<(usize, Vec<f32>)>,
    /// This rank's table shards as `(feature, first_global_row, local rows)`.
    pub shards: Vec<(usize, usize, Vec<f32>)>,
}

/// Assembles rank exports into one full snapshot, reassembling each feature's
/// table from its shards.
pub(crate) fn assemble(
    mode: ExecutionMode,
    config: &DistributedConfig,
    exports: Vec<RankExport>,
) -> Result<ModelSnapshot, DistributedError> {
    let schema = &config.schema;
    let dim = config.hyper.embedding_dim;
    let mut tables: Vec<TableWeights> = (0..schema.num_sparse())
        .map(|f| TableWeights {
            feature: f,
            rows: schema.sparse_cardinalities[f],
            dim,
            data: vec![0.0; schema.sparse_cardinalities[f] * dim],
        })
        .collect();
    let mut filled = vec![0usize; schema.num_sparse()];
    let mut dense_params: Option<Vec<f32>> = None;
    let num_towers = match mode {
        ExecutionMode::Baseline => 0,
        ExecutionMode::Dmt => config.num_towers(),
    };
    let mut tower_params: Vec<Option<Vec<f32>>> = vec![None; num_towers];
    for export in exports {
        if let Some(dense) = export.dense_params {
            dense_params = Some(dense);
        }
        if let Some((tower, params)) = export.tower {
            tower_params[tower] = Some(params);
        }
        for (feature, row_start, data) in export.shards {
            let table = &mut tables[feature];
            let start = row_start * dim;
            table.data[start..start + data.len()].copy_from_slice(&data);
            filled[feature] += data.len();
        }
    }
    for (f, table) in tables.iter().enumerate() {
        if filled[f] != table.data.len() {
            return Err(DistributedError::Config {
                reason: format!(
                    "table {f}: shards covered {} of {} scalars",
                    filled[f],
                    table.data.len()
                ),
            });
        }
    }
    Ok(ModelSnapshot {
        mode,
        schema: schema.clone(),
        arch: config.arch,
        hyper: config.hyper.clone(),
        tower_output_dim: config.tower_output_dim,
        tower_ensemble_c: config.tower_ensemble_c,
        tower_ensemble_p: config.tower_ensemble_p,
        seed: config.seed,
        num_towers,
        dense_params: dense_params.ok_or_else(|| DistributedError::Config {
            reason: "no rank exported the dense stack".into(),
        })?,
        tower_params: tower_params
            .into_iter()
            .enumerate()
            .map(|(t, params)| {
                params.ok_or_else(|| DistributedError::Config {
                    reason: format!("no rank exported tower {t}"),
                })
            })
            .collect::<Result<_, _>>()?,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> ModelSnapshot {
        ModelSnapshot {
            mode: ExecutionMode::Dmt,
            schema: DatasetSchema::criteo_like_small(),
            arch: ModelArch::Dlrm,
            hyper: ModelHyperparams::tiny(),
            tower_output_dim: 16,
            tower_ensemble_c: 0,
            tower_ensemble_p: 1,
            seed: 7,
            num_towers: 2,
            dense_params: vec![0.25, -1.5, f32::MIN_POSITIVE, 3.75],
            tower_params: vec![vec![1.0, 2.0], vec![-0.125]],
            tables: vec![
                TableWeights {
                    feature: 0,
                    rows: 2,
                    dim: 3,
                    data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                },
                TableWeights {
                    feature: 1,
                    rows: 1,
                    dim: 3,
                    data: vec![-1.0, 0.0, 1.0],
                },
            ],
        }
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let snapshot = tiny_snapshot();
        let bytes = snapshot.to_bytes();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot, restored);
    }

    #[test]
    fn file_round_trip() {
        let snapshot = tiny_snapshot();
        let dir = std::env::temp_dir().join("dmt_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dmtsnap");
        snapshot.write_to(&path).unwrap();
        let restored = ModelSnapshot::read_from(&path).unwrap();
        assert_eq!(snapshot, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(matches!(
            ModelSnapshot::from_bytes(b"not a snapshot at all"),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut bytes = tiny_snapshot().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(ModelSnapshot::from_bytes(&bytes).is_err());
        bytes.extend_from_slice(&[0; 64]);
        assert!(ModelSnapshot::from_bytes(&bytes).is_err());
    }

    #[test]
    fn huge_length_fields_fail_cleanly() {
        // Corrupt the num_sparse count (offset 58: magic 8 + mode/arch 2 + seed
        // + 4 geometry u64s + num_dense u64) to u64::MAX: the reader must
        // return `Corrupt` without attempting a proportional allocation.
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[58..66].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
        // Every possible truncation point errors rather than panicking.
        let bytes = tiny_snapshot().to_bytes();
        for len in 0..bytes.len() {
            assert!(ModelSnapshot::from_bytes(&bytes[..len]).is_err(), "{len}");
        }
    }

    #[test]
    fn accessors_report_sizes() {
        let s = tiny_snapshot();
        assert_eq!(s.total_rows(), 3);
        assert_eq!(s.parameter_count(), 4 + 3 + 9);
        assert_eq!(s.table(1).unwrap().rows, 1);
        assert!(s.table(9).is_none());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let converted: DistributedError = e.into();
        assert!(converted.to_string().contains("bad magic"));
    }
}
