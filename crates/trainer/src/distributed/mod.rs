//! Real thread-per-rank distributed training — the executable counterpart of
//! [`crate::simulation`].
//!
//! Where the simulator *predicts* iteration latency from an α–β cost model, this
//! module *runs* the two deployments for real on a [`dmt_comm::SharedMemoryComm`]
//! world mapped onto a [`dmt_topology::ClusterTopology`]:
//!
//! * **Baseline (hybrid parallel)** ([`baseline`]) — every embedding table is
//!   row-sharded across all `W` ranks; each iteration does a global index AlltoAll,
//!   a global row-fetch AlltoAll, local pooling, a replicated dense
//!   forward/backward, a global gradient AlltoAll back to the row owners and a
//!   global dense AllReduce.
//! * **DMT** ([`dmt`]) — features are partitioned into one tower per host. Each
//!   rank first sends its samples' indices to the same-slot rank of the owning
//!   tower's host (a *peer* AlltoAll, world = `num_hosts`), looks rows up from
//!   tables sharded across its *own host's* ranks (an *intra-host* AlltoAll, world
//!   = `gpus_per_host`), runs the tower module over the combined tower batch, and
//!   returns the *compressed* tower outputs through a second peer AlltoAll.
//!   Tower-module gradients synchronize intra-host; only the shared dense stack
//!   crosses the global world.
//!
//! Both deployments are **lowerings onto one iteration-graph IR**
//! ([`graph`]): each emits a typed DAG of ops ([`graph::OpKind`] — index
//! exchanges, row exchanges, tower compute, gradient synchronization,
//! quantize/dequantize codec steps) and a single scheduler — the per-rank
//! execution driver, list-scheduled via [`pipeline::StageGraph`] — executes any
//! graph under either schedule ([`config::ScheduleMode`]):
//!
//! * **Sync** — one micro-batch, every `claim` node directly after its `issue`
//!   node: blocking semantics, kept bit-identical (losses, byte counts) to the
//!   original hand-written engine as the semantic reference.
//! * **Pipelined** — the iteration is split into micro-batches and the lowering
//!   stretches each issue→wait distance over nonblocking collectives
//!   ([`dmt_comm::PendingOp`]): micro-batch `b+1`'s exchanges ride the comm helper
//!   threads while micro-batch `b` computes, and the gradient AllReduces overlap
//!   the embedding backward. The same bytes move; less of their time is exposed.
//!
//! **Wire quantization is real here**: at
//! [`config::DistributedConfig::wire_precision`] below FP32, the lowerings
//! insert `Quantize`/`Dequantize` nodes around every `f32` exchange and the
//! AllReduces run as quantized-wire collectives ([`dmt_comm::codec`]), so the
//! backend's byte accounting — and its fabric pacing — observes the reduced
//! traffic (~2× at fp16 on the quantizable segments), while index exchanges
//! stay at native `u64` width.
//!
//! Both schedules produce a *measured* [`measure::MeasuredRun`] whose segments
//! carry real wall-clock durations, *measured* per-op exposure (blocked-wait
//! seconds against the op's issue/complete timestamps) and exact per-link-class
//! byte counts, so a run can be laid side by side with the analytical simulator
//! ([`calibrate::predicted_timeline`] / [`calibrate::calibrate`]) — the built-in
//! check that the measured engine and the overlap-aware cost model agree on the
//! paper's core claim: DMT moves its bytes off the scale-out links *and* hides a
//! larger share of what remains.
//!
//! Determinism: collectives fold in rank order (see `dmt-comm`), every model
//! replica is seeded identically, per-rank work is single-threaded, and the
//! pipelined stage graph is a fixed list schedule, so two runs of the same
//! configuration produce bit-identical losses in either schedule.

pub mod baseline;
pub mod calibrate;
pub mod config;
pub mod dmt;
mod executor;
pub mod export;
pub mod graph;
pub mod measure;
pub mod model;
pub mod pipeline;

pub use calibrate::{calibrate, predicted_timeline, CalibrationReport};
pub use config::{DistributedConfig, DistributedError, ExecutionMode, ScheduleMode};
pub use export::{ModelSnapshot, SnapshotError, TableWeights};
pub use graph::{IterationGraph, NodeMeta, OpKind, SpecNode};
pub use measure::{CommScope, MeasuredRun, MeasuredSegment};
pub use pipeline::{StageGraph, StageId};

use dmt_comm::{SharedMemoryBackend, SharedMemoryComm};
use dmt_core::naive_partition;
use dmt_metrics::trace;
use dmt_topology::ProcessGroup;
use measure::{aggregate, RankOutcome};

/// Communicator handles one rank carries into its thread.
pub(crate) struct RankComms {
    pub global: SharedMemoryBackend,
    pub intra: SharedMemoryBackend,
    pub peer: SharedMemoryBackend,
}

/// Runs the hybrid-parallel baseline for real and returns its measured profile.
///
/// # Errors
///
/// Returns a [`DistributedError`] if the configuration is invalid or a rank fails.
pub fn run_baseline(config: &DistributedConfig) -> Result<MeasuredRun, DistributedError> {
    run_mode(config, ExecutionMode::Baseline)
}

/// Runs DMT (one tower per host) for real and returns its measured profile.
///
/// # Errors
///
/// Returns a [`DistributedError`] if the configuration is invalid or a rank fails.
pub fn run_dmt(config: &DistributedConfig) -> Result<MeasuredRun, DistributedError> {
    run_mode(config, ExecutionMode::Dmt)
}

/// Runs `mode` for real and additionally exports a frozen [`ModelSnapshot`] of
/// the trained weights (dense stack, tower modules, full embedding tables
/// reassembled from every rank's shards) — the artifact `dmt-serve` loads to
/// answer queries.
///
/// # Errors
///
/// Returns a [`DistributedError`] if the configuration is invalid or a rank fails.
pub fn run_with_snapshot(
    config: &DistributedConfig,
    mode: ExecutionMode,
) -> Result<(MeasuredRun, ModelSnapshot), DistributedError> {
    let (run, snapshot) = run_mode_inner(config, mode, true)?;
    Ok((run, snapshot.expect("snapshot requested")))
}

/// Builds the per-rank communicator bundles for `config.cluster`.
fn build_comms(config: &DistributedConfig) -> Vec<RankComms> {
    let cluster = &config.cluster;
    let fabric = config.fabric;
    let global = SharedMemoryComm::for_group(cluster, &ProcessGroup::global(cluster), fabric);
    let mut intra: Vec<Option<SharedMemoryBackend>> =
        (0..cluster.world_size()).map(|_| None).collect();
    for group in ProcessGroup::intra_host_groups(cluster) {
        let handles = SharedMemoryComm::for_group(cluster, &group, fabric);
        for (rank, handle) in group.ranks().iter().zip(handles) {
            intra[rank.0] = Some(handle);
        }
    }
    let mut peer: Vec<Option<SharedMemoryBackend>> =
        (0..cluster.world_size()).map(|_| None).collect();
    for group in ProcessGroup::peer_groups(cluster) {
        let handles = SharedMemoryComm::for_group(cluster, &group, fabric);
        for (rank, handle) in group.ranks().iter().zip(handles) {
            peer[rank.0] = Some(handle);
        }
    }
    let comms: Vec<RankComms> = global
        .into_iter()
        .zip(intra)
        .zip(peer)
        .map(|((global, intra), peer)| RankComms {
            global,
            intra: intra.expect("intra-host groups cover every rank"),
            peer: peer.expect("peer groups cover every rank"),
        })
        .collect();
    // Every backend gets its own trace lane (tid) so overlapping transfers on
    // a rank's three worlds never share a timeline row — the Perfetto view and
    // the nest-or-disjoint validator both rely on per-backend sequential lanes.
    for (rank, comm) in comms.iter().enumerate() {
        let scopes: [(&SharedMemoryBackend, &str, &str, u64); 3] = [
            (&comm.global, "Global", "global", 0),
            (&comm.intra, "IntraHost", "intra-host", 1),
            (&comm.peer, "Peer", "peer", 2),
        ];
        for (backend, scope, lane, slot) in scopes {
            backend.set_trace_target(
                dmt_comm::TraceTarget {
                    track: trace::Track {
                        pid: trace::deployment::COMM,
                        tid: (rank as u64) * 4 + slot,
                    },
                    rank: rank as u64,
                    scope,
                },
                &format!("rank{rank} {lane}"),
            );
        }
    }
    comms
}

fn run_mode(
    config: &DistributedConfig,
    mode: ExecutionMode,
) -> Result<MeasuredRun, DistributedError> {
    run_mode_inner(config, mode, false).map(|(run, _)| run)
}

type RankResult = Result<(RankOutcome, Option<export::RankExport>), DistributedError>;

fn run_mode_inner(
    config: &DistributedConfig,
    mode: ExecutionMode,
    want_snapshot: bool,
) -> Result<(MeasuredRun, Option<ModelSnapshot>), DistributedError> {
    if config.local_batch == 0 || config.iterations == 0 {
        return Err(DistributedError::Config {
            reason: "local_batch and iterations must be positive".into(),
        });
    }
    if mode == ExecutionMode::Dmt {
        // Validate the partition up front so every rank either runs or none does.
        let _ = naive_partition(config.schema.num_sparse(), config.num_towers())?;
    }
    let comms = build_comms(config);
    let world = comms.len();
    let mut outcomes: Vec<Option<RankResult>> = (0..world).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(world);
        for (rank, comm) in comms.into_iter().enumerate() {
            let config = config.clone();
            joins.push(scope.spawn(move || {
                let mut comm = comm;
                // Name this rank's timeline lane and remember it in TLS so the
                // executor's iteration/node spans land on it (cheap no-op setup
                // when tracing never turns on).
                trace::register_thread(
                    "trainer",
                    &format!("rank{rank}"),
                    trace::Track {
                        pid: trace::deployment::TRAINER,
                        tid: rank as u64,
                    },
                );
                let outcome = match mode {
                    ExecutionMode::Baseline => {
                        baseline::baseline_rank(&config, rank, &mut comm, want_snapshot)
                    }
                    ExecutionMode::Dmt => dmt::dmt_rank(&config, rank, &mut comm, want_snapshot),
                };
                if outcome.is_err() {
                    // Peers may be blocked in a collective waiting for this rank;
                    // fail them fast instead of hanging the run (panics poison the
                    // worlds automatically via Drop).
                    comm.global.abort();
                    comm.intra.abort();
                    comm.peer.abort();
                }
                outcome
            }));
        }
        for (rank, (slot, join)) in outcomes.iter_mut().zip(joins).enumerate() {
            *slot = Some(join.join().unwrap_or_else(|panic| {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "rank thread panicked".into());
                Err(DistributedError::Rank { rank, message })
            }));
        }
    });
    let outcomes: Vec<RankResult> = outcomes
        .into_iter()
        .map(|o| o.expect("every rank joined"))
        .collect();
    // Prefer the root cause over the "aborted" cascades it triggers on peer ranks.
    if outcomes.iter().any(Result::is_err) {
        let is_cascade = |e: &DistributedError| {
            matches!(e, DistributedError::Rank { message, .. } if message.contains("aborted"))
                || matches!(e, DistributedError::Comm(dmt_comm::CommError::Aborted))
        };
        let mut errors: Vec<DistributedError> =
            outcomes.into_iter().filter_map(Result::err).collect();
        let root = errors
            .iter()
            .position(|e| !is_cascade(e))
            .unwrap_or_default();
        return Err(errors.swap_remove(root));
    }
    let mut exports = Vec::with_capacity(world);
    let outcomes: Vec<RankOutcome> = outcomes
        .into_iter()
        .map(|o| {
            let (outcome, export) = o.expect("errors handled above");
            exports.extend(export);
            outcome
        })
        .collect();
    let snapshot = if want_snapshot {
        Some(export::assemble(mode, config, exports)?)
    } else {
        None
    };
    Ok((aggregate(mode, config, outcomes), snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_comm::FabricProfile;
    use dmt_models::ModelArch;
    use dmt_topology::{ClusterTopology, HardwareGeneration};

    /// The acceptance-scale cluster: 8 ranks as 2 hosts x 4 GPUs.
    fn cluster_2x4() -> ClusterTopology {
        ClusterTopology::new(HardwareGeneration::A100, 2, 4).unwrap()
    }

    fn quick(arch: ModelArch) -> DistributedConfig {
        DistributedConfig::quick(cluster_2x4(), arch)
    }

    #[test]
    fn baseline_8_ranks_trains_and_learns() {
        let cfg = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128);
        let run = run_baseline(&cfg).unwrap();
        assert_eq!(run.world_size, 8);
        assert_eq!(run.losses.len(), 10);
        let early: f64 = run.losses[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = run.losses[7..].iter().sum::<f64>() / 3.0;
        assert!(late < early, "loss should fall: {early} -> {late}");
    }

    #[test]
    fn dmt_8_ranks_trains_and_learns() {
        let cfg = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128);
        let run = run_dmt(&cfg).unwrap();
        assert_eq!(run.world_size, 8);
        let early: f64 = run.losses[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = run.losses[7..].iter().sum::<f64>() / 3.0;
        assert!(late < early, "loss should fall: {early} -> {late}");
    }

    #[test]
    fn dcn_arch_runs_in_both_modes() {
        let cfg = quick(ModelArch::Dcn).with_iterations(2);
        assert!(run_baseline(&cfg)
            .unwrap()
            .losses
            .iter()
            .all(|l| l.is_finite()));
        assert!(run_dmt(&cfg).unwrap().losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn runs_are_bit_deterministic() {
        // Thread scheduling must not leak into the numerics: two runs of the same
        // configuration produce identical loss trajectories — in both schedules.
        for schedule in [ScheduleMode::Sync, ScheduleMode::Pipelined] {
            let cfg = quick(ModelArch::Dlrm)
                .with_iterations(3)
                .with_schedule(schedule);
            for run_fn in [run_baseline, run_dmt] {
                let a = run_fn(&cfg).unwrap();
                let b = run_fn(&cfg).unwrap();
                assert_eq!(a.losses, b.losses, "{schedule:?}");
                for (sa, sb) in a.segments.iter().zip(&b.segments) {
                    assert_eq!(sa.payload_bytes, sb.payload_bytes, "{}", sa.label);
                    assert_eq!(sa.cross_host_bytes, sb.cross_host_bytes, "{}", sa.label);
                }
            }
        }
    }

    /// The regression fixture for the sync schedule: loss bit patterns and
    /// per-segment byte counts captured from the pre-refactor engine (commit
    /// 8535062) on the quick 2x4 DLRM config with 3 iterations. The sync schedule
    /// must reproduce them bit-for-bit — it *is* the old engine.
    ///
    /// Loss bits repinned once when the dense GEMM kernels moved to FMA
    /// (fused multiply-add contracts `a*b+c` into one rounding, so every
    /// matmul partial sum shifts by ≤1 ulp); the communication byte counts
    /// are index-derived and did not move.
    #[test]
    fn sync_schedule_is_bit_identical_to_the_prerefactor_engine() {
        let cfg = quick(ModelArch::Dlrm).with_iterations(3);
        assert_eq!(cfg.schedule, ScheduleMode::Sync);

        let baseline = run_baseline(&cfg).unwrap();
        let golden_losses: [u64; 3] = [0x3fe53a78959a3fd6, 0x3fe4ca2cd3da8d66, 0x3fe4b56a7174eaad];
        for (loss, golden) in baseline.losses.iter().zip(golden_losses) {
            assert_eq!(loss.to_bits(), golden, "baseline loss drifted");
        }
        let golden_bytes: &[(&str, u64, u64, u64)] = &[
            ("dense + sparse compute", 0, 0, 0),
            ("feature distribution AlltoAll", 9120, 4545, 3399),
            ("embedding row fetch AlltoAll (fwd)", 72963, 36360, 27189),
            ("embedding gradient AlltoAll (bwd)", 72963, 36360, 27189),
            ("dense gradient AllReduce", 106_564, 46622, 139_865),
            ("optimizer + host overhead", 0, 0, 0),
        ];
        assert_eq!(baseline.segments.len(), golden_bytes.len());
        for (seg, (label, payload, cross, intra)) in baseline.segments.iter().zip(golden_bytes) {
            assert_eq!(seg.label, *label);
            assert_eq!(seg.payload_bytes, *payload, "{label}");
            assert_eq!(seg.cross_host_bytes, *cross, "{label}");
            assert_eq!(seg.intra_host_bytes, *intra, "{label}");
        }

        let dmt = run_dmt(&cfg).unwrap();
        let golden_losses: [u64; 3] = [0x3fe6975fdee66728, 0x3fe4d6c263dd62f0, 0x3fe549b11f57b8a7];
        for (loss, golden) in dmt.losses.iter().zip(golden_losses) {
            assert_eq!(loss.to_bits(), golden, "dmt loss drifted");
        }
        let golden_bytes: &[(&str, u64, u64, u64)] = &[
            ("dense + tower-module compute", 0, 0, 0),
            ("peer index distribution AlltoAll", 26624, 13312, 0),
            ("intra-host row fetch AlltoAll (fwd)", 73602, 0, 55503),
            ("peer tower-output AlltoAll (fwd)", 8192, 4096, 0),
            ("peer tower-grad AlltoAll (bwd)", 8192, 4096, 0),
            ("intra-host gradient AlltoAll (bwd)", 65424, 0, 49336),
            ("tower-module intra-host AllReduce", 13376, 0, 20064),
            ("dense gradient AllReduce", 17476, 7646, 22937),
            ("optimizer + host overhead", 0, 0, 0),
        ];
        assert_eq!(dmt.segments.len(), golden_bytes.len());
        for (seg, (label, payload, cross, intra)) in dmt.segments.iter().zip(golden_bytes) {
            assert_eq!(seg.label, *label);
            assert_eq!(seg.payload_bytes, *payload, "{label}");
            assert_eq!(seg.cross_host_bytes, *cross, "{label}");
            assert_eq!(seg.intra_host_bytes, *intra, "{label}");
        }
    }

    #[test]
    fn pipelined_schedule_trains_and_learns() {
        let cfg = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128)
            .with_schedule(ScheduleMode::Pipelined);
        for run_fn in [run_baseline, run_dmt] {
            let run = run_fn(&cfg).unwrap();
            assert_eq!(run.schedule, ScheduleMode::Pipelined);
            let early: f64 = run.losses[..3].iter().sum::<f64>() / 3.0;
            let late: f64 = run.losses[7..].iter().sum::<f64>() / 3.0;
            assert!(late < early, "loss should fall: {early} -> {late}");
        }
    }

    #[test]
    fn pipelined_moves_the_same_bytes_as_sync() {
        // Overlap hides time, not traffic: per-iteration byte totals match the
        // sync schedule exactly (the micro-batched exchanges partition the same
        // requests; only dedup *within* vs *across* micro-batches could differ,
        // and the synthetic batches keep that stable here).
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let pipelined = cfg.clone().with_schedule(ScheduleMode::Pipelined);
        for run_fn in [run_baseline, run_dmt] {
            let sync = run_fn(&cfg).unwrap();
            let pipe = run_fn(&pipelined).unwrap();
            // Cross-host totals stay in the same ballpark (micro-batch splitting
            // changes request dedup slightly) and the link-class *ordering* is
            // identical.
            let ratio = pipe.cross_host_bytes() as f64 / sync.cross_host_bytes().max(1) as f64;
            assert!((0.8..=1.25).contains(&ratio), "cross-host ratio {ratio}");
        }
    }

    #[test]
    fn pipelined_hides_communication_under_a_throttled_fabric() {
        // The tentpole claim, in miniature: with the fabric paced so transfers
        // take real time, the pipelined schedule must (a) finish iterations
        // faster than sync and (b) expose a smaller fraction of its comm — and
        // DMT must hide a larger fraction than the baseline (its three
        // independent worlds overlap each other, not just the compute).
        // The operating point is tuned for the CI box (a single CPU core, so
        // compute cannot overlap compute — only paced wire time overlaps): paced
        // comm comparable to or above the serialized compute for both
        // deployments. See `bench_overlap` for the gated version of this claim.
        let cluster = cluster_2x4();
        let fabric = FabricProfile::from_cluster(&cluster, 8_000.0);
        let sync_cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_iterations(5)
            .with_local_batch(384)
            .with_fabric(fabric);
        let pipe_cfg = sync_cfg.clone().with_schedule(ScheduleMode::Pipelined);

        let sync_base = run_baseline(&sync_cfg).unwrap();
        let pipe_base = run_baseline(&pipe_cfg).unwrap();
        let sync_dmt = run_dmt(&sync_cfg).unwrap();
        let pipe_dmt = run_dmt(&pipe_cfg).unwrap();

        // The wall-clock claim only holds where compute runs at release speed
        // (debug builds inflate compute ~20x, burying the paced wire time it is
        // supposed to hide); CI gates it in release via `bench_overlap`.
        #[cfg(not(debug_assertions))]
        {
            assert!(
                pipe_base.wall_s_per_iter < 0.95 * sync_base.wall_s_per_iter,
                "baseline: pipelined {:.1}ms !< sync {:.1}ms",
                pipe_base.wall_s_per_iter * 1e3,
                sync_base.wall_s_per_iter * 1e3
            );
            assert!(
                pipe_dmt.wall_s_per_iter < 0.97 * sync_dmt.wall_s_per_iter,
                "dmt: pipelined {:.1}ms !< sync {:.1}ms",
                pipe_dmt.wall_s_per_iter * 1e3,
                sync_dmt.wall_s_per_iter * 1e3
            );
            // The paper-aligned ordering: DMT's smaller, intra-host-biased
            // transfers ride three independent worlds and hide decisively more
            // than the baseline's single global stream can.
            assert!(
                pipe_dmt.hidden_comm_fraction() > pipe_base.hidden_comm_fraction() + 0.1,
                "dmt hides {:.0}% !> baseline {:.0}% + 10pt",
                pipe_dmt.hidden_comm_fraction() * 100.0,
                pipe_base.hidden_comm_fraction() * 100.0
            );
        }
        // Sync exposes (essentially) everything; pipelined hides a real share —
        // in any build profile.
        assert!(sync_base.hidden_comm_fraction() < 0.05);
        assert!(sync_dmt.hidden_comm_fraction() < 0.05);
        assert!(pipe_base.hidden_comm_fraction() > 0.08);
        assert!(
            pipe_dmt.hidden_comm_fraction() > 0.08,
            "dmt hides only {:.0}%",
            pipe_dmt.hidden_comm_fraction() * 100.0
        );
    }

    #[test]
    fn dmt_moves_fewer_cross_host_bytes() {
        // The deterministic half of the paper's claim: tower-wise disaggregation
        // pulls embedding bytes off the scale-out links.
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let baseline = run_baseline(&cfg).unwrap();
        let dmt = run_dmt(&cfg).unwrap();
        assert!(
            dmt.cross_host_bytes() < baseline.cross_host_bytes() / 2,
            "dmt {} vs baseline {}",
            dmt.cross_host_bytes(),
            baseline.cross_host_bytes()
        );
        // ... while the intra-host class picks up the lookup traffic.
        assert!(dmt.intra_host_bytes() > 0);
    }

    #[test]
    fn calibration_orders_dmt_below_baseline() {
        // The acceptance check: with the fabric paced to the modeled link
        // bandwidths, the *measured* exposed communication and total iteration time
        // order the two deployments the same way the analytical simulator predicts
        // (DMT < baseline, the paper's Figure 13).
        let cluster = cluster_2x4();
        // Slowed far enough that wire time dominates single-core scheduling noise.
        let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_iterations(3)
            .with_fabric(fabric);
        let report = calibrate(&cfg).unwrap();
        assert!(
            report.measured_ordering_matches_prediction(),
            "baseline comm {:.1}ms of {:.1}ms (pred {:.1}ms) vs dmt {:.1}ms of {:.1}ms (pred {:.1}ms)",
            CalibrationReport::comm_seconds(&report.baseline.breakdown()) * 1e3,
            report.baseline.breakdown().total_s() * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_baseline.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.dmt.breakdown()) * 1e3,
            report.dmt.breakdown().total_s() * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_dmt.breakdown()) * 1e3,
        );
        // DMT's measured exposed communication must be *well* below the baseline's,
        // not marginally: the peer exchanges carry compressed tower outputs.
        assert!(
            CalibrationReport::comm_seconds(&report.dmt.breakdown())
                < 0.7 * CalibrationReport::comm_seconds(&report.baseline.breakdown())
        );
    }

    #[test]
    fn calibration_holds_under_the_pipelined_schedule() {
        // The overlap-aware twin: re-costing the pipelined run's transfers with
        // the α–β model (and granting each the overlap window the schedule
        // achieved) must preserve the DMT-below-baseline orderings.
        let cluster = cluster_2x4();
        let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_iterations(3)
            .with_local_batch(128)
            .with_fabric(fabric)
            .with_schedule(ScheduleMode::Pipelined);
        let report = calibrate(&cfg).unwrap();
        assert!(
            report.measured_ordering_matches_prediction(),
            "measured dmt comm {:.1}ms vs baseline {:.1}ms; predicted dmt {:.1}ms vs baseline {:.1}ms",
            CalibrationReport::comm_seconds(&report.dmt.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.baseline.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_dmt.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_baseline.breakdown()) * 1e3,
        );
    }

    #[test]
    fn single_host_and_single_rank_worlds_run() {
        for (hosts, gpus) in [(1usize, 2usize), (1, 1), (2, 1)] {
            for schedule in [ScheduleMode::Sync, ScheduleMode::Pipelined] {
                let cluster = ClusterTopology::new(HardwareGeneration::A100, hosts, gpus).unwrap();
                let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
                    .with_iterations(2)
                    .with_schedule(schedule);
                let baseline = run_baseline(&cfg).unwrap();
                assert_eq!(baseline.world_size, hosts * gpus);
                let dmt = run_dmt(&cfg).unwrap();
                assert!(dmt.losses.iter().all(|l| l.is_finite()));
            }
        }
    }

    #[test]
    fn measured_segments_cover_the_expected_pipeline() {
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let dmt = run_dmt(&cfg).unwrap();
        let labels: Vec<&str> = dmt.segments.iter().map(|s| s.label.as_str()).collect();
        for expected in [
            "dense + tower-module compute",
            "peer index distribution AlltoAll",
            "intra-host row fetch AlltoAll (fwd)",
            "peer tower-output AlltoAll (fwd)",
            "peer tower-grad AlltoAll (bwd)",
            "intra-host gradient AlltoAll (bwd)",
            "tower-module intra-host AllReduce",
            "dense gradient AllReduce",
            "optimizer + host overhead",
        ] {
            assert!(labels.contains(&expected), "missing segment {expected}");
        }
        // The intra-host exchanges must carry no cross-host bytes.
        for seg in dmt
            .segments
            .iter()
            .filter(|s| s.scope == CommScope::IntraHost)
        {
            assert_eq!(seg.cross_host_bytes, 0, "{}", seg.label);
        }
        // Peer exchanges cross hosts only.
        for seg in dmt.segments.iter().filter(|s| s.scope == CommScope::Peer) {
            assert_eq!(seg.intra_host_bytes, 0, "{}", seg.label);
        }
    }

    #[test]
    fn predicted_timeline_mirrors_measured_segments() {
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let run = run_baseline(&cfg).unwrap();
        let predicted = predicted_timeline(&cfg, &run);
        assert_eq!(predicted.segments().len(), run.segments.len());
        for (p, m) in predicted.segments().iter().zip(&run.segments) {
            assert_eq!(p.label, m.label);
            assert!(p.time_s > 0.0 || m.time_s == 0.0);
        }
    }

    /// The measured segment sequence of a sync run must match the IR's declared
    /// spec exactly — labels, scopes and collectives derive from one source of
    /// truth instead of parallel bookkeeping.
    #[test]
    fn measured_segments_match_the_engine_spec() {
        use dmt_commsim::Quantization;
        for wire in [Quantization::Fp32, Quantization::Fp16] {
            let cfg = quick(ModelArch::Dlrm)
                .with_iterations(2)
                .with_wire_precision(wire);
            for (run, spec) in [
                (
                    run_baseline(&cfg).unwrap(),
                    graph::baseline_engine_spec(wire),
                ),
                (run_dmt(&cfg).unwrap(), graph::dmt_engine_spec(wire)),
            ] {
                assert_eq!(run.segments.len(), spec.len(), "{wire}");
                for (seg, node) in run.segments.iter().zip(&spec) {
                    assert_eq!(seg.label, node.label);
                    assert_eq!(seg.scope, node.scope);
                    assert_eq!(seg.op.is_some(), node.comm.is_some(), "{}", node.label);
                    assert_eq!(seg.kind, node.kind.segment_kind(), "{}", node.label);
                }
            }
        }
    }

    /// fp16 wire precision halves every quantizable segment's measured payload
    /// (to the codec's exact encoded size) and cuts the baseline's cross-host
    /// traffic ~2×; index exchanges are bit-for-bit unchanged.
    #[test]
    fn fp16_wire_precision_halves_quantizable_bytes() {
        use dmt_comm::codec::WireFormat;
        use dmt_commsim::Quantization;
        let fp32_cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let fp16_cfg = fp32_cfg.clone().with_wire_precision(Quantization::Fp16);
        for run_fn in [run_baseline, run_dmt] {
            let fp32 = run_fn(&fp32_cfg).unwrap();
            let fp16 = run_fn(&fp16_cfg).unwrap();
            assert_eq!(fp32.segments.len(), fp16.segments.len());
            for (a, b) in fp32.segments.iter().zip(&fp16.segments) {
                assert_eq!(a.label, b.label);
                match (a.label.as_str(), a.op) {
                    // Merged lookup round trip: its u64 index half is unchanged,
                    // its row half halves — strictly between 50% and 100%.
                    ("intra-host row fetch AlltoAll (fwd)", _) => {
                        assert!(
                            b.payload_bytes < a.payload_bytes
                                && b.payload_bytes > a.payload_bytes / 2,
                            "{}: fp32 {} -> fp16 {}",
                            a.label,
                            a.payload_bytes,
                            b.payload_bytes
                        );
                    }
                    // Index exchanges ride native width: bit-for-bit unchanged.
                    (_, Some(dmt_comm::CommOp::AllToAllIndices)) => {
                        assert_eq!(a.payload_bytes, b.payload_bytes, "{}", a.label);
                    }
                    // Pure f32 payloads: exactly the codec's encoded size, modulo
                    // per-destination padding (≤ 2 bytes per shard).
                    (_, Some(dmt_comm::CommOp::AllToAll | dmt_comm::CommOp::AllReduce)) => {
                        // Slack: per-destination padding (≤ 2 bytes per shard)
                        // above, per-rank mean rounding below.
                        let half = WireFormat::Fp16.encoded_bytes((a.payload_bytes / 4) as usize);
                        assert!(
                            b.payload_bytes + 8 >= half && b.payload_bytes <= half + 64,
                            "{}: fp32 {} -> fp16 {} (expected ~{half})",
                            a.label,
                            a.payload_bytes,
                            b.payload_bytes
                        );
                    }
                    _ => {}
                }
            }
            // The deployment-level claim: quantizable traffic halves.
            let quantizable = |run: &MeasuredRun| -> u64 {
                run.segments
                    .iter()
                    .filter(|s| {
                        matches!(
                            s.op,
                            Some(dmt_comm::CommOp::AllToAll | dmt_comm::CommOp::AllReduce)
                        )
                    })
                    .map(|s| s.payload_bytes)
                    .sum()
            };
            let ratio = quantizable(&fp32) as f64 / quantizable(&fp16).max(1) as f64;
            assert!(
                (1.5..=2.1).contains(&ratio),
                "quantizable payload ratio {ratio}"
            );
        }
        // Baseline cross-host bytes: ~2× reduction (its cross-host traffic is
        // dominated by the quantizable row/gradient exchanges + AllReduce).
        let fp32 = run_baseline(&fp32_cfg).unwrap();
        let fp16 = run_baseline(&fp16_cfg).unwrap();
        let ratio = fp32.cross_host_bytes() as f64 / fp16.cross_host_bytes().max(1) as f64;
        assert!(
            ratio > 1.8,
            "baseline cross-host reduction only {ratio:.2}x"
        );
        // DMT's cross-host mix is index-heavy (the peer index distribution rides
        // native u64 width), so its reduction is real but smaller.
        let fp32 = run_dmt(&fp32_cfg).unwrap();
        let fp16 = run_dmt(&fp16_cfg).unwrap();
        let ratio = fp32.cross_host_bytes() as f64 / fp16.cross_host_bytes().max(1) as f64;
        assert!(ratio > 1.15, "dmt cross-host reduction only {ratio:.2}x");
    }

    /// Quantized runs stay bit-deterministic and converge: the logloss/AUC
    /// deltas against the FP32 reference are reported and bounded.
    #[test]
    fn fp16_and_int8_quality_delta_is_bounded() {
        use dmt_commsim::Quantization;
        let base = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128);
        for run_fn in [run_baseline, run_dmt] {
            let fp32 = run_fn(&base).unwrap();
            let fp32_auc = fp32
                .mean_auc()
                .expect("128-sample batches hold both classes");
            for wire in [Quantization::Fp16, Quantization::Int8] {
                let cfg = base.clone().with_wire_precision(wire);
                let quant = run_fn(&cfg).unwrap();
                // Deterministic: two quantized runs produce identical losses.
                assert_eq!(quant.losses, run_fn(&cfg).unwrap().losses, "{wire}");
                // Still learns...
                let early: f64 = quant.losses[..3].iter().sum::<f64>() / 3.0;
                let late: f64 = quant.losses[7..].iter().sum::<f64>() / 3.0;
                assert!(late < early, "{wire}: loss should fall: {early} -> {late}");
                // ...and lands near the FP32 trajectory.
                let loss_delta = (quant.mean_loss() - fp32.mean_loss()).abs();
                assert!(
                    loss_delta < 0.02,
                    "{wire}: logloss delta {loss_delta:.4} vs fp32"
                );
                let auc_delta = (quant.mean_auc().unwrap() - fp32_auc).abs();
                assert!(auc_delta < 0.02, "{wire}: AUC delta {auc_delta:.4} vs fp32");
            }
        }
    }

    /// The acceptance check at reduced precision: with the fabric paced, the
    /// measured engine and the analytical twin still agree on the paper's
    /// orderings at fp16 — and the fp16 run moves measurably fewer cross-host
    /// bytes than its fp32 twin while exposing less communication time.
    #[test]
    fn calibration_holds_at_fp16_wire_precision() {
        use dmt_commsim::Quantization;
        let cluster = cluster_2x4();
        let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
        let fp32_cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_iterations(3)
            .with_fabric(fabric);
        let fp16_cfg = fp32_cfg.clone().with_wire_precision(Quantization::Fp16);
        let report = calibrate(&fp16_cfg).unwrap();
        assert!(
            report.measured_ordering_matches_prediction(),
            "fp16: measured dmt comm {:.1}ms vs baseline {:.1}ms",
            CalibrationReport::comm_seconds(&report.dmt.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.baseline.breakdown()) * 1e3,
        );
        // Fewer bytes on a paced fabric = less exposed communication time, and
        // the analytical twin (which re-costs the measured encoded payloads)
        // agrees on the direction.
        let fp32_report = calibrate(&fp32_cfg).unwrap();
        for (fp16_run, fp32_run, fp16_pred, fp32_pred) in [
            (
                &report.baseline,
                &fp32_report.baseline,
                &report.predicted_baseline,
                &fp32_report.predicted_baseline,
            ),
            (
                &report.dmt,
                &fp32_report.dmt,
                &report.predicted_dmt,
                &fp32_report.predicted_dmt,
            ),
        ] {
            assert!(fp16_run.cross_host_bytes() < fp32_run.cross_host_bytes());
            assert!(
                CalibrationReport::comm_seconds(&fp16_run.breakdown())
                    < CalibrationReport::comm_seconds(&fp32_run.breakdown()),
                "measured fp16 comm should shrink"
            );
            assert!(
                CalibrationReport::comm_seconds(&fp16_pred.breakdown())
                    < CalibrationReport::comm_seconds(&fp32_pred.breakdown()),
                "predicted fp16 comm should shrink"
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = quick(ModelArch::Dlrm);
        cfg.local_batch = 0;
        assert!(matches!(
            run_baseline(&cfg),
            Err(DistributedError::Config { .. })
        ));
        // More towers (hosts) than sparse features cannot be partitioned.
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 27, 1).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm);
        assert!(matches!(
            run_dmt(&cfg),
            Err(DistributedError::Config { .. })
        ));
    }
}
