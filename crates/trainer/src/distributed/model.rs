//! Rank-local model state shared by both deployments: the sharded embedding
//! lookup (decomposed into issue/answer/pool phases so the pipelined schedule can
//! interleave them with collectives) and the replicated dense stack.
//!
//! The module is public because the *serving* engine (`dmt-serve`) reuses the
//! exact same building blocks on its query path: [`ShardedLookup`] provides the
//! route → answer → pool protocol over frozen (exported) tables, and
//! [`DenseStack::forward`] is the inference half of the training forward/backward
//! — sharing the float path is what makes served predictions bit-identical to a
//! training-side forward pass.

use super::config::DistributedError;
use super::export::TableWeights;
use dmt_data::{Batch, DatasetSchema};
use dmt_models::{ModelArch, ModelHyperparams};
use dmt_nn::param::HasParameters;
use dmt_nn::{
    BceWithLogitsLoss, CrossNet, CrossNetScratch, DotInteraction, Mlp, MlpScratch, Parameter,
    QuantizedShardedTable, ShardedEmbeddingTable,
};
use dmt_tensor::{Precision, Tensor, TensorError};

/// Encodes a (feature, row) pair into the u64 key the index exchanges carry.
#[must_use]
pub fn encode_key(feature: usize, row: usize) -> u64 {
    ((feature as u64) << 32) | row as u64
}

/// Decodes a (feature, row) key.
#[must_use]
pub fn decode_key(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize)
}

/// Splits a sorted key list into contiguous same-feature runs of decoded rows.
pub(crate) fn feature_runs(keys: &[u64]) -> impl Iterator<Item = (usize, Vec<usize>)> + '_ {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        if start >= keys.len() {
            return None;
        }
        let (feature, _) = decode_key(keys[start]);
        let mut end = start;
        let mut rows = Vec::new();
        while end < keys.len() {
            let (f, row) = decode_key(keys[end]);
            if f != feature {
                break;
            }
            rows.push(row);
            end += 1;
        }
        start = end;
        Some((feature, rows))
    })
}

// --- DMT tower layout + peer wire format ------------------------------------
//
// One definition serves the trainer's lowering and the serving engine: geometry
// or wire-format drift between the two would silently break the served-equals-
// trained bit-identity guarantee.

/// Sorted per-tower feature groups of the naive partition (ascending feature
/// ids within each group — the wire order of every tower exchange).
///
/// # Errors
///
/// Returns [`DistributedError::Config`] if the partition is invalid or leaves a
/// tower without features.
pub fn tower_groups(num_sparse: usize, towers: usize) -> Result<Vec<Vec<usize>>, DistributedError> {
    let partition = dmt_core::naive_partition(num_sparse, towers)?;
    let groups: Vec<Vec<usize>> = partition
        .groups()
        .iter()
        .map(|g| {
            let mut g = g.clone();
            g.sort_unstable();
            g
        })
        .collect();
    if groups.iter().any(Vec::is_empty) {
        return Err(DistributedError::Config {
            reason: "every tower needs at least one feature".into(),
        });
    }
    Ok(groups)
}

/// Compressed output width of each tower: `D · (c · F_t + p)` per group.
#[must_use]
pub fn tower_widths(groups: &[Vec<usize>], c: usize, p: usize, d: usize) -> Vec<usize> {
    groups.iter().map(|g| d * (c * g.len() + p)).collect()
}

/// Interaction units of the DMT dense stack: every tower's ensemble projections
/// plus the dense unit.
#[must_use]
pub fn tower_num_units(groups: &[Vec<usize>], c: usize, p: usize) -> usize {
    groups.iter().map(|g| c * g.len() + p).sum::<usize>() + 1
}

/// Encodes `samples` local samples as per-tower peer index streams — the SPTT
/// wire format: `len, idx...` per bag, feature-major within each tower's group.
/// `bag(feature, sample)` supplies the index bag (batches and serving queries
/// store bags differently; the wire format must not).
pub fn encode_tower_streams<'a, F>(groups: &[Vec<usize>], samples: usize, bag: F) -> Vec<Vec<u64>>
where
    F: Fn(usize, usize) -> &'a [usize],
{
    groups
        .iter()
        .map(|group| {
            let mut stream = Vec::new();
            for &f in group {
                for s in 0..samples {
                    let b = bag(f, s);
                    stream.push(b.len() as u64);
                    stream.extend(b.iter().map(|&i| i as u64));
                }
            }
            stream
        })
        .collect()
}

/// Decodes incoming peer streams into the combined tower batch: one bag list
/// per tower feature over `sum(src_counts)` samples, source major.
/// `src_counts[s]` is source `s`'s sample count (uniform in training, per-rank
/// chunk sizes in serving).
#[must_use]
pub fn decode_tower_streams(
    incoming: &[Vec<u64>],
    num_features: usize,
    src_counts: &[usize],
) -> Vec<Vec<Vec<usize>>> {
    let tower_batch: usize = src_counts.iter().sum();
    let mut tower_bags: Vec<Vec<Vec<usize>>> = vec![Vec::with_capacity(tower_batch); num_features];
    for (stream, &b) in incoming.iter().zip(src_counts) {
        let mut cursor = 0usize;
        for bags in tower_bags.iter_mut() {
            for _ in 0..b {
                let len = stream[cursor] as usize;
                cursor += 1;
                bags.push(
                    stream[cursor..cursor + len]
                        .iter()
                        .map(|&v| v as usize)
                        .collect(),
                );
                cursor += len;
            }
        }
        debug_assert_eq!(cursor, stream.len());
    }
    tower_bags
}

/// Request-routing state of one in-flight fetch: which keys this rank asked each
/// owner for, and which keys each source asked this rank for.
///
/// Owned per micro-batch (several fetches may be in flight at once under the
/// pipelined schedule). The routing also tells the wire codec how many `f32`
/// elements each encoded shard decodes to: `keys × dim` per owner/source.
#[derive(Debug, Default)]
pub struct LookupRouting {
    /// Requester side: per-owner sorted-unique request keys.
    pub request_keys: Vec<Vec<u64>>,
    /// Owner side: per-source request keys (set once the index exchange lands).
    pub served_keys: Vec<Vec<u64>>,
}

/// One rank's sharded view of a set of embedding tables.
///
/// The tables for `features` are row-sharded across the `world` ranks of the backend
/// this lookup is driven through (all ranks in baseline mode, one host's ranks in
/// DMT mode). A fetch runs the two-sided protocol: sorted-unique `(feature, row)`
/// keys to each owner, raw rows back, requester-side pooling; the backward pass
/// reuses the request routing to push per-row gradients to their owners. Each
/// protocol phase is its own method, so the sync path can run them back to back
/// while the pipelined path slots collectives between them.
///
/// The serving engine reuses the same type over *frozen* tables
/// ([`ShardedLookup::from_tables`]) and drives only the forward phases —
/// optionally at reduced storage precision
/// ([`ShardedLookup::from_tables_quantized`]), where rows live as int8/fp16
/// words and dequantize on the fly inside `answer`.
pub struct ShardedLookup {
    /// Global feature ids served by this world, ascending.
    features: Vec<usize>,
    /// This rank's shard of each feature's table, aligned with `features`.
    shards: ShardStorage,
    dim: usize,
}

/// Per-rank shard storage: trainable f32 tables or frozen quantized tables.
///
/// Both variants expose identical geometry (`rows_per_shard = ⌈rows/world⌉`
/// row blocks, modulo row wrap), so the route/answer/pool protocol is
/// storage-agnostic; only the training phases (gradient merge, optimizer,
/// export) require the f32 variant.
enum ShardStorage {
    /// Trainable full-precision shards.
    F32(Vec<ShardedEmbeddingTable>),
    /// Frozen int8/fp16 serving shards.
    Quantized(Vec<QuantizedShardedTable>),
}

impl ShardStorage {
    fn num_embeddings(&self, pos: usize) -> usize {
        match self {
            ShardStorage::F32(shards) => shards[pos].num_embeddings(),
            ShardStorage::Quantized(shards) => shards[pos].num_embeddings(),
        }
    }

    fn owner_of(&self, pos: usize, row: usize) -> usize {
        match self {
            ShardStorage::F32(shards) => shards[pos].owner_of(row),
            ShardStorage::Quantized(shards) => shards[pos].owner_of(row),
        }
    }

    fn lookup_rows_into(
        &self,
        pos: usize,
        rows: &[usize],
        out: &mut Vec<f32>,
    ) -> Result<(), TensorError> {
        match self {
            ShardStorage::F32(shards) => shards[pos].lookup_rows_into(rows, out),
            ShardStorage::Quantized(shards) => shards[pos].lookup_rows_into(rows, out),
        }
    }

    /// Trainable shards, or a panic on frozen quantized storage: every caller
    /// is a training phase that has no meaning for serving-only tables.
    fn trainable(&self) -> &Vec<ShardedEmbeddingTable> {
        match self {
            ShardStorage::F32(shards) => shards,
            ShardStorage::Quantized(_) => {
                panic!("quantized serving shards have no training path")
            }
        }
    }

    fn trainable_mut(&mut self) -> &mut Vec<ShardedEmbeddingTable> {
        match self {
            ShardStorage::F32(shards) => shards,
            ShardStorage::Quantized(_) => {
                panic!("quantized serving shards have no training path")
            }
        }
    }
}

impl ShardedLookup {
    /// Creates one rank's freshly initialized shard view: shard `shard_index` of
    /// `world` for every feature in `features`, with per-`(feature, shard)`
    /// deterministic seeding.
    #[must_use]
    pub(crate) fn new(
        seed: u64,
        schema: &DatasetSchema,
        mut features: Vec<usize>,
        dim: usize,
        world: usize,
        shard_index: usize,
    ) -> Self {
        use rand::SeedableRng;
        features.sort_unstable();
        let shards = features
            .iter()
            .map(|&f| {
                // Seed per (feature, shard): initialization is deterministic and
                // independent of which world drives the lookup.
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(f as u64 + 1))
                        ^ ((shard_index as u64) << 48),
                );
                ShardedEmbeddingTable::new(
                    &mut rng,
                    schema.sparse_cardinalities[f],
                    dim,
                    world,
                    shard_index,
                )
            })
            .collect();
        Self {
            features,
            shards: ShardStorage::F32(shards),
            dim,
        }
    }

    /// Rebuilds one rank's shard view from exported full-table weights: shard
    /// `shard_index` of a `world`-way partition for every feature in `features`,
    /// slicing each feature's snapshot table. This is how the serving engine
    /// re-shards a snapshot onto *its* cluster, independent of the world size the
    /// model was trained with.
    ///
    /// # Errors
    ///
    /// Returns [`DistributedError::Config`] if a feature has no snapshot table or
    /// the table dimensions are inconsistent.
    pub fn from_tables(
        features: Vec<usize>,
        tables: &[TableWeights],
        world: usize,
        shard_index: usize,
    ) -> Result<Self, DistributedError> {
        Self::from_tables_quantized(features, tables, world, shard_index, Precision::F32)
    }

    /// [`ShardedLookup::from_tables`] at a chosen storage precision: f32 rows
    /// come straight from the snapshot; int8/fp16 quantize each shard's local
    /// rows once at load time through the same `local_weights`/
    /// `from_local_rows` boundary, so a snapshot loads directly into quantized
    /// serving shards without ever materializing full-precision tables.
    ///
    /// # Errors
    ///
    /// Returns [`DistributedError::Config`] if a feature has no snapshot table
    /// or the table dimensions are inconsistent.
    pub fn from_tables_quantized(
        mut features: Vec<usize>,
        tables: &[TableWeights],
        world: usize,
        shard_index: usize,
        precision: Precision,
    ) -> Result<Self, DistributedError> {
        features.sort_unstable();
        let mut f32_shards = Vec::new();
        let mut quant_shards = Vec::new();
        let mut dim = 0usize;
        for &f in &features {
            let table =
                tables
                    .iter()
                    .find(|t| t.feature == f)
                    .ok_or_else(|| DistributedError::Config {
                        reason: format!("snapshot holds no table for feature {f}"),
                    })?;
            if table.rows == 0 || table.dim == 0 {
                return Err(DistributedError::Config {
                    reason: format!("table {f} has zero rows or dimension"),
                });
            }
            if table.data.len() != table.rows * table.dim {
                return Err(DistributedError::Config {
                    reason: format!("table {f} data is not [{} x {}]", table.rows, table.dim),
                });
            }
            if dim == 0 {
                dim = table.dim;
            } else if dim != table.dim {
                return Err(DistributedError::Config {
                    reason: format!("table {f} dim {} != {dim}", table.dim),
                });
            }
            let rows_per_shard = table.rows.div_ceil(world);
            let lo = (shard_index * rows_per_shard).min(table.rows);
            let hi = ((shard_index + 1) * rows_per_shard).min(table.rows);
            let local_rows = &table.data[lo * table.dim..hi * table.dim];
            if precision.is_f32() {
                f32_shards.push(ShardedEmbeddingTable::from_local_rows(
                    table.rows,
                    table.dim,
                    world,
                    shard_index,
                    local_rows.to_vec(),
                ));
            } else {
                quant_shards.push(QuantizedShardedTable::from_local_rows(
                    table.rows,
                    table.dim,
                    world,
                    shard_index,
                    local_rows,
                    precision,
                ));
            }
        }
        let shards = if precision.is_f32() {
            ShardStorage::F32(f32_shards)
        } else {
            ShardStorage::Quantized(quant_shards)
        };
        Ok(Self {
            features,
            shards,
            dim,
        })
    }

    /// Storage precision of the shards this lookup serves from.
    #[must_use]
    pub fn precision(&self) -> Precision {
        match &self.shards {
            ShardStorage::F32(_) => Precision::F32,
            ShardStorage::Quantized(shards) => shards
                .first()
                .map_or(Precision::F32, QuantizedShardedTable::precision),
        }
    }

    /// Bytes resident in this rank's shard storage (payload words plus int8
    /// per-row scales) — the number the quantized formats shrink.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        match &self.shards {
            ShardStorage::F32(shards) => shards
                .iter()
                .map(|s| s.local_weights().len() as u64 * 4)
                .sum(),
            ShardStorage::Quantized(shards) => shards
                .iter()
                .map(QuantizedShardedTable::resident_bytes)
                .sum(),
        }
    }

    /// Exports this rank's shards as `(feature, first_global_row, local rows)`
    /// triples — the per-rank contribution to a full-table snapshot.
    pub(crate) fn export_shards(&self) -> Vec<(usize, usize, Vec<f32>)> {
        self.features
            .iter()
            .zip(self.shards.trainable())
            .map(|(&f, shard)| {
                (
                    f,
                    shard.local_row_range().start,
                    shard.local_weights().to_vec(),
                )
            })
            .collect()
    }

    /// Global feature ids served by this lookup, ascending.
    #[must_use]
    pub fn features(&self) -> &[usize] {
        &self.features
    }

    /// Embedding dimension of every served table.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Position of a global feature id within `features`.
    fn feature_pos(&self, feature: usize) -> usize {
        self.features
            .binary_search(&feature)
            .expect("feature served by this lookup")
    }

    // --- Protocol phases ----------------------------------------------------

    /// Phase 1 (requester): routes each distinct (feature, row) of `bags` to its
    /// owner shard as sorted-unique keys — the payload of the index AlltoAll.
    pub fn route(&self, world: usize, bags: &[&[Vec<usize>]]) -> Vec<Vec<u64>> {
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); world];
        for (pos, per_sample) in bags.iter().enumerate() {
            let num_embeddings = self.shards.num_embeddings(pos);
            let feature = self.features[pos];
            for bag in per_sample.iter() {
                for &raw in bag {
                    let row = raw % num_embeddings;
                    requests[self.shards.owner_of(pos, row)].push(encode_key(feature, row));
                }
            }
        }
        for keys in &mut requests {
            keys.sort_unstable();
            keys.dedup();
        }
        requests
    }

    /// Phase 2 (owner): answers incoming request keys with raw rows, in request
    /// order. Keys are sorted, so rows of the same feature form contiguous runs and
    /// each run is answered with one batched shard lookup.
    pub fn answer(&self, incoming: &[Vec<u64>]) -> Result<Vec<Vec<f32>>, DistributedError> {
        let dim = self.dim;
        let mut replies: Vec<Vec<f32>> = Vec::with_capacity(incoming.len());
        for keys in incoming {
            let mut reply = Vec::with_capacity(keys.len() * dim);
            for (feature, rows) in feature_runs(keys) {
                self.shards
                    .lookup_rows_into(self.feature_pos(feature), &rows, &mut reply)?;
            }
            replies.push(reply);
        }
        Ok(replies)
    }

    /// Phase 3 (requester): pools fetched rows into one `[num_samples, dim]` tensor
    /// per feature, bit-identical to a local sum-pooled forward.
    pub fn pool(
        &self,
        bags: &[&[Vec<usize>]],
        routing: &LookupRouting,
        fetched: &[Vec<f32>],
    ) -> Result<Vec<Tensor>, DistributedError> {
        let dim = self.dim;
        let mut outputs = Vec::with_capacity(bags.len());
        for (pos, per_sample) in bags.iter().enumerate() {
            let num_embeddings = self.shards.num_embeddings(pos);
            let feature = self.features[pos];
            let mut out = Tensor::zeros(&[per_sample.len(), dim]);
            let data = out.data_mut();
            for (sample, bag) in per_sample.iter().enumerate() {
                let dst = &mut data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % num_embeddings;
                    let owner = self.shards.owner_of(pos, row);
                    let slot = routing.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in dst
                        .iter_mut()
                        .zip(&fetched[owner][slot * dim..(slot + 1) * dim])
                    {
                        *d += v;
                    }
                }
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Backward phase 1 (requester): accumulates per-requested-row gradients
    /// (deduplicated exactly like the requests) into one buffer per owner — the
    /// payload of the gradient AlltoAll.
    pub(crate) fn build_grad_bufs(
        &self,
        bags: &[&[Vec<usize>]],
        routing: &LookupRouting,
        grads: &[Tensor],
    ) -> Vec<Vec<f32>> {
        let dim = self.dim;
        let mut grad_bufs: Vec<Vec<f32>> = routing
            .request_keys
            .iter()
            .map(|keys| vec![0.0f32; keys.len() * dim])
            .collect();
        for (pos, (per_sample, grad)) in bags.iter().zip(grads).enumerate() {
            let num_embeddings = self.shards.num_embeddings(pos);
            let feature = self.features[pos];
            let grad_data = grad.data();
            for (sample, bag) in per_sample.iter().enumerate() {
                let src = &grad_data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % num_embeddings;
                    let owner = self.shards.owner_of(pos, row);
                    let slot = routing.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in grad_bufs[owner][slot * dim..(slot + 1) * dim]
                        .iter_mut()
                        .zip(src)
                    {
                        *d += v;
                    }
                }
            }
        }
        grad_bufs
    }

    /// Backward phase 2 (owner): merges each source's gradient contributions in
    /// rank order, one batched merge per contiguous feature run (a per-row merge
    /// would rebuild the pending CSR store once per key).
    pub(crate) fn merge_grads(
        &mut self,
        routing: &LookupRouting,
        incoming: Vec<Vec<f32>>,
    ) -> Result<(), DistributedError> {
        let dim = self.dim;
        for (keys, grads) in routing.served_keys.iter().zip(incoming) {
            let mut offset = 0usize;
            for (feature, rows) in feature_runs(keys) {
                let pos = self.feature_pos(feature);
                let span = rows.len() * dim;
                self.shards.trainable_mut()[pos]
                    .accumulate_row_grads(&rows, &grads[offset..offset + span])?;
                offset += span;
            }
        }
        Ok(())
    }

    pub(crate) fn apply_rowwise_adagrad(&mut self, learning_rate: f32, eps: f32) {
        for shard in self.shards.trainable_mut() {
            shard.apply_rowwise_adagrad(learning_rate, eps);
        }
    }

    /// Single-rank pooling: sums each sample's bag rows for every served
    /// feature straight into the feature-block layout `[samples, F · dim]`
    /// (feature `pos` occupies columns `pos·dim .. (pos+1)·dim`), skipping the
    /// route/answer key exchange entirely. Requires every row to be local —
    /// i.e. a lookup built with `world == 1` — and accumulates rows in bag
    /// order, bit-identical to the route → answer → [`ShardedLookup::pool`]
    /// path followed by a column concatenation.
    ///
    /// `bag(feature, sample)` supplies the raw index bag (same contract as
    /// [`encode_tower_streams`]); `row_buf` is a reusable `dim`-row decode
    /// buffer, so once it and `out` have grown, the pass allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if a row is not owned by this shard view
    /// (the lookup was built with more than one shard).
    pub fn pool_local_into<'a, F>(
        &self,
        samples: usize,
        bag: F,
        row_buf: &mut Vec<f32>,
        out: &mut Tensor,
    ) -> Result<(), TensorError>
    where
        F: Fn(usize, usize) -> &'a [usize],
    {
        let dim = self.dim;
        let width = self.features.len() * dim;
        out.reset_to_shape(&[samples, width]);
        let data = out.data_mut();
        for (pos, &feature) in self.features.iter().enumerate() {
            let num_embeddings = self.shards.num_embeddings(pos);
            for (s, sample_row) in data.chunks_exact_mut(width).enumerate() {
                let dst = &mut sample_row[pos * dim..(pos + 1) * dim];
                for &raw in bag(feature, s) {
                    let row = raw % num_embeddings;
                    row_buf.clear();
                    self.shards
                        .lookup_rows_into(pos, std::slice::from_ref(&row), row_buf)?;
                    for (d, v) in dst.iter_mut().zip(row_buf.iter()) {
                        *d += v;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Reusable buffers for [`DenseStack::forward_infer`]: every intermediate
/// tensor of the dense forward pass plus the per-module scratch of the
/// layers underneath. Owned per serving worker; capacity is retained across
/// micro-batches, so steady-state inference performs no heap allocation in
/// the dense stack.
#[derive(Debug, Default)]
pub struct DenseScratch {
    dense_repr: Tensor,
    units: Tensor,
    interaction: Tensor,
    over_input: Tensor,
    logits: Tensor,
    bottom: MlpScratch,
    over: MlpScratch,
    cross: CrossNetScratch,
}

/// The replicated dense stack: bottom MLP, feature interaction and over-arch.
///
/// `unit_width` and `num_units` fix the interaction geometry: the baseline
/// deployment uses one unit per sparse feature plus the dense unit at the
/// embedding dimension, DMT uses one unit per tower-ensemble projection at the
/// tower output dimension. The serving engine rebuilds the same geometry from a
/// snapshot's metadata and loads the exported weights ([`load_params`]).
pub struct DenseStack {
    arch: ModelArch,
    bottom: Mlp,
    dot: Option<DotInteraction>,
    cross: Option<CrossNet>,
    over: Mlp,
    loss: BceWithLogitsLoss,
    unit_width: usize,
}

impl DenseStack {
    /// Builds a dense stack for `arch` with the given interaction geometry,
    /// seeding every parameter deterministically from `seed` (all ranks build
    /// identical replicas).
    #[must_use]
    pub fn new(
        seed: u64,
        schema: &DatasetSchema,
        arch: ModelArch,
        hyper: &ModelHyperparams,
        unit_width: usize,
        num_units: usize,
    ) -> Self {
        use rand::SeedableRng;
        // Every rank seeds identically: the stack is a data-parallel replica.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bottom_sizes = vec![schema.num_dense];
        bottom_sizes.extend(&hyper.bottom_mlp_hidden);
        bottom_sizes.push(unit_width);
        let bottom = Mlp::new(&mut rng, &bottom_sizes);
        let interaction_width = unit_width * num_units;
        let (dot, cross, over_input) = match arch {
            ModelArch::Dlrm => {
                let dot = DotInteraction::new(num_units, unit_width);
                let over_input = unit_width + dot.output_dim();
                (Some(dot), None, over_input)
            }
            ModelArch::Dcn => {
                let cross = CrossNet::new(&mut rng, interaction_width, hyper.cross_layers.max(1));
                (None, Some(cross), interaction_width)
            }
        };
        let mut over_sizes = vec![over_input];
        over_sizes.extend(&hyper.over_mlp_hidden);
        over_sizes.push(1);
        let over = Mlp::new(&mut rng, &over_sizes);
        Self {
            arch,
            bottom,
            dot,
            cross,
            over,
            loss: BceWithLogitsLoss::new(),
            unit_width,
        }
    }

    /// Forward + backward over one local batch. Returns the mean loss, the
    /// per-sample predicted click probabilities (for training-AUC tracking) and
    /// the gradient with respect to the feature block. Parameter gradients
    /// *accumulate* across calls (micro-batches) until `zero_grad`.
    ///
    /// `grad_scale` multiplies the loss gradient before it propagates (the loss
    /// value is reported unscaled). The sync schedule passes `1.0` (a no-op,
    /// preserving bit-identical behavior); the pipelined schedule passes
    /// `mb_len * M / local_batch` so unequal micro-batches contribute to the
    /// accumulated gradients in proportion to their sample counts — after the
    /// final `1/M` averaging, the result is the exact per-sample mean over the
    /// whole local batch.
    pub(crate) fn forward_backward(
        &mut self,
        dense_input: &Tensor,
        feature_block: &Tensor,
        labels: &[f32],
        grad_scale: f32,
    ) -> Result<(f64, Vec<f32>, Tensor), DistributedError> {
        let dense_repr = self.bottom.forward(dense_input)?;
        let units = Tensor::concat_cols(&[&dense_repr, feature_block])?;
        let over_input = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pairs = dot.forward(&units)?;
                Tensor::concat_cols(&[&dense_repr, &pairs])?
            }
            ModelArch::Dcn => self
                .cross
                .as_mut()
                .expect("DCN stacks own a CrossNet")
                .forward(&units)?,
        };
        let logits = self.over.forward(&over_input)?;
        let (loss, predictions, mut grad_logits) = self.loss.forward_backward(&logits, labels)?;
        if grad_scale != 1.0 {
            // Gradients are linear in the loss gradient, so scaling here scales
            // every parameter gradient of this pass.
            for v in grad_logits.data_mut() {
                *v *= grad_scale;
            }
        }

        let grad_over_input = self.over.backward(&grad_logits)?;
        let (grad_dense_direct, grad_units) = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pieces = grad_over_input.split_cols(&[self.unit_width, dot.output_dim()])?;
                let grad_units = dot.backward(&pieces[1])?;
                (Some(pieces[0].clone()), grad_units)
            }
            ModelArch::Dcn => (
                None,
                self.cross
                    .as_mut()
                    .expect("DCN stacks own a CrossNet")
                    .backward(&grad_over_input)?,
            ),
        };
        let feature_width = feature_block.shape()[1];
        let pieces = grad_units.split_cols(&[self.unit_width, feature_width])?;
        let mut grad_dense_repr = pieces[0].clone();
        if let Some(direct) = grad_dense_direct {
            grad_dense_repr.axpy(1.0, &direct)?;
        }
        self.bottom.backward(&grad_dense_repr)?;
        Ok((loss, predictions, pieces[1].clone()))
    }

    /// Inference forward: the exact forward half of the training
    /// `forward_backward`, returning the per-sample predicted click
    /// probabilities (`sigmoid(logit)`, the same float path the training loss
    /// reports). No gradients are touched, so the stack can serve queries
    /// indefinitely from frozen weights.
    ///
    /// # Errors
    ///
    /// Returns a [`DistributedError`] on input shape mismatch.
    pub fn forward(
        &mut self,
        dense_input: &Tensor,
        feature_block: &Tensor,
    ) -> Result<Vec<f32>, DistributedError> {
        let dense_repr = self.bottom.forward(dense_input)?;
        let units = Tensor::concat_cols(&[&dense_repr, feature_block])?;
        let over_input = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pairs = dot.forward(&units)?;
                Tensor::concat_cols(&[&dense_repr, &pairs])?
            }
            ModelArch::Dcn => self
                .cross
                .as_mut()
                .expect("DCN stacks own a CrossNet")
                .forward(&units)?,
        };
        let logits = self.over.forward(&over_input)?;
        Ok(logits
            .data()
            .iter()
            .map(|&z| dmt_nn::activation::scalar_sigmoid(z))
            .collect())
    }

    /// Allocation-free inference forward: the same per-layer kernels as
    /// [`DenseStack::forward`] — bit-identical probabilities — but immutable
    /// over the stack (no activation caching) and writing every intermediate
    /// into `scratch`. `predictions` is cleared and refilled with the
    /// per-sample probabilities; once `scratch` and `predictions` have grown
    /// to the batch's working-set size, a call performs zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns a [`DistributedError`] on input shape mismatch.
    pub fn forward_infer(
        &self,
        dense_input: &Tensor,
        feature_block: &Tensor,
        predictions: &mut Vec<f32>,
        scratch: &mut DenseScratch,
    ) -> Result<(), DistributedError> {
        self.bottom.forward_infer_into(
            dense_input,
            &mut scratch.dense_repr,
            &mut scratch.bottom,
        )?;
        Tensor::concat_cols_into(&[&scratch.dense_repr, feature_block], &mut scratch.units)?;
        match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_ref()
                    .expect("DLRM stacks own a dot interaction");
                dot.forward_into(&scratch.units, &mut scratch.interaction)?;
                Tensor::concat_cols_into(
                    &[&scratch.dense_repr, &scratch.interaction],
                    &mut scratch.over_input,
                )?;
            }
            ModelArch::Dcn => {
                self.cross
                    .as_ref()
                    .expect("DCN stacks own a CrossNet")
                    .forward_infer_into(
                        &scratch.units,
                        &mut scratch.over_input,
                        &mut scratch.cross,
                    )?;
            }
        }
        self.over.forward_infer_into(
            &scratch.over_input,
            &mut scratch.logits,
            &mut scratch.over,
        )?;
        predictions.clear();
        predictions.extend(
            scratch
                .logits
                .data()
                .iter()
                .map(|&z| dmt_nn::activation::scalar_sigmoid(z)),
        );
        Ok(())
    }

    /// Switches the bottom and over MLPs' forward passes to the given storage
    /// precision ([`Precision::F32`] restores the exact fused kernels).
    ///
    /// The interaction stays f32 either way: the dot interaction has no
    /// weights, and a DCN CrossNet's per-layer matvecs are tiny relative to
    /// the MLP GEMMs. Training is unaffected — the f32 master weights stay in
    /// place and backward never reads the quantized sidecars.
    pub fn quantize_weights(&mut self, precision: Precision) {
        self.bottom.quantize_weights(precision);
        self.over.quantize_weights(precision);
    }
}

impl HasParameters for DenseStack {
    fn visit_parameters(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.bottom.visit_parameters(visitor);
        if let Some(cross) = &mut self.cross {
            cross.visit_parameters(visitor);
        }
        self.over.visit_parameters(visitor);
    }
}

/// Flattens every parameter gradient reachable through `module` into one buffer —
/// the payload of a gradient AllReduce.
pub(crate) fn flatten_grads<M: HasParameters + ?Sized>(module: &mut M) -> Vec<f32> {
    let mut flat = Vec::new();
    module.visit_parameters(&mut |p| flat.extend_from_slice(p.grad.data()));
    flat
}

/// Flattens every parameter *value* reachable through `module` into one buffer,
/// in visitation order — the dense half of a model snapshot. Modules are rebuilt
/// deterministically from their constructor arguments, so a flat value buffer
/// round-trips exactly through [`load_params`].
#[must_use]
pub fn flatten_params<M: HasParameters + ?Sized>(module: &mut M) -> Vec<f32> {
    let mut flat = Vec::new();
    module.visit_parameters(&mut |p| flat.extend_from_slice(p.value.data()));
    flat
}

/// Writes a flat value buffer (from [`flatten_params`]) back into `module`'s
/// parameters, in the same visitation order — the import half of a snapshot.
///
/// # Errors
///
/// Returns [`DistributedError::Config`] if `flat` does not hold exactly the
/// module's parameter count.
pub fn load_params<M: HasParameters + ?Sized>(
    module: &mut M,
    flat: &[f32],
) -> Result<(), DistributedError> {
    let expected = {
        let mut count = 0;
        module.visit_parameters(&mut |p| count += p.len());
        count
    };
    if expected != flat.len() {
        return Err(DistributedError::Config {
            reason: format!(
                "parameter buffer holds {} scalars, module expects {expected}",
                flat.len()
            ),
        });
    }
    let mut offset = 0;
    module.visit_parameters(&mut |p| {
        let n = p.len();
        p.value
            .data_mut()
            .copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

/// Writes a reduced gradient buffer back into `module`'s parameters, scaling each
/// element by `scale` (e.g. `1 / world` for data-parallel averaging, times `1 / M`
/// under micro-batch accumulation).
pub(crate) fn write_back_grads<M: HasParameters + ?Sized>(
    module: &mut M,
    flat: &[f32],
    scale: f32,
) {
    let mut offset = 0;
    module.visit_parameters(&mut |p| {
        let n = p.len();
        for (dst, src) in p.grad.data_mut().iter_mut().zip(&flat[offset..offset + n]) {
            *dst = src * scale;
        }
        offset += n;
    });
}

/// Collects per-feature bag slices out of a batch, aligned with `features`.
pub(crate) fn bags_for<'a>(batch: &'a Batch, features: &[usize]) -> Vec<&'a [Vec<usize>]> {
    features
        .iter()
        .map(|&f| batch.sparse[f].as_slice())
        .collect()
}

/// Scales every element of each gradient tensor by `scale` — micro-batch
/// averaging for the sparse/tower gradients the AllReduce does not touch.
pub(crate) fn scale_grads(grads: &mut [Tensor], scale: f32) {
    for grad in grads {
        for v in grad.data_mut() {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> DatasetSchema {
        dmt_data::DatasetSchema::criteo_like_small()
    }

    #[test]
    fn forward_infer_is_bit_identical_to_forward_for_both_archs() {
        let schema = tiny_schema();
        let hyper = ModelHyperparams::tiny();
        for arch in [ModelArch::Dlrm, ModelArch::Dcn] {
            let unit_width = hyper.embedding_dim;
            let num_units = schema.num_sparse() + 1;
            let mut stack = DenseStack::new(17, &schema, arch, &hyper, unit_width, num_units);
            let batch = 5;
            let dense = Tensor::from_vec(
                vec![batch, schema.num_dense],
                (0..batch * schema.num_dense)
                    .map(|i| ((i * 31) % 17) as f32 * 0.13 - 1.0)
                    .collect(),
            )
            .unwrap();
            let feat_width = unit_width * (num_units - 1);
            let features = Tensor::from_vec(
                vec![batch, feat_width],
                (0..batch * feat_width)
                    .map(|i| ((i * 7) % 23) as f32 * 0.09 - 1.0)
                    .collect(),
            )
            .unwrap();
            let reference = stack.forward(&dense, &features).unwrap();

            let mut predictions = Vec::new();
            let mut scratch = DenseScratch::default();
            // Twice: the second pass reuses grown buffers and must still match.
            for _ in 0..2 {
                stack
                    .forward_infer(&dense, &features, &mut predictions, &mut scratch)
                    .unwrap();
                assert_eq!(predictions.len(), reference.len());
                for (a, b) in predictions.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{arch:?}");
                }
            }
        }
    }

    #[test]
    fn pool_local_matches_the_routed_protocol_bit_identically() {
        let schema = tiny_schema();
        let features: Vec<usize> = (0..schema.num_sparse()).collect();
        let dim = 4;
        let lookup = ShardedLookup::new(3, &schema, features.clone(), dim, 1, 0);
        let samples = 6;
        // Deterministic bags with empties, repeats and out-of-range rows.
        let bags: Vec<Vec<Vec<usize>>> = features
            .iter()
            .map(|&f| {
                (0..samples)
                    .map(|s| {
                        (0..(s + f) % 4)
                            .map(|j| s * 97 + f * 31 + j * 1009)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let bag_slices: Vec<&[Vec<usize>]> = bags.iter().map(|b| b.as_slice()).collect();

        // Reference: the full route → answer → pool protocol plus concat.
        let request_keys = lookup.route(1, &bag_slices);
        let routing = LookupRouting {
            served_keys: request_keys.clone(),
            request_keys,
        };
        let fetched = lookup.answer(&routing.served_keys).unwrap();
        let pooled = lookup.pool(&bag_slices, &routing, &fetched).unwrap();
        let refs: Vec<&Tensor> = pooled.iter().collect();
        let reference = Tensor::concat_cols(&refs).unwrap();

        let mut out = Tensor::default();
        let mut row_buf = Vec::new();
        for _ in 0..2 {
            lookup
                .pool_local_into(
                    samples,
                    |f, s| bags[f].get(s).map_or(&[][..], Vec::as_slice),
                    &mut row_buf,
                    &mut out,
                )
                .unwrap();
            assert_eq!(out.shape(), reference.shape());
            for (a, b) in out.data().iter().zip(reference.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
