//! Rank-local model state shared by both deployments: the sharded embedding
//! lookup (decomposed into issue/answer/pool phases so the pipelined schedule can
//! interleave them with collectives) and the replicated dense stack.

use super::config::DistributedError;
use dmt_data::{Batch, DatasetSchema};
use dmt_models::{ModelArch, ModelHyperparams};
use dmt_nn::param::HasParameters;
use dmt_nn::{BceWithLogitsLoss, CrossNet, DotInteraction, Mlp, Parameter, ShardedEmbeddingTable};
use dmt_tensor::Tensor;

/// Encodes a (feature, row) pair into the u64 key the index exchanges carry.
pub(crate) fn encode_key(feature: usize, row: usize) -> u64 {
    ((feature as u64) << 32) | row as u64
}

/// Decodes a (feature, row) key.
pub(crate) fn decode_key(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize)
}

/// Splits a sorted key list into contiguous same-feature runs of decoded rows.
pub(crate) fn feature_runs(keys: &[u64]) -> impl Iterator<Item = (usize, Vec<usize>)> + '_ {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        if start >= keys.len() {
            return None;
        }
        let (feature, _) = decode_key(keys[start]);
        let mut end = start;
        let mut rows = Vec::new();
        while end < keys.len() {
            let (f, row) = decode_key(keys[end]);
            if f != feature {
                break;
            }
            rows.push(row);
            end += 1;
        }
        start = end;
        Some((feature, rows))
    })
}

/// Request-routing state of one in-flight fetch: which keys this rank asked each
/// owner for, and which keys each source asked this rank for.
///
/// Owned per micro-batch (several fetches may be in flight at once under the
/// pipelined schedule). The routing also tells the wire codec how many `f32`
/// elements each encoded shard decodes to: `keys × dim` per owner/source.
#[derive(Default)]
pub(crate) struct LookupRouting {
    /// Requester side: per-owner sorted-unique request keys.
    pub request_keys: Vec<Vec<u64>>,
    /// Owner side: per-source request keys (set once the index exchange lands).
    pub served_keys: Vec<Vec<u64>>,
}

/// One rank's sharded view of a set of embedding tables.
///
/// The tables for `features` are row-sharded across the `world` ranks of the backend
/// this lookup is driven through (all ranks in baseline mode, one host's ranks in
/// DMT mode). A fetch runs the two-sided protocol: sorted-unique `(feature, row)`
/// keys to each owner, raw rows back, requester-side pooling; the backward pass
/// reuses the request routing to push per-row gradients to their owners. Each
/// protocol phase is its own method, so the sync path can run them back to back
/// while the pipelined path slots collectives between them.
pub(crate) struct ShardedLookup {
    /// Global feature ids served by this world, ascending.
    features: Vec<usize>,
    /// This rank's shard of each feature's table, aligned with `features`.
    shards: Vec<ShardedEmbeddingTable>,
    dim: usize,
}

impl ShardedLookup {
    pub(crate) fn new(
        seed: u64,
        schema: &DatasetSchema,
        mut features: Vec<usize>,
        dim: usize,
        world: usize,
        shard_index: usize,
    ) -> Self {
        use rand::SeedableRng;
        features.sort_unstable();
        let shards = features
            .iter()
            .map(|&f| {
                // Seed per (feature, shard): initialization is deterministic and
                // independent of which world drives the lookup.
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(f as u64 + 1))
                        ^ ((shard_index as u64) << 48),
                );
                ShardedEmbeddingTable::new(
                    &mut rng,
                    schema.sparse_cardinalities[f],
                    dim,
                    world,
                    shard_index,
                )
            })
            .collect();
        Self {
            features,
            shards,
            dim,
        }
    }

    /// Position of a global feature id within `features`.
    fn feature_pos(&self, feature: usize) -> usize {
        self.features
            .binary_search(&feature)
            .expect("feature served by this lookup")
    }

    // --- Protocol phases ----------------------------------------------------

    /// Phase 1 (requester): routes each distinct (feature, row) of `bags` to its
    /// owner shard as sorted-unique keys — the payload of the index AlltoAll.
    pub(crate) fn route(&self, world: usize, bags: &[&[Vec<usize>]]) -> Vec<Vec<u64>> {
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); world];
        for (pos, per_sample) in bags.iter().enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            for bag in per_sample.iter() {
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    requests[shard.owner_of(row)].push(encode_key(feature, row));
                }
            }
        }
        for keys in &mut requests {
            keys.sort_unstable();
            keys.dedup();
        }
        requests
    }

    /// Phase 2 (owner): answers incoming request keys with raw rows, in request
    /// order. Keys are sorted, so rows of the same feature form contiguous runs and
    /// each run is answered with one batched shard lookup.
    pub(crate) fn answer(&self, incoming: &[Vec<u64>]) -> Result<Vec<Vec<f32>>, DistributedError> {
        let dim = self.dim;
        let mut replies: Vec<Vec<f32>> = Vec::with_capacity(incoming.len());
        for keys in incoming {
            let mut reply = Vec::with_capacity(keys.len() * dim);
            for (feature, rows) in feature_runs(keys) {
                self.shards[self.feature_pos(feature)].lookup_rows_into(&rows, &mut reply)?;
            }
            replies.push(reply);
        }
        Ok(replies)
    }

    /// Phase 3 (requester): pools fetched rows into one `[num_samples, dim]` tensor
    /// per feature, bit-identical to a local sum-pooled forward.
    pub(crate) fn pool(
        &self,
        bags: &[&[Vec<usize>]],
        routing: &LookupRouting,
        fetched: &[Vec<f32>],
    ) -> Result<Vec<Tensor>, DistributedError> {
        let dim = self.dim;
        let mut outputs = Vec::with_capacity(bags.len());
        for (pos, per_sample) in bags.iter().enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            let mut out = Tensor::zeros(&[per_sample.len(), dim]);
            let data = out.data_mut();
            for (sample, bag) in per_sample.iter().enumerate() {
                let dst = &mut data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    let owner = shard.owner_of(row);
                    let slot = routing.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in dst
                        .iter_mut()
                        .zip(&fetched[owner][slot * dim..(slot + 1) * dim])
                    {
                        *d += v;
                    }
                }
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Backward phase 1 (requester): accumulates per-requested-row gradients
    /// (deduplicated exactly like the requests) into one buffer per owner — the
    /// payload of the gradient AlltoAll.
    pub(crate) fn build_grad_bufs(
        &self,
        bags: &[&[Vec<usize>]],
        routing: &LookupRouting,
        grads: &[Tensor],
    ) -> Vec<Vec<f32>> {
        let dim = self.dim;
        let mut grad_bufs: Vec<Vec<f32>> = routing
            .request_keys
            .iter()
            .map(|keys| vec![0.0f32; keys.len() * dim])
            .collect();
        for (pos, (per_sample, grad)) in bags.iter().zip(grads).enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            let grad_data = grad.data();
            for (sample, bag) in per_sample.iter().enumerate() {
                let src = &grad_data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    let owner = shard.owner_of(row);
                    let slot = routing.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in grad_bufs[owner][slot * dim..(slot + 1) * dim]
                        .iter_mut()
                        .zip(src)
                    {
                        *d += v;
                    }
                }
            }
        }
        grad_bufs
    }

    /// Backward phase 2 (owner): merges each source's gradient contributions in
    /// rank order, one batched merge per contiguous feature run (a per-row merge
    /// would rebuild the pending CSR store once per key).
    pub(crate) fn merge_grads(
        &mut self,
        routing: &LookupRouting,
        incoming: Vec<Vec<f32>>,
    ) -> Result<(), DistributedError> {
        let dim = self.dim;
        for (keys, grads) in routing.served_keys.iter().zip(incoming) {
            let mut offset = 0usize;
            for (feature, rows) in feature_runs(keys) {
                let pos = self.feature_pos(feature);
                let span = rows.len() * dim;
                self.shards[pos].accumulate_row_grads(&rows, &grads[offset..offset + span])?;
                offset += span;
            }
        }
        Ok(())
    }

    pub(crate) fn apply_rowwise_adagrad(&mut self, learning_rate: f32, eps: f32) {
        for shard in &mut self.shards {
            shard.apply_rowwise_adagrad(learning_rate, eps);
        }
    }
}

/// The replicated dense stack: bottom MLP, feature interaction and over-arch.
pub(crate) struct DenseStack {
    arch: ModelArch,
    bottom: Mlp,
    dot: Option<DotInteraction>,
    cross: Option<CrossNet>,
    over: Mlp,
    loss: BceWithLogitsLoss,
    unit_width: usize,
}

impl DenseStack {
    pub(crate) fn new(
        seed: u64,
        schema: &DatasetSchema,
        arch: ModelArch,
        hyper: &ModelHyperparams,
        unit_width: usize,
        num_units: usize,
    ) -> Self {
        use rand::SeedableRng;
        // Every rank seeds identically: the stack is a data-parallel replica.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bottom_sizes = vec![schema.num_dense];
        bottom_sizes.extend(&hyper.bottom_mlp_hidden);
        bottom_sizes.push(unit_width);
        let bottom = Mlp::new(&mut rng, &bottom_sizes);
        let interaction_width = unit_width * num_units;
        let (dot, cross, over_input) = match arch {
            ModelArch::Dlrm => {
                let dot = DotInteraction::new(num_units, unit_width);
                let over_input = unit_width + dot.output_dim();
                (Some(dot), None, over_input)
            }
            ModelArch::Dcn => {
                let cross = CrossNet::new(&mut rng, interaction_width, hyper.cross_layers.max(1));
                (None, Some(cross), interaction_width)
            }
        };
        let mut over_sizes = vec![over_input];
        over_sizes.extend(&hyper.over_mlp_hidden);
        over_sizes.push(1);
        let over = Mlp::new(&mut rng, &over_sizes);
        Self {
            arch,
            bottom,
            dot,
            cross,
            over,
            loss: BceWithLogitsLoss::new(),
            unit_width,
        }
    }

    /// Forward + backward over one local batch. Returns the mean loss, the
    /// per-sample predicted click probabilities (for training-AUC tracking) and
    /// the gradient with respect to the feature block. Parameter gradients
    /// *accumulate* across calls (micro-batches) until `zero_grad`.
    ///
    /// `grad_scale` multiplies the loss gradient before it propagates (the loss
    /// value is reported unscaled). The sync schedule passes `1.0` (a no-op,
    /// preserving bit-identical behavior); the pipelined schedule passes
    /// `mb_len * M / local_batch` so unequal micro-batches contribute to the
    /// accumulated gradients in proportion to their sample counts — after the
    /// final `1/M` averaging, the result is the exact per-sample mean over the
    /// whole local batch.
    pub(crate) fn forward_backward(
        &mut self,
        dense_input: &Tensor,
        feature_block: &Tensor,
        labels: &[f32],
        grad_scale: f32,
    ) -> Result<(f64, Vec<f32>, Tensor), DistributedError> {
        let dense_repr = self.bottom.forward(dense_input)?;
        let units = Tensor::concat_cols(&[&dense_repr, feature_block])?;
        let over_input = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pairs = dot.forward(&units)?;
                Tensor::concat_cols(&[&dense_repr, &pairs])?
            }
            ModelArch::Dcn => self
                .cross
                .as_mut()
                .expect("DCN stacks own a CrossNet")
                .forward(&units)?,
        };
        let logits = self.over.forward(&over_input)?;
        let (loss, predictions, mut grad_logits) = self.loss.forward_backward(&logits, labels)?;
        if grad_scale != 1.0 {
            // Gradients are linear in the loss gradient, so scaling here scales
            // every parameter gradient of this pass.
            for v in grad_logits.data_mut() {
                *v *= grad_scale;
            }
        }

        let grad_over_input = self.over.backward(&grad_logits)?;
        let (grad_dense_direct, grad_units) = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pieces = grad_over_input.split_cols(&[self.unit_width, dot.output_dim()])?;
                let grad_units = dot.backward(&pieces[1])?;
                (Some(pieces[0].clone()), grad_units)
            }
            ModelArch::Dcn => (
                None,
                self.cross
                    .as_mut()
                    .expect("DCN stacks own a CrossNet")
                    .backward(&grad_over_input)?,
            ),
        };
        let feature_width = feature_block.shape()[1];
        let pieces = grad_units.split_cols(&[self.unit_width, feature_width])?;
        let mut grad_dense_repr = pieces[0].clone();
        if let Some(direct) = grad_dense_direct {
            grad_dense_repr.axpy(1.0, &direct)?;
        }
        self.bottom.backward(&grad_dense_repr)?;
        Ok((loss, predictions, pieces[1].clone()))
    }
}

impl HasParameters for DenseStack {
    fn visit_parameters(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.bottom.visit_parameters(visitor);
        if let Some(cross) = &mut self.cross {
            cross.visit_parameters(visitor);
        }
        self.over.visit_parameters(visitor);
    }
}

/// Flattens every parameter gradient reachable through `module` into one buffer —
/// the payload of a gradient AllReduce.
pub(crate) fn flatten_grads<M: HasParameters + ?Sized>(module: &mut M) -> Vec<f32> {
    let mut flat = Vec::new();
    module.visit_parameters(&mut |p| flat.extend_from_slice(p.grad.data()));
    flat
}

/// Writes a reduced gradient buffer back into `module`'s parameters, scaling each
/// element by `scale` (e.g. `1 / world` for data-parallel averaging, times `1 / M`
/// under micro-batch accumulation).
pub(crate) fn write_back_grads<M: HasParameters + ?Sized>(
    module: &mut M,
    flat: &[f32],
    scale: f32,
) {
    let mut offset = 0;
    module.visit_parameters(&mut |p| {
        let n = p.len();
        for (dst, src) in p.grad.data_mut().iter_mut().zip(&flat[offset..offset + n]) {
            *dst = src * scale;
        }
        offset += n;
    });
}

/// Collects per-feature bag slices out of a batch, aligned with `features`.
pub(crate) fn bags_for<'a>(batch: &'a Batch, features: &[usize]) -> Vec<&'a [Vec<usize>]> {
    features
        .iter()
        .map(|&f| batch.sparse[f].as_slice())
        .collect()
}

/// Scales every element of each gradient tensor by `scale` — micro-batch
/// averaging for the sparse/tower gradients the AllReduce does not touch.
pub(crate) fn scale_grads(grads: &mut [Tensor], scale: f32) {
    for grad in grads {
        for v in grad.data_mut() {
            *v *= scale;
        }
    }
}
