//! One rank of the hybrid-parallel baseline, in both schedules.
//!
//! * [`ScheduleMode::Sync`] — the original engine, preserved bit-identically:
//!   every collective blocks, one full-batch pass per iteration.
//! * [`ScheduleMode::Pipelined`] — the iteration is split into micro-batches and
//!   rebuilt as a [`StageGraph`]: micro-batch `b+1`'s index and row-fetch
//!   AlltoAlls run (on the comm helper thread) while micro-batch `b` computes,
//!   and the dense AllReduce overlaps the embedding backward merges.

use super::config::{DistributedConfig, DistributedError, ScheduleMode};
use super::measure::{
    accumulate, wait_logged, zip_world, CommScope, RankOutcome, Recorder, SegmentSample, WaitEntry,
};
use super::model::{bags_for, scale_grads, sync_grads, DenseStack, ShardedLookup};
use super::pipeline::StageGraph;
use super::RankComms;
use crate::distributed::model::{flatten_grads, write_back_grads};
use dmt_comm::{Backend, PendingOp};
use dmt_commsim::SegmentKind;
use dmt_data::{Batch, SyntheticClickDataset};
use dmt_nn::param::HasParameters;
use dmt_nn::{AdamOptimizer, Optimizer};
use dmt_tensor::Tensor;
use std::time::Instant;

/// One rank of the hybrid-parallel baseline.
pub(crate) fn baseline_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let world = config.cluster.world_size();
    let mut data =
        SyntheticClickDataset::new(schema.clone(), config.seed ^ ((rank as u64 + 1) << 16));
    let mut lookup = ShardedLookup::new(
        config.seed,
        schema,
        (0..schema.num_sparse()).collect(),
        n,
        world,
        rank,
    );
    let mut dense = DenseStack::new(
        config.seed,
        schema,
        config.arch,
        &config.hyper,
        n,
        schema.num_sparse() + 1,
    );
    let mut adam = AdamOptimizer::new(config.learning_rate);
    match config.schedule {
        ScheduleMode::Sync => {
            baseline_sync(config, &mut data, &mut lookup, &mut dense, &mut adam, comm)
        }
        ScheduleMode::Pipelined => {
            baseline_pipelined(config, &mut data, &mut lookup, &mut dense, &mut adam, comm)
        }
    }
}

/// The original blocking iteration — the bit-identical semantic reference.
fn baseline_sync(
    config: &DistributedConfig,
    data: &mut SyntheticClickDataset,
    lookup: &mut ShardedLookup,
    dense: &mut DenseStack,
    adam: &mut AdamOptimizer,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let features: Vec<usize> = (0..schema.num_sparse()).collect();

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    let mut wall_s = 0.0;
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        let mut rec = Recorder::default();
        HasParameters::zero_grad(dense);
        let batch = data.next_batch(config.local_batch);
        let bags = bags_for(&batch, &features);

        // Forward: global index + row-fetch exchanges, then requester-side pooling.
        // The fetch runs two collectives; they are split into the simulator's two
        // segments from the drained records.
        let feature_embs = {
            let out = lookup.fetch(&mut comm.global, &bags)?;
            let records = comm.global.drain_records();
            debug_assert_eq!(records.len(), 2);
            let (idx, rows) = (&records[0], &records[1]);
            rec.samples.push(SegmentSample::from_record(
                "feature distribution AlltoAll",
                SegmentKind::EmbeddingComm,
                CommScope::Global,
                idx,
                idx.elapsed_s,
            ));
            rec.samples.push(SegmentSample::from_record(
                "embedding row fetch AlltoAll (fwd)",
                SegmentKind::EmbeddingComm,
                CommScope::Global,
                rows,
                rows.elapsed_s,
            ));
            out
        };
        let refs: Vec<&Tensor> = feature_embs.iter().collect();
        let feature_block = Tensor::concat_cols(&refs)?;
        let dense_input =
            Tensor::from_vec(vec![batch.len(), schema.num_dense], batch.dense_flat())?;
        let (loss, grad_block) =
            dense.forward_backward(&dense_input, &feature_block, &batch.labels, 1.0)?;
        losses.push(loss);

        // Backward: per-feature gradients travel back to the row owners.
        let grads = grad_block.split_cols(&vec![n; schema.num_sparse()])?;
        lookup.push_grads(&mut comm.global, &bags, &grads)?;
        rec.record_drained(
            "embedding gradient AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            CommScope::Global,
            &mut comm.global,
        );

        rec.comm(
            "dense gradient AllReduce",
            SegmentKind::DenseSync,
            CommScope::Global,
            &mut comm.global,
            |backend| sync_grads(dense, backend),
        )?;

        let opt_start = Instant::now();
        adam.step(dense);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let comm_s: f64 = rec.samples.iter().map(|s| s.time_s).sum();
        let iter_s = iter_start.elapsed().as_secs_f64();
        let compute_s = (iter_s - comm_s - opt_s).max(0.0);
        rec.push_compute("optimizer + host overhead", SegmentKind::Other, opt_s);
        let mut samples = vec![SegmentSample::compute(
            "dense + sparse compute",
            SegmentKind::Compute,
            compute_s,
        )];
        samples.extend(rec.samples);
        accumulate(&mut totals, samples);
        wall_s += iter_s;
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
        wall_s,
    })
}

/// Per-micro-batch pipeline state: the sub-batch plus whatever is in flight.
struct MicroBatch {
    batch: Batch,
    routing: super::model::LookupRouting,
    idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    rows_op: Option<PendingOp<Vec<Vec<f32>>>>,
    grads_op: Option<PendingOp<Vec<Vec<f32>>>>,
}

/// The double-buffered pipelined iteration: micro-batch `b+1`'s exchanges overlap
/// micro-batch `b`'s compute, and the dense AllReduce overlaps the embedding
/// backward. Deterministic, but numerically distinct from sync (micro-batched
/// gradient accumulation).
fn baseline_pipelined(
    config: &DistributedConfig,
    data: &mut SyntheticClickDataset,
    lookup: &mut ShardedLookup,
    dense: &mut DenseStack,
    adam: &mut AdamOptimizer,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let features: Vec<usize> = (0..schema.num_sparse()).collect();
    let m = config.effective_micro_batches();
    let inv_m = 1.0 / m as f32;
    let world = config.cluster.world_size();

    /// Everything one pipelined iteration mutates, threaded through the stages.
    struct Ctx<'a> {
        lookup: &'a mut ShardedLookup,
        dense: &'a mut DenseStack,
        global: &'a mut dmt_comm::SharedMemoryBackend,
        features: &'a [usize],
        n: usize,
        num_dense: usize,
        inv_m: f32,
        local_batch: usize,
        mbs: Vec<MicroBatch>,
        allreduce: Option<PendingOp<Vec<f32>>>,
        waits: Vec<WaitEntry>,
        loss_sum: f64,
    }

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    let mut wall_s = 0.0;
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        HasParameters::zero_grad(dense);
        let batch = data.next_batch(config.local_batch);
        let mbs: Vec<MicroBatch> = batch
            .split(m)
            .into_iter()
            .map(|batch| MicroBatch {
                batch,
                routing: super::model::LookupRouting::default(),
                idx_op: None,
                rows_op: None,
                grads_op: None,
            })
            .collect();
        let mut ctx = Ctx {
            lookup,
            dense,
            global: &mut comm.global,
            features: &features,
            n,
            num_dense: schema.num_dense,
            inv_m,
            local_batch: config.local_batch,
            mbs,
            allreduce: None,
            waits: Vec::new(),
            loss_sum: 0.0,
        };

        let mut graph: StageGraph<Ctx> = StageGraph::new();
        // Stage 1 per micro-batch: route requests and launch the index AlltoAll —
        // depends only on the input batch, so every micro-batch's copy is issued
        // up front (TorchRec's input-dist prefetch).
        let mut route_ids = Vec::with_capacity(m);
        for b in 0..m {
            route_ids.push(
                graph.add("issue index AlltoAll", &[], move |ctx: &mut Ctx| {
                    let requests = {
                        let mb = &ctx.mbs[b];
                        let bags = bags_for(&mb.batch, ctx.features);
                        ctx.lookup.route(ctx.global.world_size(), &bags)
                    };
                    ctx.mbs[b].routing.request_keys = requests.clone();
                    ctx.mbs[b].idx_op = Some(ctx.global.all_to_all_indices_nonblocking(requests));
                    Ok(())
                }),
            );
        }
        // Stage 2: claim the index exchange, answer it from the local shard, and
        // launch the row-fetch AlltoAll. Answering micro-batch b+1 overlaps
        // micro-batch b's row transfer.
        let mut answer_ids = Vec::with_capacity(m);
        for (b, &route_id) in route_ids.iter().enumerate() {
            answer_ids.push(graph.add(
                "answer + issue row fetch",
                &[route_id],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].idx_op.take().expect("index op issued");
                    let incoming = wait_logged(
                        op,
                        &mut ctx.waits,
                        "feature distribution AlltoAll",
                        SegmentKind::EmbeddingComm,
                        CommScope::Global,
                    )?;
                    let replies = ctx.lookup.answer(&incoming)?;
                    ctx.mbs[b].routing.served_keys = incoming;
                    ctx.mbs[b].rows_op = Some(ctx.global.all_to_all_nonblocking(replies));
                    Ok(())
                },
            ));
        }
        // Stage 3: claim the rows, pool, run the dense forward/backward
        // (accumulating parameter grads), and launch the gradient AlltoAll. The
        // dense compute of micro-batch b hides the row transfer of b+1 and the
        // gradient transfer of b-1.
        let mut compute_ids = Vec::with_capacity(m);
        for (b, &answer_id) in answer_ids.iter().enumerate() {
            compute_ids.push(graph.add(
                "dense fwd/bwd + issue grads",
                &[answer_id],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].rows_op.take().expect("rows op issued");
                    let fetched = wait_logged(
                        op,
                        &mut ctx.waits,
                        "embedding row fetch AlltoAll (fwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::Global,
                    )?;
                    // Exact per-sample weighting: Batch::split gives the last
                    // micro-batch the remainder, so each contributes by sample
                    // count, not 1/M; grad_scale pre-compensates the final 1/M.
                    let weight = ctx.mbs[b].batch.len() as f32 / ctx.local_batch as f32;
                    let grad_scale = weight / ctx.inv_m;
                    let (loss, mut grads) = {
                        let mb = &ctx.mbs[b];
                        let bags = bags_for(&mb.batch, ctx.features);
                        let embs = ctx.lookup.pool(&bags, &mb.routing, &fetched)?;
                        let refs: Vec<&Tensor> = embs.iter().collect();
                        let feature_block = Tensor::concat_cols(&refs)?;
                        let dense_input = Tensor::from_vec(
                            vec![mb.batch.len(), ctx.num_dense],
                            mb.batch.dense_flat(),
                        )?;
                        let (loss, grad_block) = ctx.dense.forward_backward(
                            &dense_input,
                            &feature_block,
                            &mb.batch.labels,
                            grad_scale,
                        )?;
                        let grads = grad_block.split_cols(&vec![ctx.n; ctx.features.len()])?;
                        (loss, grads)
                    };
                    ctx.loss_sum += loss * f64::from(weight);
                    // Micro-batch averaging for the sparse gradients (net weight
                    // per micro-batch: grad_scale / M = its sample share).
                    scale_grads(&mut grads, ctx.inv_m);
                    let grad_bufs = {
                        let mb = &ctx.mbs[b];
                        let bags = bags_for(&mb.batch, ctx.features);
                        ctx.lookup.build_grad_bufs(&bags, &mb.routing, &grads)
                    };
                    ctx.mbs[b].grads_op = Some(ctx.global.all_to_all_nonblocking(grad_bufs));
                    Ok(())
                },
            ));
        }
        // Stage 4: the dense AllReduce launches right after the last backward and
        // overlaps the embedding backward merges below.
        let ar_issue = graph.add(
            "issue dense AllReduce",
            &[compute_ids[m - 1]],
            |ctx: &mut Ctx| {
                let flat = flatten_grads(ctx.dense);
                ctx.allreduce = Some(ctx.global.all_reduce_nonblocking(flat));
                Ok(())
            },
        );
        // Stage 5: merge each micro-batch's embedding gradients on the owners.
        let mut merge_ids = Vec::with_capacity(m);
        for (b, &compute_id) in compute_ids.iter().enumerate() {
            merge_ids.push(graph.add(
                "merge embedding grads",
                &[compute_id, ar_issue],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].grads_op.take().expect("grads op issued");
                    let incoming = wait_logged(
                        op,
                        &mut ctx.waits,
                        "embedding gradient AlltoAll (bwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::Global,
                    )?;
                    let routing = std::mem::take(&mut ctx.mbs[b].routing);
                    ctx.lookup.merge_grads(&routing, incoming)?;
                    Ok(())
                },
            ));
        }
        // Stage 6: claim the AllReduce and average (world x micro-batch count).
        let last_merge = merge_ids[m - 1];
        graph.add("wait dense AllReduce", &[ar_issue, last_merge], {
            let scale = inv_m / world as f32;
            move |ctx: &mut Ctx| {
                let op = ctx.allreduce.take().expect("allreduce issued");
                let flat = wait_logged(
                    op,
                    &mut ctx.waits,
                    "dense gradient AllReduce",
                    SegmentKind::DenseSync,
                    CommScope::Global,
                )?;
                write_back_grads(ctx.dense, &flat, scale);
                Ok(())
            }
        });
        graph.run(&mut ctx)?;

        let Ctx {
            waits, loss_sum, ..
        } = ctx;
        losses.push(loss_sum);

        let opt_start = Instant::now();
        adam.step(dense);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let iter_s = iter_start.elapsed().as_secs_f64();
        let mut comm_samples = Vec::new();
        zip_world(
            &mut comm_samples,
            &waits,
            CommScope::Global,
            &mut comm.global,
        );
        // Straggler waits beyond the transfer duration fold into compute — the
        // sync path's convention — so breakdown totals stay comparable across
        // schedules on imbalanced ranks.
        let exposed_s: f64 = comm_samples.iter().map(|s| s.exposed_s).sum();
        let compute_s = (iter_s - exposed_s - opt_s).max(0.0);
        let mut samples = vec![SegmentSample::compute(
            "dense + sparse compute",
            SegmentKind::Compute,
            compute_s,
        )];
        samples.extend(comm_samples);
        samples.push(SegmentSample::compute(
            "optimizer + host overhead",
            SegmentKind::Other,
            opt_s,
        ));
        accumulate(&mut totals, samples);
        wall_s += iter_s;
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
        wall_s,
    })
}
