//! Lowering of the hybrid-parallel baseline onto the iteration-graph IR.
//!
//! One set of node bodies covers both schedules; the schedule only changes the
//! *order* the nodes are emitted in (see [`super::graph`]):
//!
//! * [`ScheduleMode::Sync`] — one micro-batch, every `claim` node directly after
//!   its `issue` node: blocking semantics, bit-identical to the original
//!   hand-written engine (the golden-value regression test pins it).
//! * [`ScheduleMode::Pipelined`] — every micro-batch's index exchange is
//!   prefetched, the answer/compute chains interleave so micro-batch `b+1`'s
//!   transfers ride under micro-batch `b`'s compute, and the dense AllReduce
//!   overlaps the embedding-gradient merges.
//!
//! When the configured wire precision is below FP32 the lowering inserts
//! [`OpKind::Quantize`] nodes before the row-fetch and gradient issue nodes and
//! [`OpKind::Dequantize`] nodes after the matching claim nodes (the codec packs
//! the payloads into reduced-precision wire words); the dense AllReduce runs as
//! a quantized-wire collective — the codec is part of the collective itself,
//! NCCL-datatype-style, so no separate codec node appears around it.

use super::config::{DistributedConfig, DistributedError, ScheduleMode};
use super::executor::{self, IterationStats, RankLowering};
use super::export::RankExport;
use super::graph::{decode_shards, encode_shards, IterationGraph, NodeMeta, OpKind};
use super::measure::{wait_logged, CommScope, RankOutcome, WaitEntry};
use super::model::{
    self, bags_for, flatten_grads, scale_grads, write_back_grads, DenseStack, LookupRouting,
    ShardedLookup,
};
use super::RankComms;
use dmt_comm::codec::WireFormat;
use dmt_comm::{Backend, PendingOp, SharedMemoryBackend};
use dmt_commsim::SegmentKind;
use dmt_data::Batch;
use dmt_metrics::auc::roc_auc;
use dmt_nn::param::HasParameters;
use dmt_nn::{AdamOptimizer, Optimizer};
use dmt_tensor::Tensor;

/// One rank of the hybrid-parallel baseline. With `want_export`, also returns
/// this rank's contribution to a frozen model snapshot (its table shards, plus
/// the replicated dense stack on rank 0).
pub(crate) fn baseline_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
    want_export: bool,
) -> Result<(RankOutcome, Option<RankExport>), DistributedError> {
    let mut lowering = BaselineLowering::new(config, rank);
    let outcome = executor::run_rank(config, rank, comm, &mut lowering)?;
    let export = want_export.then(|| RankExport {
        dense_params: (rank == 0).then(|| model::flatten_params(&mut lowering.dense)),
        tower: None,
        shards: lowering.lookup.export_shards(),
    });
    Ok((outcome, export))
}

/// Rank-local state of the baseline lowering: globally sharded tables and the
/// replicated dense stack.
struct BaselineLowering {
    schedule: ScheduleMode,
    wire: WireFormat,
    features: Vec<usize>,
    n: usize,
    num_dense: usize,
    local_batch: usize,
    learning_rate: f32,
    lookup: ShardedLookup,
    dense: DenseStack,
    adam: AdamOptimizer,
}

impl BaselineLowering {
    fn new(config: &DistributedConfig, rank: usize) -> Self {
        let schema = &config.schema;
        let n = config.hyper.embedding_dim;
        let world = config.cluster.world_size();
        let lookup = ShardedLookup::new(
            config.seed,
            schema,
            (0..schema.num_sparse()).collect(),
            n,
            world,
            rank,
        );
        let dense = DenseStack::new(
            config.seed,
            schema,
            config.arch,
            &config.hyper,
            n,
            schema.num_sparse() + 1,
        );
        Self {
            schedule: config.schedule,
            wire: config.wire_format(),
            features: (0..schema.num_sparse()).collect(),
            n,
            num_dense: schema.num_dense,
            local_batch: config.local_batch,
            learning_rate: config.learning_rate,
            lookup,
            dense,
            adam: AdamOptimizer::new(config.learning_rate),
        }
    }
}

/// Per-micro-batch pipeline state threaded between the graph's nodes. The
/// staging fields (`replies`, `fetched`, `grad_bufs`, `incoming`) are how
/// payloads cross node boundaries — and where the inserted `Quantize` /
/// `Dequantize` nodes transcode them in place.
struct Mb {
    batch: Batch,
    routing: LookupRouting,
    replies: Vec<Vec<f32>>,
    fetched: Vec<Vec<f32>>,
    grad_bufs: Vec<Vec<f32>>,
    incoming: Vec<Vec<f32>>,
    idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    rows_op: Option<PendingOp<Vec<Vec<f32>>>>,
    grads_op: Option<PendingOp<Vec<Vec<f32>>>>,
}

/// Everything one lowered iteration mutates.
struct Ctx<'a> {
    low: &'a mut BaselineLowering,
    global: &'a mut SharedMemoryBackend,
    waits: &'a mut Vec<WaitEntry>,
    mbs: Vec<Mb>,
    allreduce: Option<PendingOp<Vec<f32>>>,
    inv_m: f32,
    loss_sum: f64,
    scores: Vec<f32>,
    labels: Vec<f32>,
}

type Id = super::StageId;

// Node builders: each emits one graph node for micro-batch `b`. The closures
// capture only copies, so the same builders serve both schedule orderings.

fn add_route<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::IndexExchange,
            label: "route + issue index AlltoAll",
        },
        deps,
        move |ctx: &mut Ctx| {
            let requests = {
                let mb = &ctx.mbs[b];
                let bags = bags_for(&mb.batch, &ctx.low.features);
                ctx.low.lookup.route(ctx.global.world_size(), &bags)
            };
            ctx.mbs[b].routing.request_keys = requests.clone();
            ctx.mbs[b].idx_op = Some(ctx.global.all_to_all_indices_nonblocking(requests));
            Ok(())
        },
    )
}

fn add_answer<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::EmbeddingLookup,
            label: "claim indices + answer",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].idx_op.take().expect("index op issued");
            let incoming = wait_logged(
                op,
                ctx.waits,
                "feature distribution AlltoAll",
                SegmentKind::EmbeddingComm,
                CommScope::Global,
            )?;
            ctx.mbs[b].replies = ctx.low.lookup.answer(&incoming)?;
            ctx.mbs[b].routing.served_keys = incoming;
            Ok(())
        },
    )
}

/// Inserted only at sub-FP32 precisions: encodes the staged reply rows into
/// wire words before the exchange node sends them.
fn add_quantize_rows<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Quantize,
            label: "quantize rows",
        },
        deps,
        move |ctx: &mut Ctx| {
            let replies = std::mem::take(&mut ctx.mbs[b].replies);
            ctx.mbs[b].replies = encode_shards(wire, replies);
            Ok(())
        },
    )
}

fn add_issue_rows<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::RowExchange,
            label: "issue row fetch",
        },
        deps,
        move |ctx: &mut Ctx| {
            let replies = std::mem::take(&mut ctx.mbs[b].replies);
            ctx.mbs[b].rows_op = Some(ctx.global.all_to_all_nonblocking(replies));
            Ok(())
        },
    )
}

fn add_claim_rows<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::RowExchange,
            label: "claim row fetch",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].rows_op.take().expect("rows op issued");
            ctx.mbs[b].fetched = wait_logged(
                op,
                ctx.waits,
                "embedding row fetch AlltoAll (fwd)",
                SegmentKind::EmbeddingComm,
                CommScope::Global,
            )?;
            Ok(())
        },
    )
}

/// Inserted only at sub-FP32 precisions: decodes the claimed wire words back to
/// rows (the requester knows each owner's element count from its routing).
fn add_dequantize_rows<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize rows",
        },
        deps,
        move |ctx: &mut Ctx| {
            let n = ctx.low.n;
            let fetched = std::mem::take(&mut ctx.mbs[b].fetched);
            let keys = &ctx.mbs[b].routing.request_keys;
            let decoded = decode_shards(wire, fetched, |owner| keys[owner].len() * n)?;
            ctx.mbs[b].fetched = decoded;
            Ok(())
        },
    )
}

fn add_compute<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::DenseForwardBackward,
            label: "pool + dense fwd/bwd",
        },
        deps,
        move |ctx: &mut Ctx| {
            let n = ctx.low.n;
            let fetched = std::mem::take(&mut ctx.mbs[b].fetched);
            // Exact per-sample weighting: Batch::split gives the last micro-batch
            // the remainder, so each contributes by sample count, not 1/M;
            // grad_scale pre-compensates the final 1/M. Under sync (M = 1) both
            // factors are exactly 1.0 — the bit-identical reference path.
            let weight = ctx.mbs[b].batch.len() as f32 / ctx.low.local_batch as f32;
            let grad_scale = weight / ctx.inv_m;
            let (loss, predictions, mut grads) = {
                let mb = &ctx.mbs[b];
                let bags = bags_for(&mb.batch, &ctx.low.features);
                let embs = ctx.low.lookup.pool(&bags, &mb.routing, &fetched)?;
                let refs: Vec<&Tensor> = embs.iter().collect();
                let feature_block = Tensor::concat_cols(&refs)?;
                let dense_input = Tensor::from_vec(
                    vec![mb.batch.len(), ctx.low.num_dense],
                    mb.batch.dense_flat(),
                )?;
                let (loss, predictions, grad_block) = ctx.low.dense.forward_backward(
                    &dense_input,
                    &feature_block,
                    &mb.batch.labels,
                    grad_scale,
                )?;
                let grads = grad_block.split_cols(&vec![n; ctx.low.features.len()])?;
                (loss, predictions, grads)
            };
            ctx.loss_sum += loss * f64::from(weight);
            ctx.scores.extend_from_slice(&predictions);
            ctx.labels.extend_from_slice(&ctx.mbs[b].batch.labels);
            if ctx.mbs.len() > 1 {
                // Micro-batch averaging for the sparse gradients (net weight per
                // micro-batch: grad_scale / M = its sample share).
                scale_grads(&mut grads, ctx.inv_m);
            }
            ctx.mbs[b].grad_bufs = {
                let mb = &ctx.mbs[b];
                let bags = bags_for(&mb.batch, &ctx.low.features);
                ctx.low.lookup.build_grad_bufs(&bags, &mb.routing, &grads)
            };
            Ok(())
        },
    )
}

fn add_quantize_grads<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Quantize,
            label: "quantize embedding grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let bufs = std::mem::take(&mut ctx.mbs[b].grad_bufs);
            ctx.mbs[b].grad_bufs = encode_shards(wire, bufs);
            Ok(())
        },
    )
}

fn add_issue_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::GradExchange,
            label: "issue embedding grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let bufs = std::mem::take(&mut ctx.mbs[b].grad_bufs);
            ctx.mbs[b].grads_op = Some(ctx.global.all_to_all_nonblocking(bufs));
            Ok(())
        },
    )
}

fn add_claim_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::GradExchange,
            label: "claim embedding grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].grads_op.take().expect("grads op issued");
            ctx.mbs[b].incoming = wait_logged(
                op,
                ctx.waits,
                "embedding gradient AlltoAll (bwd)",
                SegmentKind::EmbeddingComm,
                CommScope::Global,
            )?;
            Ok(())
        },
    )
}

fn add_dequantize_grads<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize embedding grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let n = ctx.low.n;
            let incoming = std::mem::take(&mut ctx.mbs[b].incoming);
            let keys = &ctx.mbs[b].routing.served_keys;
            let decoded = decode_shards(wire, incoming, |src| keys[src].len() * n)?;
            ctx.mbs[b].incoming = decoded;
            Ok(())
        },
    )
}

fn add_merge<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::EmbeddingLookup,
            label: "merge embedding grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let incoming = std::mem::take(&mut ctx.mbs[b].incoming);
            let routing = std::mem::take(&mut ctx.mbs[b].routing);
            ctx.low.lookup.merge_grads(&routing, incoming)?;
            Ok(())
        },
    )
}

fn add_allreduce_issue<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "issue dense AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let flat = flatten_grads(&mut ctx.low.dense);
            ctx.allreduce = Some(ctx.global.all_reduce_cast_nonblocking(flat, wire));
            Ok(())
        },
    )
}

fn add_allreduce_claim<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], world: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "claim dense AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.allreduce.take().expect("allreduce issued");
            let flat = wait_logged(
                op,
                ctx.waits,
                "dense gradient AllReduce",
                SegmentKind::DenseSync,
                CommScope::Global,
            )?;
            let scale = ctx.inv_m / world as f32;
            write_back_grads(&mut ctx.low.dense, &flat, scale);
            Ok(())
        },
    )
}

/// Emits the `answer → [quantize] → issue rows` chain for micro-batch `b` and
/// returns the last node's id.
fn add_forward_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    dep: Id,
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_answer(g, &[dep], b);
    if !wire.is_identity() {
        prev = add_quantize_rows(g, &[prev], b, wire);
    }
    add_issue_rows(g, &[prev], b)
}

/// Emits the `claim rows → [dequantize] → compute → [quantize] → issue grads`
/// chain for micro-batch `b` and returns the last node's id.
fn add_compute_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    dep: Id,
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_claim_rows(g, &[dep], b);
    if !wire.is_identity() {
        prev = add_dequantize_rows(g, &[prev], b, wire);
    }
    prev = add_compute(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_quantize_grads(g, &[prev], b, wire);
    }
    add_issue_grads(g, &[prev], b)
}

/// Emits the `claim grads → [dequantize] → merge` chain for micro-batch `b`.
fn add_merge_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_claim_grads(g, deps, b);
    if !wire.is_identity() {
        prev = add_dequantize_grads(g, &[prev], b, wire);
    }
    add_merge(g, &[prev], b)
}

impl RankLowering for BaselineLowering {
    fn compute_label(&self) -> &'static str {
        "dense + sparse compute"
    }

    fn run_graph(
        &mut self,
        comm: &mut RankComms,
        mbs: Vec<Batch>,
        waits: &mut Vec<WaitEntry>,
    ) -> Result<IterationStats, DistributedError> {
        HasParameters::zero_grad(&mut self.dense);
        let m = mbs.len();
        let wire = self.wire;
        let world = comm.global.world_size();
        let schedule = self.schedule;
        let mut ctx = Ctx {
            low: self,
            global: &mut comm.global,
            waits,
            mbs: mbs
                .into_iter()
                .map(|batch| Mb {
                    batch,
                    routing: LookupRouting::default(),
                    replies: Vec::new(),
                    fetched: Vec::new(),
                    grad_bufs: Vec::new(),
                    incoming: Vec::new(),
                    idx_op: None,
                    rows_op: None,
                    grads_op: None,
                })
                .collect(),
            allreduce: None,
            inv_m: 1.0 / m as f32,
            loss_sum: 0.0,
            scores: Vec::new(),
            labels: Vec::new(),
        };

        let mut g: IterationGraph<Ctx> = IterationGraph::new();
        match schedule {
            // Blocking order: every claim directly follows its issue; the
            // AllReduce launches only after the embedding backward completes.
            ScheduleMode::Sync => {
                debug_assert_eq!(m, 1, "the sync schedule runs one micro-batch");
                let route = add_route(&mut g, &[], 0);
                let issued = add_forward_chain(&mut g, route, 0, wire);
                let computed = add_compute_chain(&mut g, issued, 0, wire);
                let merged = add_merge_chain(&mut g, &[computed], 0, wire);
                let ar = add_allreduce_issue(&mut g, &[merged], wire);
                add_allreduce_claim(&mut g, &[ar], world);
            }
            // Overlapped order: index exchanges prefetched for every
            // micro-batch (TorchRec's input-dist prefetch), answer `b+1`
            // overlaps row transfer `b`, dense compute `b` hides row transfer
            // `b+1` and gradient transfer `b-1`, and the dense AllReduce rides
            // under the gradient merges.
            ScheduleMode::Pipelined => {
                let mut routes = Vec::with_capacity(m);
                for b in 0..m {
                    routes.push(add_route(&mut g, &[], b));
                }
                let mut answered = Vec::with_capacity(m);
                for (b, &route) in routes.iter().enumerate() {
                    answered.push(add_forward_chain(&mut g, route, b, wire));
                }
                let mut computed = Vec::with_capacity(m);
                for (b, &ready) in answered.iter().enumerate() {
                    computed.push(add_compute_chain(&mut g, ready, b, wire));
                }
                let ar = add_allreduce_issue(&mut g, &[computed[m - 1]], wire);
                let mut merges = Vec::with_capacity(m);
                for (b, &issued) in computed.iter().enumerate() {
                    merges.push(add_merge_chain(&mut g, &[issued, ar], b, wire));
                }
                add_allreduce_claim(&mut g, &[ar, merges[m - 1]], world);
            }
        }
        g.run(&mut ctx)?;

        let Ctx {
            loss_sum,
            scores,
            labels,
            ..
        } = ctx;
        Ok(IterationStats {
            loss: loss_sum,
            auc: roc_auc(&scores, &labels),
        })
    }

    fn optimizer_step(&mut self) {
        self.adam.step(&mut self.dense);
        self.lookup.apply_rowwise_adagrad(self.learning_rate, 1e-8);
    }
}
