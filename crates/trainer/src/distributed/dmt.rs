//! Lowering of the Disaggregated Multi-Tower deployment (one tower per host)
//! onto the iteration-graph IR.
//!
//! The SPTT steps map 1:1 onto graph nodes: peer index distribution → intra-host
//! sharded lookup → tower module → compressed peer output exchange → replicated
//! dense stack → the backward mirror. As in [`super::baseline`], one set of node
//! bodies serves both schedules and only the emission *order* differs; the DMT
//! pipelined order has more overlap structure because its three communicator
//! worlds (peer, intra-host, global) are independent FIFO streams, so a peer
//! exchange, an intra-host exchange and the global dense AllReduce can all be on
//! the wire at once.
//!
//! Below FP32 wire precision, [`OpKind::Quantize`] / [`OpKind::Dequantize`]
//! nodes wrap the intra-host row/gradient exchanges and both peer `f32`
//! exchanges; the two AllReduces run as quantized-wire collectives. The peer
//! *index* distribution always rides native `u64` width.

use super::config::{DistributedConfig, DistributedError, ScheduleMode};
use super::executor::{self, IterationStats, RankLowering};
use super::export::RankExport;
use super::graph::{decode_shards, encode_shards, IterationGraph, NodeMeta, OpKind};
use super::measure::{wait_logged, CommScope, RankOutcome, WaitEntry};
use super::model::{
    flatten_grads, flatten_params, scale_grads, write_back_grads, DenseStack, LookupRouting,
    ShardedLookup,
};
use super::RankComms;
use dmt_comm::codec::WireFormat;
use dmt_comm::{Backend, PendingOp};
use dmt_commsim::SegmentKind;
use dmt_core::tower::TowerModule;
use dmt_core::DlrmTowerModule;
use dmt_data::Batch;
use dmt_metrics::auc::roc_auc;
use dmt_nn::param::HasParameters;
use dmt_nn::{AdamOptimizer, Optimizer};
use dmt_tensor::Tensor;

/// Static per-rank DMT layout: which features this rank's tower owns and how the
/// interaction geometry is laid out.
struct DmtLayout {
    groups: Vec<Vec<usize>>,
    my_features: Vec<usize>,
    my_host: usize,
    hosts: usize,
    tower_widths: Vec<usize>,
    num_units: usize,
}

fn layout(config: &DistributedConfig, rank: usize) -> Result<DmtLayout, DistributedError> {
    use dmt_topology::Rank;
    let schema = &config.schema;
    let cluster = &config.cluster;
    let hosts = cluster.num_hosts();
    let my_host = cluster.host_of(Rank(rank));
    // Tower feature groups, each sorted ascending (the wire order of every
    // exchange), and the interaction geometry — both from the shared helpers
    // the serving engine also builds on (`super::model`).
    let groups = super::model::tower_groups(schema.num_sparse(), hosts)?;
    let my_features = groups[my_host].clone();
    let (c, p, d) = (
        config.tower_ensemble_c,
        config.tower_ensemble_p,
        config.tower_output_dim,
    );
    let tower_widths = super::model::tower_widths(&groups, c, p, d);
    let num_units = super::model::tower_num_units(&groups, c, p);
    Ok(DmtLayout {
        groups,
        my_features,
        my_host,
        hosts,
        tower_widths,
        num_units,
    })
}

/// One rank of the Disaggregated Multi-Tower deployment. With `want_export`,
/// also returns this rank's contribution to a frozen model snapshot: its
/// intra-host table shards, the replicated tower module on each host's slot-0
/// rank, and the replicated dense stack on global rank 0.
pub(crate) fn dmt_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
    want_export: bool,
) -> Result<(RankOutcome, Option<RankExport>), DistributedError> {
    use dmt_topology::Rank;
    let mut lowering = DmtLowering::new(config, rank)?;
    let outcome = executor::run_rank(config, rank, comm, &mut lowering)?;
    let export = want_export.then(|| RankExport {
        dense_params: (rank == 0).then(|| flatten_params(&mut lowering.dense)),
        tower: (config.cluster.local_index(Rank(rank)) == 0)
            .then(|| (lowering.layout.my_host, flatten_params(&mut lowering.tower))),
        shards: lowering.lookup.export_shards(),
    });
    Ok((outcome, export))
}

/// Rank-local state of the DMT lowering: the tower's sharded tables, the
/// replicated tower module and the replicated dense stack.
struct DmtLowering {
    schedule: ScheduleMode,
    wire: WireFormat,
    layout: DmtLayout,
    n: usize,
    num_dense: usize,
    local_batch: usize,
    slots: usize,
    learning_rate: f32,
    lookup: ShardedLookup,
    tower: DlrmTowerModule,
    dense: DenseStack,
    adam_dense: AdamOptimizer,
    adam_tower: AdamOptimizer,
}

impl DmtLowering {
    fn new(config: &DistributedConfig, rank: usize) -> Result<Self, DistributedError> {
        use dmt_topology::Rank;
        use rand::SeedableRng;

        let schema = &config.schema;
        let cluster = &config.cluster;
        let n = config.hyper.embedding_dim;
        let slots = cluster.gpus_per_host();
        let layout = layout(config, rank)?;
        let (c, p, d) = (
            config.tower_ensemble_c,
            config.tower_ensemble_p,
            config.tower_output_dim,
        );
        // Tables of my tower, sharded across my host's ranks.
        let lookup = ShardedLookup::new(
            config.seed,
            schema,
            layout.my_features.clone(),
            n,
            slots,
            cluster.local_index(Rank(rank)),
        );
        // Tower module replicated across my host's ranks (same per-tower seed).
        let mut tower_rng =
            rand::rngs::StdRng::seed_from_u64(config.seed ^ ((layout.my_host as u64 + 1) * 7919));
        let tower = DlrmTowerModule::new(&mut tower_rng, layout.my_features.len(), n, c, p, d)
            .map_err(|e| DistributedError::Config {
                reason: e.to_string(),
            })?;
        let dense = DenseStack::new(
            config.seed,
            schema,
            config.arch,
            &config.hyper,
            d,
            layout.num_units,
        );
        Ok(Self {
            schedule: config.schedule,
            wire: config.wire_format(),
            layout,
            n,
            num_dense: schema.num_dense,
            local_batch: config.local_batch,
            slots,
            learning_rate: config.learning_rate,
            lookup,
            tower,
            dense,
            adam_dense: AdamOptimizer::new(config.learning_rate),
            adam_tower: AdamOptimizer::new(config.learning_rate),
        })
    }
}

/// Per-micro-batch DMT pipeline state. The staging fields are how payloads
/// cross node boundaries — and where the inserted `Quantize` / `Dequantize`
/// nodes transcode them in place.
struct Mb {
    batch: Batch,
    routing: LookupRouting,
    tower_bags: Vec<Vec<Vec<usize>>>,
    replies: Vec<Vec<f32>>,
    fetched: Vec<Vec<f32>>,
    out_sends: Vec<Vec<f32>>,
    out_recv: Vec<Vec<f32>>,
    grad_sends: Vec<Vec<f32>>,
    grad_recv: Vec<Vec<f32>>,
    grad_bufs: Vec<Vec<f32>>,
    incoming: Vec<Vec<f32>>,
    peer_idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    intra_idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    intra_rows_op: Option<PendingOp<Vec<Vec<f32>>>>,
    peer_out_op: Option<PendingOp<Vec<Vec<f32>>>>,
    peer_grad_op: Option<PendingOp<Vec<Vec<f32>>>>,
    intra_grads_op: Option<PendingOp<Vec<Vec<f32>>>>,
}

impl Mb {
    fn new(batch: Batch) -> Self {
        Self {
            batch,
            routing: LookupRouting::default(),
            tower_bags: Vec::new(),
            replies: Vec::new(),
            fetched: Vec::new(),
            out_sends: Vec::new(),
            out_recv: Vec::new(),
            grad_sends: Vec::new(),
            grad_recv: Vec::new(),
            grad_bufs: Vec::new(),
            incoming: Vec::new(),
            peer_idx_op: None,
            intra_idx_op: None,
            intra_rows_op: None,
            peer_out_op: None,
            peer_grad_op: None,
            intra_grads_op: None,
        }
    }
}

/// Everything one lowered DMT iteration mutates.
struct Ctx<'a> {
    low: &'a mut DmtLowering,
    comm: &'a mut RankComms,
    waits: &'a mut Vec<WaitEntry>,
    mbs: Vec<Mb>,
    tower_ar: Option<PendingOp<Vec<f32>>>,
    dense_ar: Option<PendingOp<Vec<f32>>>,
    inv_m: f32,
    loss_sum: f64,
    scores: Vec<f32>,
    labels: Vec<f32>,
}

type Id = super::StageId;

/// Selects a micro-batch's `Vec<Vec<f32>>` staging field — what the generic
/// quantize/dequantize node builders transcode.
type Stage = fn(&mut Mb) -> &mut Vec<Vec<f32>>;

/// Inserted only at sub-FP32 precisions: encodes a staged outgoing payload into
/// wire words before its exchange node sends it.
fn add_quantize<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
    stage: Stage,
    label: &'static str,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Quantize,
            label,
        },
        deps,
        move |ctx: &mut Ctx| {
            let field = stage(&mut ctx.mbs[b]);
            let payload = std::mem::take(field);
            *field = encode_shards(wire, payload);
            Ok(())
        },
    )
}

fn add_peer_route<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::IndexExchange,
            label: "encode + issue peer index AlltoAll",
        },
        deps,
        move |ctx: &mut Ctx| {
            let sends = {
                let batch = &ctx.mbs[b].batch;
                super::model::encode_tower_streams(&ctx.low.layout.groups, batch.len(), |f, s| {
                    batch.sparse[f][s].as_slice()
                })
            };
            ctx.mbs[b].peer_idx_op = Some(ctx.comm.peer.all_to_all_indices_nonblocking(sends));
            Ok(())
        },
    )
}

fn add_decode<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::IndexExchange,
            label: "claim peer indices + route intra",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].peer_idx_op.take().expect("peer idx issued");
            let incoming = wait_logged(
                op,
                ctx.waits,
                "peer index distribution AlltoAll",
                SegmentKind::EmbeddingComm,
                CommScope::Peer,
            )?;
            let mb_len = ctx.mbs[b].batch.len();
            // Training sources all carry the same micro-batch length.
            let tower_bags = super::model::decode_tower_streams(
                &incoming,
                ctx.low.layout.my_features.len(),
                &vec![mb_len; incoming.len()],
            );
            let requests = {
                let bags: Vec<&[Vec<usize>]> = tower_bags.iter().map(Vec::as_slice).collect();
                ctx.low.lookup.route(ctx.comm.intra.world_size(), &bags)
            };
            ctx.mbs[b].routing.request_keys = requests.clone();
            ctx.mbs[b].tower_bags = tower_bags;
            ctx.mbs[b].intra_idx_op = Some(ctx.comm.intra.all_to_all_indices_nonblocking(requests));
            Ok(())
        },
    )
}

fn add_answer<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::EmbeddingLookup,
            label: "claim intra indices + answer",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].intra_idx_op.take().expect("intra idx issued");
            // Shares the row-fetch label: index + rows form one lookup round
            // trip and merge into one measured segment (see `collect_comm_samples`).
            let incoming = wait_logged(
                op,
                ctx.waits,
                "intra-host row fetch AlltoAll (fwd)",
                SegmentKind::EmbeddingComm,
                CommScope::IntraHost,
            )?;
            ctx.mbs[b].replies = ctx.low.lookup.answer(&incoming)?;
            ctx.mbs[b].routing.served_keys = incoming;
            Ok(())
        },
    )
}

fn add_issue_rows<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::RowExchange,
            label: "issue intra rows",
        },
        deps,
        move |ctx: &mut Ctx| {
            let replies = std::mem::take(&mut ctx.mbs[b].replies);
            ctx.mbs[b].intra_rows_op = Some(ctx.comm.intra.all_to_all_nonblocking(replies));
            Ok(())
        },
    )
}

fn add_claim_rows<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::RowExchange,
            label: "claim intra rows",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].intra_rows_op.take().expect("intra rows issued");
            ctx.mbs[b].fetched = wait_logged(
                op,
                ctx.waits,
                "intra-host row fetch AlltoAll (fwd)",
                SegmentKind::EmbeddingComm,
                CommScope::IntraHost,
            )?;
            Ok(())
        },
    )
}

/// Inserted only at sub-FP32 precisions: decodes claimed row words (the
/// requester knows each owner's element count from its routing).
fn add_dequantize_rows<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize intra rows",
        },
        deps,
        move |ctx: &mut Ctx| {
            let n = ctx.low.n;
            let fetched = std::mem::take(&mut ctx.mbs[b].fetched);
            let keys = &ctx.mbs[b].routing.request_keys;
            let decoded = decode_shards(wire, fetched, |owner| keys[owner].len() * n)?;
            ctx.mbs[b].fetched = decoded;
            Ok(())
        },
    )
}

fn add_tower_fwd<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::TowerForward,
            label: "pool + tower fwd",
        },
        deps,
        move |ctx: &mut Ctx| {
            let fetched = std::mem::take(&mut ctx.mbs[b].fetched);
            let mb_len = ctx.mbs[b].batch.len();
            let hosts = ctx.low.layout.hosts;
            let w_mine = ctx.low.layout.tower_widths[ctx.low.layout.my_host];
            let sends = {
                let mb = &ctx.mbs[b];
                let bags: Vec<&[Vec<usize>]> = mb.tower_bags.iter().map(Vec::as_slice).collect();
                let embs = ctx.low.lookup.pool(&bags, &mb.routing, &fetched)?;
                let refs: Vec<&Tensor> = embs.iter().collect();
                let tower_input = Tensor::concat_cols(&refs)?;
                let tower_out = ctx.low.tower.forward(&tower_input)?;
                let out_data = tower_out.data();
                (0..hosts)
                    .map(|src| {
                        out_data[src * mb_len * w_mine..(src + 1) * mb_len * w_mine].to_vec()
                    })
                    .collect::<Vec<Vec<f32>>>()
            };
            ctx.mbs[b].out_sends = sends;
            Ok(())
        },
    )
}

fn add_issue_outputs<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::OutputExchange,
            label: "issue peer outputs",
        },
        deps,
        move |ctx: &mut Ctx| {
            let sends = std::mem::take(&mut ctx.mbs[b].out_sends);
            ctx.mbs[b].peer_out_op = Some(ctx.comm.peer.all_to_all_nonblocking(sends));
            Ok(())
        },
    )
}

fn add_claim_outputs<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::OutputExchange,
            label: "claim peer outputs",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].peer_out_op.take().expect("peer out issued");
            ctx.mbs[b].out_recv = wait_logged(
                op,
                ctx.waits,
                "peer tower-output AlltoAll (fwd)",
                SegmentKind::EmbeddingComm,
                CommScope::Peer,
            )?;
            Ok(())
        },
    )
}

fn add_dequantize_outputs<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize peer outputs",
        },
        deps,
        move |ctx: &mut Ctx| {
            let mb_len = ctx.mbs[b].batch.len();
            let widths = &ctx.low.layout.tower_widths;
            let received = std::mem::take(&mut ctx.mbs[b].out_recv);
            let decoded = decode_shards(wire, received, |t| mb_len * widths[t])?;
            ctx.mbs[b].out_recv = decoded;
            Ok(())
        },
    )
}

fn add_dense<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::DenseForwardBackward,
            label: "dense fwd/bwd",
        },
        deps,
        move |ctx: &mut Ctx| {
            let received = std::mem::take(&mut ctx.mbs[b].out_recv);
            let mb_len = ctx.mbs[b].batch.len();
            let tower_blocks: Vec<Tensor> = received
                .into_iter()
                .enumerate()
                .map(|(t, flat)| {
                    Tensor::from_vec(vec![mb_len, ctx.low.layout.tower_widths[t]], flat)
                })
                .collect::<Result<_, _>>()?;
            let refs: Vec<&Tensor> = tower_blocks.iter().collect();
            let feature_block = Tensor::concat_cols(&refs)?;
            let dense_input = Tensor::from_vec(
                vec![mb_len, ctx.low.num_dense],
                ctx.mbs[b].batch.dense_flat(),
            )?;
            // Exact per-sample weighting for unequal micro-batches (see the
            // baseline lowering); both factors are 1.0 under sync.
            let weight = mb_len as f32 / ctx.low.local_batch as f32;
            let (loss, predictions, grad_block) = ctx.low.dense.forward_backward(
                &dense_input,
                &feature_block,
                &ctx.mbs[b].batch.labels,
                weight / ctx.inv_m,
            )?;
            ctx.loss_sum += loss * f64::from(weight);
            ctx.scores.extend_from_slice(&predictions);
            ctx.labels.extend_from_slice(&ctx.mbs[b].batch.labels);
            let grad_pieces = grad_block.split_cols(&ctx.low.layout.tower_widths)?;
            ctx.mbs[b].grad_sends = grad_pieces.iter().map(|t| t.data().to_vec()).collect();
            Ok(())
        },
    )
}

fn add_issue_peer_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::OutputExchange,
            label: "issue peer grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let sends = std::mem::take(&mut ctx.mbs[b].grad_sends);
            ctx.mbs[b].peer_grad_op = Some(ctx.comm.peer.all_to_all_nonblocking(sends));
            Ok(())
        },
    )
}

fn add_claim_peer_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::OutputExchange,
            label: "claim peer grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b].peer_grad_op.take().expect("peer grad issued");
            ctx.mbs[b].grad_recv = wait_logged(
                op,
                ctx.waits,
                "peer tower-grad AlltoAll (bwd)",
                SegmentKind::EmbeddingComm,
                CommScope::Peer,
            )?;
            Ok(())
        },
    )
}

fn add_dequantize_peer_grads<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize peer grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let mb_len = ctx.mbs[b].batch.len();
            let w_mine = ctx.low.layout.tower_widths[ctx.low.layout.my_host];
            let received = std::mem::take(&mut ctx.mbs[b].grad_recv);
            let decoded = decode_shards(wire, received, |_| mb_len * w_mine)?;
            ctx.mbs[b].grad_recv = decoded;
            Ok(())
        },
    )
}

fn add_tower_bwd<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::TowerBackward,
            label: "tower bwd",
        },
        deps,
        move |ctx: &mut Ctx| {
            let received = std::mem::take(&mut ctx.mbs[b].grad_recv);
            let mb_len = ctx.mbs[b].batch.len();
            let hosts = ctx.low.layout.hosts;
            let w_mine = ctx.low.layout.tower_widths[ctx.low.layout.my_host];
            let mut grad_tower_out = Vec::with_capacity(hosts * mb_len * w_mine);
            for src in received {
                grad_tower_out.extend(src);
            }
            let grad_tower_out = Tensor::from_vec(vec![hosts * mb_len, w_mine], grad_tower_out)?;
            let grad_tower_input = ctx.low.tower.backward(&grad_tower_out)?;
            let mut grads =
                grad_tower_input.split_cols(&vec![ctx.low.n; ctx.low.layout.my_features.len()])?;
            if ctx.mbs.len() > 1 {
                scale_grads(&mut grads, ctx.inv_m);
            }
            ctx.mbs[b].grad_bufs = {
                let mb = &ctx.mbs[b];
                let bags: Vec<&[Vec<usize>]> = mb.tower_bags.iter().map(Vec::as_slice).collect();
                ctx.low.lookup.build_grad_bufs(&bags, &mb.routing, &grads)
            };
            Ok(())
        },
    )
}

fn add_issue_intra_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::GradExchange,
            label: "issue intra grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let bufs = std::mem::take(&mut ctx.mbs[b].grad_bufs);
            ctx.mbs[b].intra_grads_op = Some(ctx.comm.intra.all_to_all_nonblocking(bufs));
            Ok(())
        },
    )
}

fn add_claim_intra_grads<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::GradExchange,
            label: "claim intra grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.mbs[b]
                .intra_grads_op
                .take()
                .expect("intra grads issued");
            ctx.mbs[b].incoming = wait_logged(
                op,
                ctx.waits,
                "intra-host gradient AlltoAll (bwd)",
                SegmentKind::EmbeddingComm,
                CommScope::IntraHost,
            )?;
            Ok(())
        },
    )
}

fn add_dequantize_intra_grads<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::Dequantize,
            label: "dequantize intra grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let n = ctx.low.n;
            let incoming = std::mem::take(&mut ctx.mbs[b].incoming);
            let keys = &ctx.mbs[b].routing.served_keys;
            let decoded = decode_shards(wire, incoming, |src| keys[src].len() * n)?;
            ctx.mbs[b].incoming = decoded;
            Ok(())
        },
    )
}

fn add_merge<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], b: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::EmbeddingLookup,
            label: "merge intra grads",
        },
        deps,
        move |ctx: &mut Ctx| {
            let incoming = std::mem::take(&mut ctx.mbs[b].incoming);
            let routing = std::mem::take(&mut ctx.mbs[b].routing);
            ctx.low.lookup.merge_grads(&routing, incoming)?;
            Ok(())
        },
    )
}

// The AllReduces carry their codec inside the collective (`all_reduce_cast`,
// NCCL-datatype-style), so no separate Quantize/Dequantize node wraps them.

fn add_tower_ar_issue<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "issue tower AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let flat = flatten_grads(&mut ctx.low.tower);
            ctx.tower_ar = Some(ctx.comm.intra.all_reduce_cast_nonblocking(flat, wire));
            Ok(())
        },
    )
}

fn add_tower_ar_claim<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], slots: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "claim tower AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.tower_ar.take().expect("tower allreduce issued");
            let flat = wait_logged(
                op,
                ctx.waits,
                "tower-module intra-host AllReduce",
                SegmentKind::DenseSync,
                CommScope::IntraHost,
            )?;
            let scale = ctx.inv_m / slots as f32;
            write_back_grads(&mut ctx.low.tower, &flat, scale);
            Ok(())
        },
    )
}

fn add_dense_ar_issue<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    wire: WireFormat,
) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "issue dense AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let flat = flatten_grads(&mut ctx.low.dense);
            ctx.dense_ar = Some(ctx.comm.global.all_reduce_cast_nonblocking(flat, wire));
            Ok(())
        },
    )
}

fn add_dense_ar_claim<'g>(g: &mut IterationGraph<'g, Ctx<'_>>, deps: &[Id], world: usize) -> Id {
    g.add(
        NodeMeta {
            kind: OpKind::AllReduce,
            label: "claim dense AllReduce",
        },
        deps,
        move |ctx: &mut Ctx| {
            let op = ctx.dense_ar.take().expect("dense allreduce issued");
            let flat = wait_logged(
                op,
                ctx.waits,
                "dense gradient AllReduce",
                SegmentKind::DenseSync,
                CommScope::Global,
            )?;
            let scale = ctx.inv_m / world as f32;
            write_back_grads(&mut ctx.low.dense, &flat, scale);
            Ok(())
        },
    )
}

/// Emits the per-micro-batch forward chain `decode → answer → [quantize] →
/// issue rows → claim rows → [dequantize] → tower fwd → [quantize] → issue
/// outputs` and returns the last node's id.
fn add_forward_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    dep: Id,
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_decode(g, &[dep], b);
    prev = add_answer(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_quantize(
            g,
            &[prev],
            b,
            wire,
            |mb| &mut mb.replies,
            "quantize intra rows",
        );
    }
    prev = add_issue_rows(g, &[prev], b);
    prev = add_claim_rows(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_dequantize_rows(g, &[prev], b, wire);
    }
    prev = add_tower_fwd(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_quantize(
            g,
            &[prev],
            b,
            wire,
            |mb| &mut mb.out_sends,
            "quantize peer outputs",
        );
    }
    add_issue_outputs(g, &[prev], b)
}

/// Emits `claim outputs → [dequantize] → dense fwd/bwd → [quantize] → issue
/// peer grads` for micro-batch `b`.
fn add_dense_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    dep: Id,
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_claim_outputs(g, &[dep], b);
    if !wire.is_identity() {
        prev = add_dequantize_outputs(g, &[prev], b, wire);
    }
    prev = add_dense(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_quantize(
            g,
            &[prev],
            b,
            wire,
            |mb| &mut mb.grad_sends,
            "quantize peer grads",
        );
    }
    add_issue_peer_grads(g, &[prev], b)
}

/// Emits `claim peer grads → [dequantize] → tower bwd → [quantize] → issue
/// intra grads` for micro-batch `b`.
fn add_backward_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    dep: Id,
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_claim_peer_grads(g, &[dep], b);
    if !wire.is_identity() {
        prev = add_dequantize_peer_grads(g, &[prev], b, wire);
    }
    prev = add_tower_bwd(g, &[prev], b);
    if !wire.is_identity() {
        prev = add_quantize(
            g,
            &[prev],
            b,
            wire,
            |mb| &mut mb.grad_bufs,
            "quantize intra grads",
        );
    }
    add_issue_intra_grads(g, &[prev], b)
}

/// Emits `claim intra grads → [dequantize] → merge` for micro-batch `b`.
fn add_merge_chain<'g>(
    g: &mut IterationGraph<'g, Ctx<'_>>,
    deps: &[Id],
    b: usize,
    wire: WireFormat,
) -> Id {
    let mut prev = add_claim_intra_grads(g, deps, b);
    if !wire.is_identity() {
        prev = add_dequantize_intra_grads(g, &[prev], b, wire);
    }
    add_merge(g, &[prev], b)
}

impl RankLowering for DmtLowering {
    fn compute_label(&self) -> &'static str {
        "dense + tower-module compute"
    }

    fn run_graph(
        &mut self,
        comm: &mut RankComms,
        mbs: Vec<Batch>,
        waits: &mut Vec<WaitEntry>,
    ) -> Result<IterationStats, DistributedError> {
        HasParameters::zero_grad(&mut self.dense);
        HasParameters::zero_grad(&mut self.tower);
        let m = mbs.len();
        let wire = self.wire;
        let world = comm.global.world_size();
        let slots = self.slots;
        let schedule = self.schedule;
        let mut ctx = Ctx {
            low: self,
            comm,
            waits,
            mbs: mbs.into_iter().map(Mb::new).collect(),
            tower_ar: None,
            dense_ar: None,
            inv_m: 1.0 / m as f32,
            loss_sum: 0.0,
            scores: Vec::new(),
            labels: Vec::new(),
        };

        let mut g: IterationGraph<Ctx> = IterationGraph::new();
        match schedule {
            // Blocking order: each SPTT step completes before the next begins;
            // the two AllReduces run back to back after the backward.
            ScheduleMode::Sync => {
                debug_assert_eq!(m, 1, "the sync schedule runs one micro-batch");
                let peer_route = add_peer_route(&mut g, &[], 0);
                let forwarded = add_forward_chain(&mut g, peer_route, 0, wire);
                let densed = add_dense_chain(&mut g, forwarded, 0, wire);
                let backed = add_backward_chain(&mut g, densed, 0, wire);
                let merged = add_merge_chain(&mut g, &[backed], 0, wire);
                let tower_ar = add_tower_ar_issue(&mut g, &[merged], wire);
                let tower_done = add_tower_ar_claim(&mut g, &[tower_ar], slots);
                let dense_ar = add_dense_ar_issue(&mut g, &[tower_done], wire);
                add_dense_ar_claim(&mut g, &[dense_ar], world);
            }
            // Overlapped order: peer index exchanges prefetched for every
            // micro-batch; the forward chain (decode → answer → tower forward)
            // runs depth-first per micro-batch so micro-batch `b`'s tower
            // compute hides `b+1`'s peer index transfer and the in-flight peer
            // output exchanges; both AllReduces launch right after the last
            // backward and ride their own worlds under the gradient merges.
            ScheduleMode::Pipelined => {
                let mut peer_routes = Vec::with_capacity(m);
                for b in 0..m {
                    peer_routes.push(add_peer_route(&mut g, &[], b));
                }
                let mut forwarded = Vec::with_capacity(m);
                for (b, &route) in peer_routes.iter().enumerate() {
                    forwarded.push(add_forward_chain(&mut g, route, b, wire));
                }
                let mut densed = Vec::with_capacity(m);
                for (b, &fwd) in forwarded.iter().enumerate() {
                    densed.push(add_dense_chain(&mut g, fwd, b, wire));
                }
                let mut backed = Vec::with_capacity(m);
                for (b, &dense) in densed.iter().enumerate() {
                    backed.push(add_backward_chain(&mut g, dense, b, wire));
                }
                let tower_ar = add_tower_ar_issue(&mut g, &[backed[m - 1]], wire);
                let dense_ar = add_dense_ar_issue(&mut g, &[backed[m - 1]], wire);
                let mut merges = Vec::with_capacity(m);
                for (b, &issued) in backed.iter().enumerate() {
                    merges.push(add_merge_chain(&mut g, &[issued, dense_ar], b, wire));
                }
                add_tower_ar_claim(&mut g, &[tower_ar, merges[m - 1]], slots);
                add_dense_ar_claim(&mut g, &[dense_ar], world);
            }
        }
        g.run(&mut ctx)?;

        let Ctx {
            loss_sum,
            scores,
            labels,
            ..
        } = ctx;
        Ok(IterationStats {
            loss: loss_sum,
            auc: roc_auc(&scores, &labels),
        })
    }

    fn optimizer_step(&mut self) {
        self.adam_dense.step(&mut self.dense);
        self.adam_tower.step(&mut self.tower);
        self.lookup.apply_rowwise_adagrad(self.learning_rate, 1e-8);
    }
}
