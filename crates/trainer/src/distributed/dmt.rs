//! One rank of the Disaggregated Multi-Tower deployment (one tower per host), in
//! both schedules.
//!
//! The pipelined variant has more overlap structure than the baseline: its three
//! communicator worlds (peer, intra-host, global) are independent FIFO streams, so
//! a peer tower-output exchange, an intra-host gradient exchange and the global
//! dense AllReduce can all be on the wire at once — which is why DMT hides a
//! larger fraction of its (already smaller, intra-host-biased) communication than
//! the baseline can.

use super::config::{DistributedConfig, DistributedError, ScheduleMode};
use super::measure::{
    accumulate, wait_logged, zip_world, CommScope, RankOutcome, Recorder, SegmentSample, WaitEntry,
};
use super::model::{
    flatten_grads, scale_grads, sync_grads, write_back_grads, DenseStack, LookupRouting,
    ShardedLookup,
};
use super::pipeline::StageGraph;
use super::RankComms;
use dmt_comm::{Backend, PendingOp};
use dmt_commsim::SegmentKind;
use dmt_core::tower::TowerModule;
use dmt_core::{naive_partition, DlrmTowerModule};
use dmt_data::{Batch, SyntheticClickDataset};
use dmt_nn::param::HasParameters;
use dmt_nn::{AdamOptimizer, Optimizer};
use dmt_tensor::Tensor;
use std::time::Instant;

/// Static per-rank DMT layout: which features this rank's tower owns and how the
/// interaction geometry is laid out.
struct DmtLayout {
    groups: Vec<Vec<usize>>,
    my_features: Vec<usize>,
    my_host: usize,
    hosts: usize,
    tower_widths: Vec<usize>,
    num_units: usize,
}

fn layout(config: &DistributedConfig, rank: usize) -> Result<DmtLayout, DistributedError> {
    use dmt_topology::Rank;
    let schema = &config.schema;
    let cluster = &config.cluster;
    let hosts = cluster.num_hosts();
    let my_host = cluster.host_of(Rank(rank));
    let partition = naive_partition(schema.num_sparse(), hosts)?;
    // Tower feature groups, each sorted ascending (the wire order of every exchange).
    let groups: Vec<Vec<usize>> = partition
        .groups()
        .iter()
        .map(|g| {
            let mut g = g.clone();
            g.sort_unstable();
            g
        })
        .collect();
    if groups.iter().any(Vec::is_empty) {
        return Err(DistributedError::Config {
            reason: "every tower needs at least one feature".into(),
        });
    }
    let my_features = groups[my_host].clone();
    let (c, p, d) = (
        config.tower_ensemble_c,
        config.tower_ensemble_p,
        config.tower_output_dim,
    );
    // Interaction geometry, mirroring `RecommendationModel`: every tower contributes
    // `c * F_t + p` units of width D, plus the dense unit.
    let tower_widths: Vec<usize> = groups.iter().map(|g| d * (c * g.len() + p)).collect();
    let num_units = groups.iter().map(|g| c * g.len() + p).sum::<usize>() + 1;
    Ok(DmtLayout {
        groups,
        my_features,
        my_host,
        hosts,
        tower_widths,
        num_units,
    })
}

/// Encodes one micro-batch's bags for every tower as peer AlltoAll streams
/// (`len, idx...` per bag, feature-major within each tower's group).
fn encode_peer_sends(batch: &Batch, groups: &[Vec<usize>]) -> Vec<Vec<u64>> {
    groups
        .iter()
        .map(|group| {
            let mut stream = Vec::new();
            for &f in group {
                for bag in &batch.sparse[f] {
                    stream.push(bag.len() as u64);
                    stream.extend(bag.iter().map(|&i| i as u64));
                }
            }
            stream
        })
        .collect()
}

/// Decodes incoming peer streams into the combined tower batch: `hosts * b`
/// samples (source-host major), one bag list per tower feature.
fn decode_peer_streams(
    incoming: &[Vec<u64>],
    num_features: usize,
    b: usize,
) -> Vec<Vec<Vec<usize>>> {
    let tower_batch = incoming.len() * b;
    let mut tower_bags: Vec<Vec<Vec<usize>>> = vec![Vec::with_capacity(tower_batch); num_features];
    for stream in incoming {
        let mut cursor = 0usize;
        for bags in tower_bags.iter_mut() {
            for _ in 0..b {
                let len = stream[cursor] as usize;
                cursor += 1;
                bags.push(
                    stream[cursor..cursor + len]
                        .iter()
                        .map(|&v| v as usize)
                        .collect(),
                );
                cursor += len;
            }
        }
        debug_assert_eq!(cursor, stream.len());
    }
    tower_bags
}

/// One rank of the Disaggregated Multi-Tower deployment (one tower per host).
pub(crate) fn dmt_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    use dmt_topology::Rank;
    use rand::SeedableRng;

    let schema = &config.schema;
    let cluster = &config.cluster;
    let n = config.hyper.embedding_dim;
    let slots = cluster.gpus_per_host();
    let layout = layout(config, rank)?;
    let (c, p, d) = (
        config.tower_ensemble_c,
        config.tower_ensemble_p,
        config.tower_output_dim,
    );

    let mut data =
        SyntheticClickDataset::new(schema.clone(), config.seed ^ ((rank as u64 + 1) << 16));
    // Tables of my tower, sharded across my host's ranks.
    let mut lookup = ShardedLookup::new(
        config.seed,
        schema,
        layout.my_features.clone(),
        n,
        slots,
        cluster.local_index(Rank(rank)),
    );
    // Tower module replicated across my host's ranks (same per-tower seed).
    let mut tower_rng =
        rand::rngs::StdRng::seed_from_u64(config.seed ^ ((layout.my_host as u64 + 1) * 7919));
    let mut tower = DlrmTowerModule::new(&mut tower_rng, layout.my_features.len(), n, c, p, d)
        .map_err(|e| DistributedError::Config {
            reason: e.to_string(),
        })?;
    let mut dense = DenseStack::new(
        config.seed,
        schema,
        config.arch,
        &config.hyper,
        d,
        layout.num_units,
    );
    let mut adam_dense = AdamOptimizer::new(config.learning_rate);
    let mut adam_tower = AdamOptimizer::new(config.learning_rate);

    match config.schedule {
        ScheduleMode::Sync => dmt_sync(
            config,
            &layout,
            &mut data,
            &mut lookup,
            &mut tower,
            &mut dense,
            &mut adam_dense,
            &mut adam_tower,
            comm,
        ),
        ScheduleMode::Pipelined => dmt_pipelined(
            config,
            &layout,
            &mut data,
            &mut lookup,
            &mut tower,
            &mut dense,
            &mut adam_dense,
            &mut adam_tower,
            comm,
        ),
    }
}

/// The original blocking SPTT iteration — the bit-identical semantic reference.
#[allow(clippy::too_many_arguments)]
fn dmt_sync(
    config: &DistributedConfig,
    layout: &DmtLayout,
    data: &mut SyntheticClickDataset,
    lookup: &mut ShardedLookup,
    tower: &mut DlrmTowerModule,
    dense: &mut DenseStack,
    adam_dense: &mut AdamOptimizer,
    adam_tower: &mut AdamOptimizer,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let b = config.local_batch;
    let hosts = layout.hosts;
    let my_host = layout.my_host;

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    let mut wall_s = 0.0;
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        let mut rec = Recorder::default();
        HasParameters::zero_grad(dense);
        HasParameters::zero_grad(tower);
        let batch = data.next_batch(b);

        // SPTT step (a): ship each tower's indices to the same-slot rank on the
        // owning host — a peer AlltoAll of encoded bags.
        let sends = encode_peer_sends(&batch, &layout.groups);
        let incoming = rec.comm(
            "peer index distribution AlltoAll",
            SegmentKind::EmbeddingComm,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all_indices(sends),
        )?;

        // Decode into the combined tower batch: `hosts * b` samples (source-host
        // major), one bag list per tower feature.
        let tower_batch = hosts * b;
        let tower_bags = decode_peer_streams(&incoming, layout.my_features.len(), b);

        // SPTT step (d): intra-host sharded lookup of my tower's features.
        let bag_slices: Vec<&[Vec<usize>]> = tower_bags.iter().map(Vec::as_slice).collect();
        let feature_embs = lookup.fetch(&mut comm.intra, &bag_slices)?;
        rec.record_drained(
            "intra-host row fetch AlltoAll (fwd)",
            SegmentKind::EmbeddingComm,
            CommScope::IntraHost,
            &mut comm.intra,
        );
        let refs: Vec<&Tensor> = feature_embs.iter().collect();
        let tower_input = Tensor::concat_cols(&refs)?;

        // Tower module over the combined tower batch.
        let tower_out = tower.forward(&tower_input)?;
        let w_mine = layout.tower_widths[my_host];

        // SPTT step (f): return the compressed tower outputs to the sample owners —
        // the second peer AlltoAll, now carrying `D`-wide units instead of raw
        // embeddings.
        let out_data = tower_out.data();
        let sends: Vec<Vec<f32>> = (0..hosts)
            .map(|src| out_data[src * b * w_mine..(src + 1) * b * w_mine].to_vec())
            .collect();
        let received = rec.comm(
            "peer tower-output AlltoAll (fwd)",
            SegmentKind::EmbeddingComm,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all(sends),
        )?;
        let tower_blocks: Vec<Tensor> = received
            .into_iter()
            .enumerate()
            .map(|(t, flat)| Tensor::from_vec(vec![b, layout.tower_widths[t]], flat))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Tensor> = tower_blocks.iter().collect();
        let feature_block = Tensor::concat_cols(&refs)?;

        // Replicated dense stack on the local batch.
        let dense_input = Tensor::from_vec(vec![b, schema.num_dense], batch.dense_flat())?;
        let (loss, grad_block) =
            dense.forward_backward(&dense_input, &feature_block, &batch.labels, 1.0)?;
        losses.push(loss);

        // Backward peer AlltoAll: tower-output gradients back to the tower ranks.
        let grad_pieces = grad_block.split_cols(&layout.tower_widths)?;
        let sends: Vec<Vec<f32>> = grad_pieces.iter().map(|t| t.data().to_vec()).collect();
        let received = rec.comm(
            "peer tower-grad AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all(sends),
        )?;
        let mut grad_tower_out = Vec::with_capacity(tower_batch * w_mine);
        for src in received {
            grad_tower_out.extend(src);
        }
        let grad_tower_out = Tensor::from_vec(vec![tower_batch, w_mine], grad_tower_out)?;

        // Tower backward, then the intra-host gradient exchange to the row shards.
        let grad_tower_input = tower.backward(&grad_tower_out)?;
        let grads = grad_tower_input.split_cols(&vec![n; layout.my_features.len()])?;
        lookup.push_grads(&mut comm.intra, &bag_slices, &grads)?;
        rec.record_drained(
            "intra-host gradient AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            CommScope::IntraHost,
            &mut comm.intra,
        );

        // Tower-module gradients stay inside the host (§3.2, System Perspective).
        rec.comm(
            "tower-module intra-host AllReduce",
            SegmentKind::DenseSync,
            CommScope::IntraHost,
            &mut comm.intra,
            |backend| sync_grads(tower, backend),
        )?;
        // Shared dense stack synchronizes globally, as in the baseline.
        rec.comm(
            "dense gradient AllReduce",
            SegmentKind::DenseSync,
            CommScope::Global,
            &mut comm.global,
            |backend| sync_grads(dense, backend),
        )?;

        let opt_start = Instant::now();
        adam_dense.step(dense);
        adam_tower.step(tower);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let comm_s: f64 = rec.samples.iter().map(|s| s.time_s).sum();
        let iter_s = iter_start.elapsed().as_secs_f64();
        let compute_s = (iter_s - comm_s - opt_s).max(0.0);
        rec.push_compute("optimizer + host overhead", SegmentKind::Other, opt_s);
        let mut samples = vec![SegmentSample::compute(
            "dense + tower-module compute",
            SegmentKind::Compute,
            compute_s,
        )];
        samples.extend(rec.samples);
        accumulate(&mut totals, samples);
        wall_s += iter_s;
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
        wall_s,
    })
}

/// Per-micro-batch DMT pipeline state.
struct DmtMicroBatch {
    batch: Batch,
    routing: LookupRouting,
    tower_bags: Vec<Vec<Vec<usize>>>,
    peer_idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    intra_idx_op: Option<PendingOp<Vec<Vec<u64>>>>,
    intra_rows_op: Option<PendingOp<Vec<Vec<f32>>>>,
    peer_out_op: Option<PendingOp<Vec<Vec<f32>>>>,
    peer_grad_op: Option<PendingOp<Vec<Vec<f32>>>>,
    intra_grads_op: Option<PendingOp<Vec<Vec<f32>>>>,
}

/// The pipelined SPTT iteration: the peer, intra-host and global worlds are
/// independent streams, so transfers from all three overlap each other *and* the
/// tower/dense compute.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn dmt_pipelined(
    config: &DistributedConfig,
    layout: &DmtLayout,
    data: &mut SyntheticClickDataset,
    lookup: &mut ShardedLookup,
    tower: &mut DlrmTowerModule,
    dense: &mut DenseStack,
    adam_dense: &mut AdamOptimizer,
    adam_tower: &mut AdamOptimizer,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let m = config.effective_micro_batches();
    let inv_m = 1.0 / m as f32;
    let world = config.cluster.world_size();
    let slots = config.cluster.gpus_per_host();

    struct Ctx<'a> {
        layout: &'a DmtLayout,
        lookup: &'a mut ShardedLookup,
        tower: &'a mut DlrmTowerModule,
        dense: &'a mut DenseStack,
        comm: &'a mut RankComms,
        n: usize,
        num_dense: usize,
        inv_m: f32,
        local_batch: usize,
        mbs: Vec<DmtMicroBatch>,
        tower_ar: Option<PendingOp<Vec<f32>>>,
        dense_ar: Option<PendingOp<Vec<f32>>>,
        waits: Vec<WaitEntry>,
        loss_sum: f64,
    }

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    let mut wall_s = 0.0;
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        HasParameters::zero_grad(dense);
        HasParameters::zero_grad(tower);
        let batch = data.next_batch(config.local_batch);
        let mbs: Vec<DmtMicroBatch> = batch
            .split(m)
            .into_iter()
            .map(|batch| DmtMicroBatch {
                batch,
                routing: LookupRouting::default(),
                tower_bags: Vec::new(),
                peer_idx_op: None,
                intra_idx_op: None,
                intra_rows_op: None,
                peer_out_op: None,
                peer_grad_op: None,
                intra_grads_op: None,
            })
            .collect();
        let mut ctx = Ctx {
            layout,
            lookup,
            tower,
            dense,
            comm,
            n,
            num_dense: schema.num_dense,
            inv_m,
            local_batch: config.local_batch,
            mbs,
            tower_ar: None,
            dense_ar: None,
            waits: Vec::new(),
            loss_sum: 0.0,
        };

        let mut graph: StageGraph<Ctx> = StageGraph::new();
        // SPTT step (a), prefetched for every micro-batch: the peer index
        // distribution depends only on input data.
        let mut encode_ids = Vec::with_capacity(m);
        for b in 0..m {
            encode_ids.push(
                graph.add("issue peer index AlltoAll", &[], move |ctx: &mut Ctx| {
                    let sends = encode_peer_sends(&ctx.mbs[b].batch, &ctx.layout.groups);
                    ctx.mbs[b].peer_idx_op =
                        Some(ctx.comm.peer.all_to_all_indices_nonblocking(sends));
                    Ok(())
                }),
            );
        }
        // The forward chain (decode → answer → tower forward) is scheduled
        // depth-first per micro-batch: micro-batch b's tower compute then hides
        // micro-batch b+1's peer index transfer (the only stage with no earlier
        // compute to hide behind) as well as the in-flight peer output exchanges.
        let mut decode_ids = Vec::with_capacity(m);
        let mut answer_ids = Vec::with_capacity(m);
        let mut tower_fwd_ids = Vec::with_capacity(m);
        for b in 0..m {
            decode_ids.push(graph.add(
                "decode + issue intra index",
                &[encode_ids[b]],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].peer_idx_op.take().expect("peer idx issued");
                    let incoming = wait_logged(
                        op,
                        &mut ctx.waits,
                        "peer index distribution AlltoAll",
                        SegmentKind::EmbeddingComm,
                        CommScope::Peer,
                    )?;
                    let mb_len = ctx.mbs[b].batch.len();
                    let tower_bags =
                        decode_peer_streams(&incoming, ctx.layout.my_features.len(), mb_len);
                    let requests = {
                        let bags: Vec<&[Vec<usize>]> =
                            tower_bags.iter().map(Vec::as_slice).collect();
                        ctx.lookup.route(ctx.comm.intra.world_size(), &bags)
                    };
                    ctx.mbs[b].routing.request_keys = requests.clone();
                    ctx.mbs[b].tower_bags = tower_bags;
                    ctx.mbs[b].intra_idx_op =
                        Some(ctx.comm.intra.all_to_all_indices_nonblocking(requests));
                    Ok(())
                },
            ));
            // Answer the intra-host requests and launch the row fetch.
            answer_ids.push(graph.add(
                "answer + issue intra rows",
                &[decode_ids[b]],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].intra_idx_op.take().expect("intra idx issued");
                    let incoming = wait_logged(
                        op,
                        &mut ctx.waits,
                        "intra-host index AlltoAll (fwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::IntraHost,
                    )?;
                    let replies = ctx.lookup.answer(&incoming)?;
                    ctx.mbs[b].routing.served_keys = incoming;
                    ctx.mbs[b].intra_rows_op = Some(ctx.comm.intra.all_to_all_nonblocking(replies));
                    Ok(())
                },
            ));
            // Pool, run the tower module and launch the compressed peer output
            // exchange.
            tower_fwd_ids.push(graph.add(
                "tower fwd + issue peer outputs",
                &[answer_ids[b]],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].intra_rows_op.take().expect("intra rows issued");
                    let fetched = wait_logged(
                        op,
                        &mut ctx.waits,
                        "intra-host row fetch AlltoAll (fwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::IntraHost,
                    )?;
                    let mb_len = ctx.mbs[b].batch.len();
                    let hosts = ctx.layout.hosts;
                    let w_mine = ctx.layout.tower_widths[ctx.layout.my_host];
                    let sends = {
                        let mb = &ctx.mbs[b];
                        let bags: Vec<&[Vec<usize>]> =
                            mb.tower_bags.iter().map(Vec::as_slice).collect();
                        let embs = ctx.lookup.pool(&bags, &mb.routing, &fetched)?;
                        let refs: Vec<&Tensor> = embs.iter().collect();
                        let tower_input = Tensor::concat_cols(&refs)?;
                        let tower_out = ctx.tower.forward(&tower_input)?;
                        let out_data = tower_out.data();
                        (0..hosts)
                            .map(|src| {
                                out_data[src * mb_len * w_mine..(src + 1) * mb_len * w_mine]
                                    .to_vec()
                            })
                            .collect::<Vec<Vec<f32>>>()
                    };
                    ctx.mbs[b].peer_out_op = Some(ctx.comm.peer.all_to_all_nonblocking(sends));
                    Ok(())
                },
            ));
        }
        // Dense forward/backward over the local micro-batch; launch the tower-grad
        // return exchange.
        let mut dense_ids = Vec::with_capacity(m);
        for (b, &tower_fwd_id) in tower_fwd_ids.iter().enumerate() {
            dense_ids.push(graph.add(
                "dense fwd/bwd + issue peer grads",
                &[tower_fwd_id],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].peer_out_op.take().expect("peer out issued");
                    let received = wait_logged(
                        op,
                        &mut ctx.waits,
                        "peer tower-output AlltoAll (fwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::Peer,
                    )?;
                    let mb_len = ctx.mbs[b].batch.len();
                    let tower_blocks: Vec<Tensor> = received
                        .into_iter()
                        .enumerate()
                        .map(|(t, flat)| {
                            Tensor::from_vec(vec![mb_len, ctx.layout.tower_widths[t]], flat)
                        })
                        .collect::<Result<_, _>>()?;
                    let refs: Vec<&Tensor> = tower_blocks.iter().collect();
                    let feature_block = Tensor::concat_cols(&refs)?;
                    let dense_input = Tensor::from_vec(
                        vec![mb_len, ctx.num_dense],
                        ctx.mbs[b].batch.dense_flat(),
                    )?;
                    // Exact per-sample weighting for unequal micro-batches (see
                    // the baseline's compute stage): grad_scale pre-compensates
                    // the final 1/M averaging.
                    let weight = mb_len as f32 / ctx.local_batch as f32;
                    let (loss, grad_block) = ctx.dense.forward_backward(
                        &dense_input,
                        &feature_block,
                        &ctx.mbs[b].batch.labels,
                        weight / ctx.inv_m,
                    )?;
                    ctx.loss_sum += loss * f64::from(weight);
                    let grad_pieces = grad_block.split_cols(&ctx.layout.tower_widths)?;
                    let sends: Vec<Vec<f32>> =
                        grad_pieces.iter().map(|t| t.data().to_vec()).collect();
                    ctx.mbs[b].peer_grad_op = Some(ctx.comm.peer.all_to_all_nonblocking(sends));
                    Ok(())
                },
            ));
        }
        // Tower backward; launch the intra-host gradient exchange to the shards.
        let mut tower_bwd_ids = Vec::with_capacity(m);
        for (b, &dense_id) in dense_ids.iter().enumerate() {
            tower_bwd_ids.push(graph.add(
                "tower bwd + issue intra grads",
                &[dense_id],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b].peer_grad_op.take().expect("peer grad issued");
                    let received = wait_logged(
                        op,
                        &mut ctx.waits,
                        "peer tower-grad AlltoAll (bwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::Peer,
                    )?;
                    let mb_len = ctx.mbs[b].batch.len();
                    let hosts = ctx.layout.hosts;
                    let w_mine = ctx.layout.tower_widths[ctx.layout.my_host];
                    let mut grad_tower_out = Vec::with_capacity(hosts * mb_len * w_mine);
                    for src in received {
                        grad_tower_out.extend(src);
                    }
                    let grad_tower_out =
                        Tensor::from_vec(vec![hosts * mb_len, w_mine], grad_tower_out)?;
                    let grad_tower_input = ctx.tower.backward(&grad_tower_out)?;
                    let mut grads =
                        grad_tower_input.split_cols(&vec![ctx.n; ctx.layout.my_features.len()])?;
                    scale_grads(&mut grads, ctx.inv_m);
                    let grad_bufs = {
                        let mb = &ctx.mbs[b];
                        let bags: Vec<&[Vec<usize>]> =
                            mb.tower_bags.iter().map(Vec::as_slice).collect();
                        ctx.lookup.build_grad_bufs(&bags, &mb.routing, &grads)
                    };
                    ctx.mbs[b].intra_grads_op =
                        Some(ctx.comm.intra.all_to_all_nonblocking(grad_bufs));
                    Ok(())
                },
            ));
        }
        // Both AllReduces launch as soon as the last backward finishes; the tower
        // one rides the intra-host world, the dense one the global world, so they
        // overlap each other and every merge below.
        let last_bwd = tower_bwd_ids[m - 1];
        let ar_issue = graph.add(
            "issue tower + dense AllReduce",
            &[last_bwd],
            |ctx: &mut Ctx| {
                let tower_flat = flatten_grads(ctx.tower);
                ctx.tower_ar = Some(ctx.comm.intra.all_reduce_nonblocking(tower_flat));
                let dense_flat = flatten_grads(ctx.dense);
                ctx.dense_ar = Some(ctx.comm.global.all_reduce_nonblocking(dense_flat));
                Ok(())
            },
        );
        // Merge each micro-batch's sharded-embedding gradients on the owners.
        let mut merge_ids = Vec::with_capacity(m);
        for (b, &tower_bwd_id) in tower_bwd_ids.iter().enumerate() {
            merge_ids.push(graph.add(
                "merge intra grads",
                &[tower_bwd_id, ar_issue],
                move |ctx: &mut Ctx| {
                    let op = ctx.mbs[b]
                        .intra_grads_op
                        .take()
                        .expect("intra grads issued");
                    let incoming = wait_logged(
                        op,
                        &mut ctx.waits,
                        "intra-host gradient AlltoAll (bwd)",
                        SegmentKind::EmbeddingComm,
                        CommScope::IntraHost,
                    )?;
                    let routing = std::mem::take(&mut ctx.mbs[b].routing);
                    ctx.lookup.merge_grads(&routing, incoming)?;
                    Ok(())
                },
            ));
        }
        let last_merge = merge_ids[m - 1];
        graph.add("wait tower AllReduce", &[ar_issue, last_merge], {
            let scale = inv_m / slots as f32;
            move |ctx: &mut Ctx| {
                let op = ctx.tower_ar.take().expect("tower allreduce issued");
                let flat = wait_logged(
                    op,
                    &mut ctx.waits,
                    "tower-module intra-host AllReduce",
                    SegmentKind::DenseSync,
                    CommScope::IntraHost,
                )?;
                write_back_grads(ctx.tower, &flat, scale);
                Ok(())
            }
        });
        graph.add("wait dense AllReduce", &[ar_issue], {
            let scale = inv_m / world as f32;
            move |ctx: &mut Ctx| {
                let op = ctx.dense_ar.take().expect("dense allreduce issued");
                let flat = wait_logged(
                    op,
                    &mut ctx.waits,
                    "dense gradient AllReduce",
                    SegmentKind::DenseSync,
                    CommScope::Global,
                )?;
                write_back_grads(ctx.dense, &flat, scale);
                Ok(())
            }
        });
        graph.run(&mut ctx)?;

        let Ctx {
            waits, loss_sum, ..
        } = ctx;
        losses.push(loss_sum);

        let opt_start = Instant::now();
        adam_dense.step(dense);
        adam_tower.step(tower);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let iter_s = iter_start.elapsed().as_secs_f64();
        let mut comm_samples = Vec::new();
        zip_world(&mut comm_samples, &waits, CommScope::Peer, &mut comm.peer);
        zip_world(
            &mut comm_samples,
            &waits,
            CommScope::IntraHost,
            &mut comm.intra,
        );
        zip_world(
            &mut comm_samples,
            &waits,
            CommScope::Global,
            &mut comm.global,
        );
        // Straggler waits beyond the transfer duration fold into compute — the
        // sync path's convention — so breakdown totals stay comparable across
        // schedules on imbalanced ranks (the towers' feature counts differ).
        let exposed_s: f64 = comm_samples.iter().map(|s| s.exposed_s).sum();
        let compute_s = (iter_s - exposed_s - opt_s).max(0.0);
        let mut samples = vec![SegmentSample::compute(
            "dense + tower-module compute",
            SegmentKind::Compute,
            compute_s,
        )];
        samples.extend(comm_samples);
        samples.push(SegmentSample::compute(
            "optimizer + host overhead",
            SegmentKind::Other,
            opt_s,
        ));
        accumulate(&mut totals, samples);
        wall_s += iter_s;
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
        wall_s,
    })
}
