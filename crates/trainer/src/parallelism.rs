//! Alpa-style parallelism enumeration for the dense part (Figure 6).
//!
//! The paper uses Alpa to search data/tensor/pipeline parallelism meshes for DLRM's
//! dense component and finds that plain data parallelism is the fastest configuration —
//! the evidence that hybrid parallelism is already (near-)optimal and that further
//! gains must come from restructuring the model (DMT). This module enumerates the same
//! kinds of configurations over the simulated cluster and costs them analytically.

use crate::simulation::SimulationConfig;
use dmt_commsim::{collectives, CostModel};
use dmt_topology::ProcessGroup;
use serde::{Deserialize, Serialize};

/// The parallelism family of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelismKind {
    /// Pure data parallelism (replicated dense, AllReduce sync).
    Data,
    /// Tensor (intra-operator) parallelism over `degree` GPUs.
    Tensor,
    /// Pipeline (inter-operator) parallelism over `degree` stages.
    Pipeline,
    /// Hybrid: tensor parallelism inside a host, data parallelism across hosts.
    TensorDataHybrid,
}

/// One enumerated parallelism configuration and its simulated iteration latency for the
/// dense part of the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Parallelism family.
    pub kind: ParallelismKind,
    /// Parallel degree (model-parallel ways for tensor/pipeline, 1 for pure data).
    pub degree: usize,
    /// Simulated per-iteration latency of the dense component, in seconds.
    pub iteration_latency_s: f64,
}

/// Enumerates data / tensor / pipeline / hybrid configurations of the dense component
/// and costs each one, mirroring the mesh enumeration behind Figure 6.
///
/// Latency model per configuration (per iteration, dense part only). The key fact is
/// that with a fixed global batch the *total* dense compute is fixed, so per-GPU
/// compute is the same under every parallelism — model parallelism only changes what
/// is communicated:
///
/// * data parallelism pays one dense-gradient AllReduce;
/// * tensor parallelism pays activation AllGather/ReduceScatter traffic at every layer
///   boundary (plus a small fragmentation penalty on the GEMMs) and a smaller gradient
///   AllReduce;
/// * pipeline parallelism pays per-microbatch activation transfers plus the pipeline
///   bubble `(stages - 1) / microbatches`.
#[must_use]
pub fn enumerate_parallelism_configs(cfg: &SimulationConfig) -> Vec<ParallelismConfig> {
    let cluster = &cfg.cluster;
    let model = CostModel::new(cluster.clone());
    let global = ProcessGroup::global(cluster);
    let intra = &ProcessGroup::intra_host_groups(cluster)[0];
    let world = cluster.world_size();
    let compute = cfg.compute_time_s(1.0);
    let grad_bytes = cfg
        .gradient_quant
        .scale_fp32_bytes(cfg.model.dense_grad_bytes());
    // Activation volume crossing a model-parallel boundary: one hidden layer's worth of
    // activations for the local batch (hidden width ~1024 floats).
    let activation_bytes = cfg.local_batch as u64 * 1024 * 4;
    let microbatches = 8u64;

    let mut configs = Vec::new();

    // Pure data parallelism.
    let allreduce = collectives::all_reduce(&model, &global, grad_bytes);
    configs.push(ParallelismConfig {
        kind: ParallelismKind::Data,
        degree: 1,
        iteration_latency_s: compute + allreduce.time_s,
    });

    // Tensor parallelism with degrees 2..=gpus_per_host (kept inside a host, as Alpa's
    // best meshes do) and degree = world (fully global, clearly worse).
    let mut tensor_degrees: Vec<usize> = [2usize, 4, 8]
        .into_iter()
        .filter(|&d| d <= cluster.gpus_per_host())
        .collect();
    tensor_degrees.push(world);
    for degree in tensor_degrees {
        let group = if degree <= cluster.gpus_per_host() {
            intra
        } else {
            &global
        };
        // AllGather (forward) + ReduceScatter (backward) of activations at ~4 layer
        // boundaries in the MLP stack.
        let allgather = collectives::all_gather(&model, group, activation_bytes);
        let comm = 8.0 * allgather.time_s;
        // Fragmenting the GEMMs across `degree` devices costs some efficiency.
        let fragmented_compute = compute * (1.0 + 0.02 * degree as f64);
        // Gradient sync happens over the data-parallel replicas (world / degree) on a
        // 1/degree slice of the dense parameters.
        let allreduce = collectives::all_reduce(&model, &global, grad_bytes / degree as u64);
        configs.push(ParallelismConfig {
            kind: ParallelismKind::Tensor,
            degree,
            iteration_latency_s: fragmented_compute + comm + allreduce.time_s,
        });
    }

    // Pipeline parallelism with 2..=8 stages.
    for degree in [2usize, 4, 8] {
        if degree > world {
            continue;
        }
        // Per-microbatch activation transfer between adjacent stages (cross-host in the
        // worst case), plus the pipeline bubble.
        let p2p = collectives::broadcast(&model, &global, activation_bytes / microbatches);
        let transfer = p2p.time_s * microbatches as f64 * (degree - 1) as f64 / degree as f64;
        let bubble = (degree - 1) as f64 / microbatches as f64 * compute;
        let allreduce = collectives::all_reduce(&model, &global, grad_bytes / degree as u64);
        configs.push(ParallelismConfig {
            kind: ParallelismKind::Pipeline,
            degree,
            iteration_latency_s: compute + bubble + transfer + allreduce.time_s,
        });
    }

    // Hybrid: tensor parallel inside the host, data parallel across hosts.
    let degree = cluster.gpus_per_host();
    let allgather = collectives::all_gather(&model, intra, activation_bytes);
    let allreduce = collectives::all_reduce(&model, &global, grad_bytes / degree as u64);
    configs.push(ParallelismConfig {
        kind: ParallelismKind::TensorDataHybrid,
        degree,
        iteration_latency_s: compute * (1.0 + 0.02 * degree as f64)
            + 8.0 * allgather.time_s
            + allreduce.time_s,
    });

    configs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_models::PaperScaleSpec;
    use dmt_topology::HardwareGeneration;

    fn configs() -> Vec<ParallelismConfig> {
        let cfg =
            SimulationConfig::new(HardwareGeneration::A100, 64, PaperScaleSpec::dlrm()).unwrap();
        enumerate_parallelism_configs(&cfg)
    }

    #[test]
    fn enumeration_covers_all_families() {
        let configs = configs();
        assert!(configs.len() >= 6);
        for kind in [
            ParallelismKind::Data,
            ParallelismKind::Tensor,
            ParallelismKind::Pipeline,
            ParallelismKind::TensorDataHybrid,
        ] {
            assert!(configs.iter().any(|c| c.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn data_parallelism_wins_as_in_figure6() {
        let configs = configs();
        let best = configs
            .iter()
            .min_by(|a, b| {
                a.iteration_latency_s
                    .partial_cmp(&b.iteration_latency_s)
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best.kind, ParallelismKind::Data, "best was {best:?}");
    }

    #[test]
    fn all_latencies_are_positive_and_finite() {
        for c in configs() {
            assert!(
                c.iteration_latency_s.is_finite() && c.iteration_latency_s > 0.0,
                "{c:?}"
            );
        }
    }

    #[test]
    fn global_tensor_parallelism_is_the_worst_tensor_choice() {
        let configs = configs();
        let tensor: Vec<&ParallelismConfig> = configs
            .iter()
            .filter(|c| c.kind == ParallelismKind::Tensor)
            .collect();
        let global = tensor.iter().max_by_key(|c| c.degree).unwrap();
        let local = tensor.iter().min_by_key(|c| c.degree).unwrap();
        assert!(global.iteration_latency_s > local.iteration_latency_s);
    }
}
