//! Real CPU training loops for the quality experiments (Tables 2–6).

use dmt_core::{naive_partition, DmtConfig, TowerPartition, TowerPartitioner};
use dmt_data::{DatasetSchema, SyntheticClickDataset};
use dmt_metrics::{roc_auc, Summary};
use dmt_models::{ModelArch, ModelError, ModelHyperparams, RecommendationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one quality run (train on the synthetic click log, report AUC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityConfig {
    /// Model architecture.
    pub arch: ModelArch,
    /// Dense hyper-parameters.
    pub hyper: ModelHyperparams,
    /// Dataset schema.
    pub schema: DatasetSchema,
    /// Number of training steps.
    pub train_steps: usize,
    /// Batch size per step.
    pub batch_size: usize,
    /// Number of held-out evaluation samples.
    pub eval_samples: usize,
    /// Learning rate (Adam for dense, row-wise Adagrad for embeddings).
    pub learning_rate: f32,
    /// Dataset seed (fixed across repeated runs so only the model varies).
    pub data_seed: u64,
}

impl QualityConfig {
    /// A quick configuration used by unit tests and `--quick` experiment runs.
    #[must_use]
    pub fn quick(arch: ModelArch) -> Self {
        Self {
            arch,
            hyper: ModelHyperparams::tiny(),
            schema: DatasetSchema::criteo_like_small(),
            train_steps: 60,
            batch_size: 256,
            eval_samples: 4096,
            learning_rate: 1e-2,
            data_seed: 1234,
        }
    }

    /// The full configuration used by the experiment binaries (larger model, more
    /// steps; still CPU-scale).
    #[must_use]
    pub fn full(arch: ModelArch) -> Self {
        Self {
            arch,
            hyper: ModelHyperparams::quality_run(),
            schema: DatasetSchema::criteo_like_small(),
            train_steps: 400,
            batch_size: 512,
            eval_samples: 16_384,
            learning_rate: 1e-2,
            data_seed: 1234,
        }
    }

    /// Trains the baseline (single-tower) model with the given seed and returns the
    /// evaluation AUC.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the model cannot be built or trained.
    pub fn run_baseline(&self, model_seed: u64) -> Result<QualityResult, ModelError> {
        let mut rng = StdRng::seed_from_u64(model_seed);
        let model = RecommendationModel::baseline(&mut rng, &self.schema, self.arch, &self.hyper)?;
        self.train_and_evaluate(model)
    }

    /// Trains a DMT variant with the given partition and configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the model cannot be built or trained.
    pub fn run_dmt(
        &self,
        model_seed: u64,
        partition: TowerPartition,
        config: &DmtConfig,
    ) -> Result<QualityResult, ModelError> {
        let mut rng = StdRng::seed_from_u64(model_seed);
        let model = RecommendationModel::dmt(
            &mut rng,
            &self.schema,
            self.arch,
            &self.hyper,
            partition,
            config,
        )?;
        self.train_and_evaluate(model)
    }

    /// Builds a partition of the schema's features, either with the learned Tower
    /// Partitioner (probing a briefly pre-trained baseline model's embeddings) or the
    /// naive strided baseline.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if probing or partitioning fails.
    pub fn build_partition(
        &self,
        num_towers: usize,
        learned: bool,
        seed: u64,
    ) -> Result<TowerPartition, ModelError> {
        if !learned {
            return naive_partition(self.schema.num_sparse(), num_towers).map_err(ModelError::from);
        }
        // Probe: briefly train a baseline model so embeddings carry signal, then hand
        // the per-table mean embeddings to the Tower Partitioner.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probe_model =
            RecommendationModel::baseline(&mut rng, &self.schema, self.arch, &self.hyper)?;
        let mut data = SyntheticClickDataset::new(self.schema.clone(), self.data_seed);
        let probe_steps = (self.train_steps / 4).max(10);
        for _ in 0..probe_steps {
            let batch = data.next_batch(self.batch_size);
            probe_model.train_step(&batch, self.learning_rate)?;
        }
        let embeddings = probe_model.feature_embedding_probe(64);
        let partitioner = TowerPartitioner::new(num_towers).with_seed(seed);
        partitioner
            .partition_from_embeddings(&embeddings)
            .map_err(ModelError::from)
    }

    fn train_and_evaluate(
        &self,
        mut model: RecommendationModel,
    ) -> Result<QualityResult, ModelError> {
        let mut data = SyntheticClickDataset::new(self.schema.clone(), self.data_seed);
        let mut final_loss = f64::NAN;
        for _ in 0..self.train_steps {
            let batch = data.next_batch(self.batch_size);
            final_loss = model.train_step(&batch, self.learning_rate)?.loss;
        }
        let eval = data.next_batch(self.eval_samples.max(2));
        let predictions = model.predict(&eval)?;
        let auc = roc_auc(&predictions, &eval.labels).unwrap_or(0.5);
        Ok(QualityResult {
            auc,
            final_loss,
            parameters: model.parameter_count(),
            mflops_per_sample: model.flops_per_sample() as f64 / 1e6,
        })
    }

    /// Runs the baseline for several seeds and summarizes the AUCs (the paper reports
    /// the median and standard deviation over at least 9 runs).
    ///
    /// The per-seed runs are independent full training loops, so they fan out across
    /// threads; each run's batched forward/backward already uses the fused blocked
    /// kernels internally.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if any run fails.
    pub fn repeated_baseline(&self, seeds: &[u64]) -> Result<Summary, ModelError> {
        let aucs: Result<Vec<f64>, ModelError> = seeds
            .to_vec()
            .into_par_iter()
            .map_collect(|s| self.run_baseline(s).map(|r| r.auc))
            .into_iter()
            .collect();
        Ok(Summary::of(&aucs?).expect("at least one seed"))
    }
}

/// Outcome of one quality run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityResult {
    /// Evaluation ROC AUC on held-out synthetic samples.
    pub auc: f64,
    /// Training loss of the final step.
    pub final_loss: f64,
    /// Total trainable parameters of the trained model.
    pub parameters: usize,
    /// Analytic forward MFlops per sample of the trained model.
    pub mflops_per_sample: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::TowerModuleKind;

    #[test]
    fn baseline_quick_run_learns() {
        let cfg = QualityConfig::quick(ModelArch::Dlrm);
        let result = cfg.run_baseline(7).unwrap();
        assert!(result.auc > 0.58, "AUC {}", result.auc);
        assert!(result.final_loss.is_finite());
        assert!(result.parameters > 0);
    }

    #[test]
    fn dmt_quick_run_is_close_to_baseline() {
        // Table 3/4's qualitative claim at unit-test scale: the DMT variant's AUC is in
        // the same ballpark as the baseline (not collapsed to random).
        let cfg = QualityConfig::quick(ModelArch::Dlrm);
        let baseline = cfg.run_baseline(7).unwrap();
        let partition = cfg.build_partition(4, false, 7).unwrap();
        let dmt_cfg = DmtConfig::builder(4)
            .tower_module(TowerModuleKind::DlrmLinear)
            .tower_output_dim(8)
            .build()
            .unwrap();
        let dmt = cfg.run_dmt(7, partition, &dmt_cfg).unwrap();
        assert!(dmt.auc > 0.55, "DMT AUC {}", dmt.auc);
        assert!((baseline.auc - dmt.auc).abs() < 0.08);
    }

    #[test]
    fn learned_partition_covers_all_features() {
        let cfg = QualityConfig::quick(ModelArch::Dlrm);
        let partition = cfg.build_partition(4, true, 3).unwrap();
        assert_eq!(partition.num_towers(), 4);
        assert_eq!(partition.num_features(), cfg.schema.num_sparse());
        assert!(partition.imbalance() < 2.0);
    }

    #[test]
    fn repeated_runs_produce_a_summary() {
        let mut cfg = QualityConfig::quick(ModelArch::Dlrm);
        cfg.train_steps = 15;
        cfg.eval_samples = 1024;
        let summary = cfg.repeated_baseline(&[1, 2, 3]).unwrap();
        assert_eq!(summary.count, 3);
        assert!(summary.median > 0.5);
        assert!(summary.std_dev < 0.1);
    }
}
