//! Iteration-latency simulation of hybrid-parallel and DMT training.
//!
//! Both deployments are expressed as [`SpecNode`] sequences — the declarative
//! side of the iteration-graph IR in [`crate::distributed::graph`] — and priced
//! by one shared routine ([`SimulationConfig::timeline_from_spec`]): each comm
//! node declares its FP32 payload once, [`SpecNode::wire_bytes`] applies the
//! wire precision, and [`crate::distributed::graph::price_comm`] maps the
//! collective onto the α–β model (the same mapping the measured engine's
//! calibration twin uses). The hand-rolled per-segment byte arithmetic this file
//! used to carry lives in the spec now.

use crate::distributed::graph::{price_comm, OpKind, SpecNode};
use crate::distributed::CommScope;
use dmt_comm::CommOp;
use dmt_commsim::{collectives, CostModel, IterationTimeline, Quantization, Segment};
use dmt_models::PaperScaleSpec;
use dmt_topology::{
    ClusterTopology, HardwareGeneration, ProcessGroup, TopologyError, TowerPlacement,
};
use serde::{Deserialize, Serialize};

/// Fraction of the forward-pass FLOPs charged for forward + backward together.
const FWD_BWD_FLOP_FACTOR: f64 = 3.0;

/// Exposed fraction of the feature-distribution (input index) AlltoAll: largely hidden
/// behind the pipelined data-fetching of the strong baseline.
///
/// Shared with [`crate::distributed`] so measured and analytical timelines apply the
/// same overlap model.
pub const INPUT_DIST_EXPOSED: f64 = 0.2;

/// Exposed fraction of the embedding output / gradient exchanges: they sit on the
/// critical path between lookup and interaction.
///
/// Shared with [`crate::distributed`] so measured and analytical timelines apply the
/// same overlap model.
pub const EMBEDDING_EXCHANGE_EXPOSED: f64 = 1.0;

/// Exposed fraction of the dense-gradient AllReduce: mostly overlapped with the
/// backward pass.
///
/// Shared with [`crate::distributed`] so measured and analytical timelines apply the
/// same overlap model.
pub const DENSE_SYNC_EXPOSED: f64 = 0.25;

/// Fixed per-iteration host-side overhead (optimizer, data loading tail), seconds.
const OTHER_OVERHEAD_S: f64 = 1.0e-3;

/// Configuration of one simulated training deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// The simulated cluster.
    pub cluster: ClusterTopology,
    /// Paper-scale model characteristics.
    pub model: PaperScaleSpec,
    /// Per-GPU batch size (the paper fixes 16K for the throughput studies).
    pub local_batch: usize,
    /// Wire precision of the embedding exchanges (the strong baseline quantizes).
    pub embedding_quant: Quantization,
    /// Wire precision of the dense gradient synchronization.
    pub gradient_quant: Quantization,
}

impl SimulationConfig {
    /// Creates a config for `world_size` GPUs of `generation` running `model` with the
    /// paper's default local batch of 16K and FP16 communication quantization.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if `world_size` is zero or is larger than 8 but
    /// not a multiple of 8 (see [`ClusterTopology::standard`]).
    pub fn new(
        generation: HardwareGeneration,
        world_size: usize,
        model: PaperScaleSpec,
    ) -> Result<Self, TopologyError> {
        Ok(Self {
            cluster: ClusterTopology::standard(generation, world_size)?,
            model,
            local_batch: 16 * 1024,
            embedding_quant: Quantization::Fp16,
            gradient_quant: Quantization::Fp16,
        })
    }

    /// Overrides the local batch size.
    #[must_use]
    pub fn with_local_batch(mut self, local_batch: usize) -> Self {
        self.local_batch = local_batch.max(1);
        self
    }

    /// Overrides the communication quantization (both embeddings and gradients).
    #[must_use]
    pub fn with_quantization(mut self, quant: Quantization) -> Self {
        self.embedding_quant = quant;
        self.gradient_quant = quant;
        self
    }

    fn cost_model(&self) -> CostModel {
        CostModel::new(self.cluster.clone())
    }

    /// Dense compute time per iteration (forward + backward) in seconds, given a
    /// compute-scale factor (1.0 for the baseline, <1 for reduced-complexity DMT).
    #[must_use]
    pub fn compute_time_s(&self, compute_scale: f64) -> f64 {
        let flops = self.model.flops_per_sample()
            * compute_scale
            * FWD_BWD_FLOP_FACTOR
            * self.local_batch as f64;
        flops / self.cluster.spec().effective_flops()
    }

    /// Per-rank FP32 bytes of the pooled-embedding exchange for one iteration.
    #[must_use]
    pub fn embedding_exchange_bytes(&self) -> u64 {
        self.model.embedding_bytes_per_sample() * self.local_batch as u64
    }

    /// Per-rank bytes of the sparse-index distribution AlltoAll.
    #[must_use]
    pub fn index_distribution_bytes(&self) -> u64 {
        self.local_batch as u64 * self.model.num_sparse_features as u64 * 8
    }

    /// The lowered spec of one hybrid-parallel baseline iteration (Figure 4
    /// flow): every segment's kind, scope, collective, wire precision and FP32
    /// payload, declared once.
    #[must_use]
    pub fn baseline_spec(&self) -> Vec<SpecNode> {
        vec![
            SpecNode::local(
                OpKind::DenseForwardBackward,
                "dense + sparse compute",
                self.compute_time_s(1.0),
            ),
            // Step a: feature distribution (indices).
            SpecNode::comm(
                OpKind::IndexExchange,
                "feature distribution AlltoAll",
                CommScope::Global,
                CommOp::AllToAllIndices,
                self.embedding_quant,
                self.index_distribution_bytes(),
                INPUT_DIST_EXPOSED,
            ),
            // Step c: embedding output AlltoAll (forward) + gradient AlltoAll
            // (backward).
            SpecNode::comm(
                OpKind::RowExchange,
                "embedding output AlltoAll (fwd)",
                CommScope::Global,
                CommOp::AllToAll,
                self.embedding_quant,
                self.embedding_exchange_bytes(),
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
            SpecNode::comm(
                OpKind::GradExchange,
                "embedding gradient AlltoAll (bwd)",
                CommScope::Global,
                CommOp::AllToAll,
                self.embedding_quant,
                self.embedding_exchange_bytes(),
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
            SpecNode::comm(
                OpKind::AllReduce,
                "dense gradient AllReduce",
                CommScope::Global,
                CommOp::AllReduce,
                self.gradient_quant,
                self.model.dense_grad_bytes(),
                DENSE_SYNC_EXPOSED,
            ),
            SpecNode::local(
                OpKind::Optimizer,
                "optimizer + host overhead",
                OTHER_OVERHEAD_S,
            ),
        ]
    }

    /// The lowered spec of one DMT iteration (SPTT steps a–f plus tower modules).
    #[must_use]
    pub fn dmt_spec(&self, dmt: &DmtThroughputConfig) -> Vec<SpecNode> {
        let model = self.cost_model();
        let payload = self
            .embedding_quant
            .scale_fp32_bytes(self.embedding_exchange_bytes());
        // The compressed tower outputs, declared pre-quantization so the wire
        // scaling stays in `SpecNode::wire_bytes` like everywhere else.
        let peer_fp32 =
            (self.embedding_exchange_bytes() as f64 / dmt.compression_ratio).ceil() as u64;
        let mut nodes = vec![
            // Tower modules shrink the global interaction (Table 4's MFlops
            // column), so the dense compute scales by `compute_scale`.
            SpecNode::local(
                OpKind::DenseForwardBackward,
                "dense + tower-module compute",
                self.compute_time_s(dmt.compute_scale),
            ),
            // Step a: feature distribution, identical to the baseline.
            SpecNode::comm(
                OpKind::IndexExchange,
                "feature distribution AlltoAll",
                CommScope::Global,
                CommOp::AllToAllIndices,
                self.embedding_quant,
                self.index_distribution_bytes(),
                INPUT_DIST_EXPOSED,
            ),
            // Steps c + e: device-local shuffles (peer permute, transpose view).
            SpecNode::local(
                OpKind::Shuffle,
                "peer permute + local shuffle",
                2.0 * payload as f64 / model.local_copy_bandwidth(),
            ),
            // Step d: intra-host collective, forward and backward.
            SpecNode::comm(
                OpKind::RowExchange,
                "intra-host AlltoAll (fwd)",
                CommScope::IntraHost,
                CommOp::AllToAll,
                self.embedding_quant,
                self.embedding_exchange_bytes(),
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
            SpecNode::comm(
                OpKind::GradExchange,
                "intra-host AlltoAll (bwd)",
                CommScope::IntraHost,
                CommOp::AllToAll,
                self.embedding_quant,
                self.embedding_exchange_bytes(),
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
            // Step f: concurrent peer AlltoAlls of the compressed tower outputs,
            // forward and backward.
            SpecNode::comm(
                OpKind::OutputExchange,
                "peer AlltoAll (fwd)",
                CommScope::Peer,
                CommOp::AllToAll,
                self.embedding_quant,
                peer_fp32,
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
            SpecNode::comm(
                OpKind::OutputExchange,
                "peer AlltoAll (bwd)",
                CommScope::Peer,
                CommOp::AllToAll,
                self.embedding_quant,
                peer_fp32,
                EMBEDDING_EXCHANGE_EXPOSED,
            ),
        ];
        // Tower-module gradient synchronization stays inside the host (the point
        // of §3.2's "System Perspective"): a small intra-host AllReduce.
        if dmt.tower_module_params_m > 0.0 {
            nodes.push(SpecNode::comm(
                OpKind::AllReduce,
                "tower-module intra-host AllReduce",
                CommScope::IntraHost,
                CommOp::AllReduce,
                self.gradient_quant,
                (dmt.tower_module_params_m * 1e6) as u64 * 4,
                DENSE_SYNC_EXPOSED,
            ));
        }
        nodes.push(SpecNode::comm(
            OpKind::AllReduce,
            "dense gradient AllReduce",
            CommScope::Global,
            CommOp::AllReduce,
            self.gradient_quant,
            self.model.dense_grad_bytes(),
            DENSE_SYNC_EXPOSED,
        ));
        nodes.push(SpecNode::local(
            OpKind::Optimizer,
            "optimizer + host overhead",
            OTHER_OVERHEAD_S,
        ));
        nodes
    }

    /// Prices a lowered spec into an [`IterationTimeline`]: local nodes keep
    /// their declared durations, comm nodes are priced from their
    /// [`SpecNode::wire_bytes`] over the scope's process group (peer-scope
    /// AlltoAlls run as the gang of concurrent per-slot exchanges).
    #[must_use]
    pub fn timeline_from_spec(&self, nodes: &[SpecNode]) -> IterationTimeline {
        let model = self.cost_model();
        let global = ProcessGroup::global(&self.cluster);
        let intra_groups = ProcessGroup::intra_host_groups(&self.cluster);
        let peer_groups = ProcessGroup::peer_groups(&self.cluster);
        let mut timeline = IterationTimeline::new();
        for node in nodes {
            let time_s = match (node.scope, node.comm) {
                (CommScope::Peer, Some(CommOp::AllToAll | CommOp::AllToAllIndices)) => {
                    collectives::concurrent_peer_all_to_alls(
                        &model,
                        &peer_groups,
                        node.wire_bytes(),
                    )
                    .time_s
                }
                (scope, Some(op)) => {
                    let group = match scope {
                        CommScope::Global => &global,
                        CommScope::IntraHost => &intra_groups[0],
                        CommScope::Peer => &peer_groups[0],
                        CommScope::Local => unreachable!("local nodes carry no collective"),
                    };
                    price_comm(&model, group, op, node.wire_bytes()).time_s
                }
                (_, None) => node.local_time_s,
            };
            timeline.push(Segment::new(
                node.kind.segment_kind(),
                node.label,
                time_s,
                node.exposed,
            ));
        }
        timeline
    }

    /// Simulates one iteration of the hybrid-parallel strong baseline (Figure 4 flow).
    #[must_use]
    pub fn simulate_baseline_iteration(&self) -> IterationTimeline {
        self.timeline_from_spec(&self.baseline_spec())
    }

    /// Simulates one iteration of DMT training (SPTT steps a–f plus tower modules).
    #[must_use]
    pub fn simulate_dmt_iteration(&self, dmt: &DmtThroughputConfig) -> IterationTimeline {
        self.timeline_from_spec(&self.dmt_spec(dmt))
    }

    /// Samples per second per GPU for a given iteration timeline.
    #[must_use]
    pub fn throughput_samples_per_sec(&self, timeline: &IterationTimeline) -> f64 {
        self.local_batch as f64 / timeline.breakdown().total_s()
    }
}

/// Throughput-relevant description of a DMT variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmtThroughputConfig {
    /// Number of towers (normally one per host).
    pub num_towers: usize,
    /// Cross-host compression ratio achieved by the tower modules (1.0 = SPTT only).
    pub compression_ratio: f64,
    /// Dense-compute scale of the DMT variant relative to the baseline (Table 4's
    /// MFlops ratio; 1.0 = SPTT only).
    pub compute_scale: f64,
    /// Tower-module parameters in millions (synchronized intra-host).
    pub tower_module_params_m: f64,
}

impl DmtThroughputConfig {
    /// SPTT-only configuration: no tower modules, no compression, unchanged compute.
    #[must_use]
    pub fn sptt_only(cfg: &SimulationConfig) -> Self {
        Self {
            num_towers: cfg.cluster.num_hosts(),
            compression_ratio: 1.0,
            compute_scale: 1.0,
            tower_module_params_m: 0.0,
        }
    }

    /// The paper's default DMT configuration for the given deployment: one tower per
    /// host, tower modules with a compression ratio of 2, and the Table 4 compute
    /// reduction (DLRM 14.74 → 8.95 MFlops; DCN's reduction varies with tower count, a
    /// representative 0.65 is used).
    #[must_use]
    pub fn paper_default(cfg: &SimulationConfig) -> Self {
        let compute_scale = match cfg.model.arch {
            dmt_models::ModelArch::Dlrm => 8.95 / 14.74,
            dmt_models::ModelArch::Dcn => 0.65,
        };
        Self {
            num_towers: cfg.cluster.num_hosts(),
            compression_ratio: 2.0,
            compute_scale,
            tower_module_params_m: 2.0,
        }
    }

    /// Overrides the compression ratio.
    #[must_use]
    pub fn with_compression_ratio(mut self, ratio: f64) -> Self {
        self.compression_ratio = ratio.max(1e-6);
        self
    }

    /// The tower placement corresponding to this configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the tower count does not divide the host count.
    pub fn placement(&self, cluster: &ClusterTopology) -> Result<TowerPlacement, TopologyError> {
        TowerPlacement::with_towers(cluster, self.num_towers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(
        generation: HardwareGeneration,
        world: usize,
        model: PaperScaleSpec,
    ) -> SimulationConfig {
        SimulationConfig::new(generation, world, model).unwrap()
    }

    #[test]
    fn figure1_breakdown_shape() {
        // DCN on 64 H100s: compute dominates (~70%), exposed embedding communication is
        // the next biggest component (~25-30%), dense sync is small.
        let cfg = config(HardwareGeneration::H100, 64, PaperScaleSpec::dcn());
        let b = cfg.simulate_baseline_iteration().breakdown();
        let fractions = b.fractions();
        assert!(
            fractions[0] > 0.55 && fractions[0] < 0.85,
            "compute fraction {}",
            fractions[0]
        );
        assert!(
            fractions[1] > 0.15 && fractions[1] < 0.40,
            "embedding fraction {}",
            fractions[1]
        );
        assert!(fractions[2] < 0.10, "dense sync fraction {}", fractions[2]);
    }

    #[test]
    fn figure13_dmt_improves_both_compute_and_comm() {
        let cfg = config(HardwareGeneration::H100, 64, PaperScaleSpec::dcn());
        let baseline = cfg.simulate_baseline_iteration().breakdown();
        let dmt = cfg
            .simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg))
            .breakdown();
        assert!(dmt.compute_s < baseline.compute_s);
        assert!(dmt.embedding_comm_s < baseline.embedding_comm_s / 2.0);
        assert!(dmt.total_s() < baseline.total_s());
    }

    #[test]
    fn figure10_speedup_grows_with_scale_for_dlrm() {
        let mut previous = 0.0;
        for world in [64usize, 128, 256, 512] {
            let cfg = config(HardwareGeneration::A100, world, PaperScaleSpec::dlrm());
            let baseline = cfg.simulate_baseline_iteration().breakdown();
            let dmt = cfg
                .simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg))
                .breakdown();
            let speedup = dmt.speedup_over(&baseline);
            assert!(speedup > 1.0, "world {world}: speedup {speedup}");
            assert!(
                speedup >= previous * 0.95,
                "speedup should broadly grow with scale"
            );
            previous = speedup;
        }
        // At the largest scale the speedup lands in the paper's 1.5-2.0x band.
        assert!(
            previous > 1.4 && previous < 2.2,
            "512-GPU speedup was {previous}"
        );
    }

    #[test]
    fn sptt_only_beats_baseline_but_less_than_full_dmt() {
        let cfg = config(HardwareGeneration::A100, 256, PaperScaleSpec::dlrm());
        let baseline = cfg.simulate_baseline_iteration().breakdown();
        let sptt = cfg
            .simulate_dmt_iteration(&DmtThroughputConfig::sptt_only(&cfg))
            .breakdown();
        let full = cfg
            .simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg))
            .breakdown();
        assert!(sptt.total_s() < baseline.total_s());
        assert!(full.total_s() < sptt.total_s());
    }

    #[test]
    fn figure12_higher_compression_means_more_speedup() {
        let cfg = config(HardwareGeneration::V100, 64, PaperScaleSpec::dlrm());
        let sptt = cfg
            .simulate_dmt_iteration(&DmtThroughputConfig::sptt_only(&cfg))
            .breakdown();
        let mut previous = 0.0;
        for cr in [2.0, 4.0, 8.0, 16.0] {
            let dmt = cfg
                .simulate_dmt_iteration(
                    &DmtThroughputConfig::paper_default(&cfg).with_compression_ratio(cr),
                )
                .breakdown();
            let speedup = sptt.total_s() / dmt.total_s();
            assert!(speedup > previous, "CR {cr} should speed up further");
            previous = speedup;
        }
        assert!(previous > 1.1);
    }

    #[test]
    fn xlrm_gains_less_because_it_is_compute_bound() {
        let cfg_xlrm = config(HardwareGeneration::A100, 128, PaperScaleSpec::xlrm());
        let cfg_dlrm = config(HardwareGeneration::A100, 128, PaperScaleSpec::dlrm());
        let speedup = |cfg: &SimulationConfig| {
            let baseline = cfg.simulate_baseline_iteration().breakdown();
            let dmt = cfg
                .simulate_dmt_iteration(&DmtThroughputConfig {
                    compute_scale: 1.0,
                    ..DmtThroughputConfig::paper_default(cfg)
                })
                .breakdown();
            dmt.speedup_over(&baseline)
        };
        assert!(speedup(&cfg_xlrm) < speedup(&cfg_dlrm));
    }

    #[test]
    fn throughput_is_batch_over_latency() {
        let cfg = config(HardwareGeneration::A100, 64, PaperScaleSpec::dlrm());
        let timeline = cfg.simulate_baseline_iteration();
        let thr = cfg.throughput_samples_per_sec(&timeline);
        assert!((thr - cfg.local_batch as f64 / timeline.breakdown().total_s()).abs() < 1e-9);
        assert!(thr > 0.0);
    }

    #[test]
    fn quantization_reduces_exchange_time() {
        let fp32 = config(HardwareGeneration::A100, 64, PaperScaleSpec::dlrm())
            .with_quantization(Quantization::Fp32);
        let fp8 = config(HardwareGeneration::A100, 64, PaperScaleSpec::dlrm())
            .with_quantization(Quantization::Fp8);
        let b32 = fp32.simulate_baseline_iteration().breakdown();
        let b8 = fp8.simulate_baseline_iteration().breakdown();
        assert!(b8.embedding_comm_s < b32.embedding_comm_s / 2.0);
    }

    #[test]
    fn placement_matches_tower_count() {
        let cfg = config(HardwareGeneration::A100, 64, PaperScaleSpec::dlrm());
        let dmt = DmtThroughputConfig::paper_default(&cfg);
        let placement = dmt.placement(&cfg.cluster).unwrap();
        assert_eq!(placement.num_towers(), 8);
    }
}
