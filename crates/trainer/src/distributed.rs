//! Real thread-per-rank distributed training — the executable counterpart of
//! [`crate::simulation`].
//!
//! Where the simulator *predicts* iteration latency from an α–β cost model, this
//! module *runs* the two deployments for real on a [`dmt_comm::SharedMemoryComm`]
//! world mapped onto a [`ClusterTopology`]:
//!
//! * **Baseline (hybrid parallel)** — every embedding table is row-sharded across
//!   all `W` ranks; each iteration does a global index AlltoAll, a global row-fetch
//!   AlltoAll, local pooling, a replicated dense forward/backward, a global gradient
//!   AlltoAll back to the row owners and a global dense AllReduce.
//! * **DMT** — features are partitioned into one tower per host. Each rank first
//!   sends its samples' indices to the same-slot rank of the owning tower's host (a
//!   *peer* AlltoAll, world = `num_hosts`), looks rows up from tables sharded across
//!   its *own host's* ranks (an *intra-host* AlltoAll, world = `gpus_per_host`),
//!   runs the tower module over the combined tower batch, and returns the
//!   *compressed* tower outputs through a second peer AlltoAll. Tower-module
//!   gradients synchronize intra-host; only the shared dense stack crosses the
//!   global world.
//!
//! Both modes produce a *measured* [`IterationTimeline`] whose segments carry real
//! wall-clock durations plus exact per-link-class byte counts, so a run can be laid
//! side by side with the analytical simulator ([`predicted_timeline`] /
//! [`calibrate`]) — the built-in calibration check that the measured engine and the
//! cost model agree on the paper's core claim: DMT moves its bytes off the scale-out
//! links, so its exposed-communication share shrinks.
//!
//! Determinism: collectives fold in rank order (see `dmt-comm`), every model replica
//! is seeded identically, and per-rank work is single-threaded, so two runs of the
//! same configuration produce bit-identical losses.

use crate::simulation::{DENSE_SYNC_EXPOSED, EMBEDDING_EXCHANGE_EXPOSED, INPUT_DIST_EXPOSED};
use dmt_comm::{Backend, CommError, CommOp, FabricProfile, SharedMemoryBackend, SharedMemoryComm};
use dmt_commsim::{
    collectives, CostModel, IterationTimeline, LatencyBreakdown, Segment, SegmentKind,
};
use dmt_core::tower::TowerModule;
use dmt_core::{naive_partition, DlrmTowerModule, DmtError};
use dmt_data::{Batch, DatasetSchema, SyntheticClickDataset};
use dmt_models::{ModelArch, ModelHyperparams};
use dmt_nn::param::HasParameters;
use dmt_nn::{
    AdamOptimizer, BceWithLogitsLoss, CrossNet, DotInteraction, Mlp, Optimizer, Parameter,
    ShardedEmbeddingTable,
};
use dmt_tensor::{Tensor, TensorError};
use dmt_topology::{ClusterTopology, ProcessGroup, TopologyError};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Errors produced while configuring or running the distributed engine.
#[derive(Debug)]
pub enum DistributedError {
    /// A collective failed.
    Comm(CommError),
    /// A tensor shape mismatch inside a rank's local compute.
    Tensor(TensorError),
    /// The cluster shape was invalid.
    Topology(TopologyError),
    /// The configuration cannot be executed (e.g. more towers than features).
    Config {
        /// Explanation of the problem.
        reason: String,
    },
    /// A rank thread died.
    Rank {
        /// The global rank that failed.
        rank: usize,
        /// Panic or join failure description.
        message: String,
    },
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::Comm(e) => write!(f, "collective failed: {e}"),
            DistributedError::Tensor(e) => write!(f, "tensor error: {e}"),
            DistributedError::Topology(e) => write!(f, "topology error: {e}"),
            DistributedError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            DistributedError::Rank { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<CommError> for DistributedError {
    fn from(value: CommError) -> Self {
        DistributedError::Comm(value)
    }
}

impl From<TensorError> for DistributedError {
    fn from(value: TensorError) -> Self {
        DistributedError::Tensor(value)
    }
}

impl From<TopologyError> for DistributedError {
    fn from(value: TopologyError) -> Self {
        DistributedError::Topology(value)
    }
}

impl From<DmtError> for DistributedError {
    fn from(value: DmtError) -> Self {
        DistributedError::Config {
            reason: value.to_string(),
        }
    }
}

/// Which deployment the engine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Hybrid-parallel strong baseline: globally sharded tables, global exchanges.
    Baseline,
    /// Disaggregated Multi-Tower: one tower per host, peer + intra-host exchanges.
    Dmt,
}

/// Configuration of one distributed engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Cluster the rank threads are mapped onto (one thread per GPU rank).
    pub cluster: ClusterTopology,
    /// Dataset schema (defines the embedding tables).
    pub schema: DatasetSchema,
    /// Interaction architecture of the dense stack.
    pub arch: ModelArch,
    /// Dense hyper-parameters.
    pub hyper: ModelHyperparams,
    /// Per-rank batch size.
    pub local_batch: usize,
    /// Training iterations to run and average over.
    pub iterations: usize,
    /// Learning rate (Adam for dense parameters, row-wise Adagrad for embeddings).
    pub learning_rate: f32,
    /// Tower-module output feature dimension `D` (DMT mode).
    pub tower_output_dim: usize,
    /// Tower-module ensemble parameter `c` (per-feature projections; DMT mode).
    pub tower_ensemble_c: usize,
    /// Tower-module ensemble parameter `p` (flat projections; DMT mode).
    pub tower_ensemble_p: usize,
    /// Fabric pacing applied to every collective (see [`FabricProfile`]).
    pub fabric: FabricProfile,
    /// Base seed for model initialization and per-rank data streams.
    pub seed: u64,
}

impl DistributedConfig {
    /// A small configuration over `cluster` that runs in CPU-test time: the reduced
    /// Criteo-like schema, tiny dense stack, 64-sample local batches and maximally
    /// compressing tower modules (`c = 0`, `p = 1`).
    #[must_use]
    pub fn quick(cluster: ClusterTopology, arch: ModelArch) -> Self {
        Self {
            cluster,
            schema: DatasetSchema::criteo_like_small(),
            arch,
            hyper: ModelHyperparams::tiny(),
            local_batch: 64,
            iterations: 4,
            learning_rate: 1e-2,
            tower_output_dim: 16,
            tower_ensemble_c: 0,
            tower_ensemble_p: 1,
            fabric: FabricProfile::unthrottled(),
            seed: 7,
        }
    }

    /// Overrides the fabric profile.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricProfile) -> Self {
        self.fabric = fabric;
        self
    }

    /// Overrides the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Overrides the per-rank batch size.
    #[must_use]
    pub fn with_local_batch(mut self, local_batch: usize) -> Self {
        self.local_batch = local_batch.max(1);
        self
    }

    /// Number of towers in DMT mode (the paper's default: one per host).
    #[must_use]
    pub fn num_towers(&self) -> usize {
        self.cluster.num_hosts()
    }
}

/// Which communicator world a measured segment ran over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// Rank-local compute, no communicator.
    Local,
    /// The global world (all ranks).
    Global,
    /// One host's ranks.
    IntraHost,
    /// Same-slot ranks across hosts (SPTT peer group).
    Peer,
}

/// One measured timeline segment, averaged over the run's iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSegment {
    /// Human-readable label.
    pub label: String,
    /// Latency category (matches the analytical simulator's segments).
    pub kind: SegmentKind,
    /// Fraction of the duration exposed on the critical path (same overlap model as
    /// the simulator).
    pub exposed_fraction: f64,
    /// Measured mean wall-clock seconds per iteration (slowest rank).
    pub time_s: f64,
    /// Mean per-rank payload bytes per iteration.
    pub payload_bytes: u64,
    /// Mean per-rank bytes crossing scale-out (cross-host) links per iteration.
    pub cross_host_bytes: u64,
    /// Mean per-rank bytes crossing scale-up (intra-host) links per iteration.
    pub intra_host_bytes: u64,
    /// Communicator world the segment ran over.
    pub scope: CommScope,
    /// The collective executed, `None` for compute/overhead segments.
    pub op: Option<CommOp>,
}

/// Result of running one deployment for real.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// The executed deployment.
    pub mode: ExecutionMode,
    /// Number of rank threads.
    pub world_size: usize,
    /// Iterations averaged over.
    pub iterations: usize,
    /// Per-segment measurements in iteration order.
    pub segments: Vec<MeasuredSegment>,
    /// Mean training loss across ranks, one entry per iteration.
    pub losses: Vec<f64>,
}

impl MeasuredRun {
    /// The measured timeline in the simulator's [`IterationTimeline`] form.
    #[must_use]
    pub fn timeline(&self) -> IterationTimeline {
        self.segments
            .iter()
            .map(|s| Segment::new(s.kind, s.label.clone(), s.time_s, s.exposed_fraction))
            .collect()
    }

    /// Exposed-latency breakdown of the measured timeline.
    #[must_use]
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.timeline().breakdown()
    }

    /// Mean per-rank cross-host bytes per iteration.
    #[must_use]
    pub fn cross_host_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.cross_host_bytes).sum()
    }

    /// Mean per-rank intra-host bytes per iteration.
    #[must_use]
    pub fn intra_host_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.intra_host_bytes).sum()
    }

    /// Fraction of the exposed iteration spent communicating (embedding exchanges +
    /// gradient synchronization) — the quantity the paper's Figure 1 is about.
    #[must_use]
    pub fn exposed_comm_fraction(&self) -> f64 {
        CalibrationReport::comm_fraction(&self.breakdown())
    }
}

/// Runs the hybrid-parallel baseline for real and returns its measured profile.
///
/// # Errors
///
/// Returns a [`DistributedError`] if the configuration is invalid or a rank fails.
pub fn run_baseline(config: &DistributedConfig) -> Result<MeasuredRun, DistributedError> {
    run_mode(config, ExecutionMode::Baseline)
}

/// Runs DMT (one tower per host) for real and returns its measured profile.
///
/// # Errors
///
/// Returns a [`DistributedError`] if the configuration is invalid or a rank fails.
pub fn run_dmt(config: &DistributedConfig) -> Result<MeasuredRun, DistributedError> {
    run_mode(config, ExecutionMode::Dmt)
}

/// The analytical simulator's prediction for the *same* segments a measured run
/// executed: compute/overhead segments keep their measured durations, while every
/// communication segment is re-costed by the α–β model from its measured per-rank
/// payload and process group. When the run paced its collectives with a throttled
/// [`FabricProfile`], the cost model's link bandwidths are scaled down by the same
/// factors, so measured and predicted times are on the same footing.
///
/// This isolates the communication model: measured and predicted timelines differ
/// only where the cost model disagrees with the executed collectives.
#[must_use]
pub fn predicted_timeline(config: &DistributedConfig, run: &MeasuredRun) -> IterationTimeline {
    use dmt_topology::LinkKind;
    let cluster = &config.cluster;
    let mut model = CostModel::new(cluster.clone());
    if config.fabric.cross_host_bytes_per_sec.is_finite() {
        model = model.with_cross_host_scale(
            config.fabric.cross_host_bytes_per_sec / cluster.link_bandwidth(LinkKind::CrossHost),
        );
    }
    if config.fabric.intra_host_bytes_per_sec.is_finite() {
        model = model.with_intra_host_scale(
            config.fabric.intra_host_bytes_per_sec / cluster.link_bandwidth(LinkKind::IntraHost),
        );
    }
    let global = ProcessGroup::global(cluster);
    let intra = ProcessGroup::intra_host_groups(cluster);
    let peer = ProcessGroup::peer_groups(cluster);
    run.segments
        .iter()
        .map(|seg| {
            let group = match seg.scope {
                CommScope::Local => None,
                CommScope::Global => Some(&global),
                CommScope::IntraHost => Some(&intra[0]),
                CommScope::Peer => Some(&peer[0]),
            };
            match (group, seg.op) {
                (Some(group), Some(op)) => {
                    let est = match op {
                        CommOp::AllReduce => {
                            collectives::all_reduce(&model, group, seg.payload_bytes)
                        }
                        CommOp::ReduceScatter => {
                            collectives::reduce_scatter(&model, group, seg.payload_bytes)
                        }
                        CommOp::AllGather => {
                            collectives::all_gather(&model, group, seg.payload_bytes)
                        }
                        _ => collectives::all_to_all(&model, group, seg.payload_bytes),
                    };
                    Segment::new(
                        seg.kind,
                        seg.label.clone(),
                        est.time_s,
                        seg.exposed_fraction,
                    )
                }
                _ => Segment::new(
                    seg.kind,
                    seg.label.clone(),
                    seg.time_s,
                    seg.exposed_fraction,
                ),
            }
        })
        .collect()
}

/// Measured-vs-analytical comparison of both deployments on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Measured baseline run.
    pub baseline: MeasuredRun,
    /// Measured DMT run.
    pub dmt: MeasuredRun,
    /// Analytical twin of the baseline run (see [`predicted_timeline`]).
    pub predicted_baseline: IterationTimeline,
    /// Analytical twin of the DMT run.
    pub predicted_dmt: IterationTimeline,
}

impl CalibrationReport {
    /// Exposed-communication fraction of a breakdown.
    #[must_use]
    pub fn comm_fraction(b: &LatencyBreakdown) -> f64 {
        let total = b.total_s();
        if total <= 0.0 {
            return 0.0;
        }
        (b.embedding_comm_s + b.dense_sync_s) / total
    }

    /// Exposed-communication seconds of a breakdown.
    #[must_use]
    pub fn comm_seconds(b: &LatencyBreakdown) -> f64 {
        b.embedding_comm_s + b.dense_sync_s
    }

    /// The calibration check: the measured engine and the analytical simulator must
    /// agree on the paper's Figure 13 orderings — DMT exposes less communication
    /// than the baseline (absolute seconds), finishes the whole iteration faster,
    /// and moves strictly fewer cross-host bytes.
    ///
    /// The *fraction* of the iteration spent communicating is reported (see
    /// [`CalibrationReport::comm_fraction`]) but not gated: at CPU-toy scale the
    /// tower modules shrink the dense over-arch far more than at paper scale, so
    /// DMT's compute denominator can fall faster than its communication — a scale
    /// artifact, not a property of the dataflow.
    #[must_use]
    pub fn measured_ordering_matches_prediction(&self) -> bool {
        let measured_baseline = self.baseline.breakdown();
        let measured_dmt = self.dmt.breakdown();
        let predicted_baseline = self.predicted_baseline.breakdown();
        let predicted_dmt = self.predicted_dmt.breakdown();
        let measured_ok = Self::comm_seconds(&measured_dmt)
            < Self::comm_seconds(&measured_baseline)
            && measured_dmt.total_s() < measured_baseline.total_s();
        let predicted_ok = Self::comm_seconds(&predicted_dmt)
            < Self::comm_seconds(&predicted_baseline)
            && predicted_dmt.total_s() < predicted_baseline.total_s();
        let bytes_ok = self.dmt.cross_host_bytes() < self.baseline.cross_host_bytes();
        measured_ok && predicted_ok && bytes_ok
    }
}

/// Runs both deployments and builds their analytical twins.
///
/// # Errors
///
/// Returns a [`DistributedError`] if either run fails.
pub fn calibrate(config: &DistributedConfig) -> Result<CalibrationReport, DistributedError> {
    let baseline = run_baseline(config)?;
    let dmt = run_dmt(config)?;
    let predicted_baseline = predicted_timeline(config, &baseline);
    let predicted_dmt = predicted_timeline(config, &dmt);
    Ok(CalibrationReport {
        baseline,
        dmt,
        predicted_baseline,
        predicted_dmt,
    })
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// Communicator handles one rank carries into its thread.
struct RankComms {
    global: SharedMemoryBackend,
    intra: SharedMemoryBackend,
    peer: SharedMemoryBackend,
}

/// One measured sample of a segment within a single iteration.
struct SegmentSample {
    label: &'static str,
    kind: SegmentKind,
    exposed: f64,
    scope: CommScope,
    op: Option<CommOp>,
    time_s: f64,
    payload_bytes: u64,
    cross_host_bytes: u64,
    intra_host_bytes: u64,
}

/// Accumulates per-iteration segment samples for one rank.
#[derive(Default)]
struct Recorder {
    samples: Vec<SegmentSample>,
}

impl Recorder {
    fn push_compute(&mut self, label: &'static str, kind: SegmentKind, exposed: f64, time_s: f64) {
        self.samples.push(SegmentSample {
            label,
            kind,
            exposed,
            scope: CommScope::Local,
            op: None,
            time_s,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
        });
    }

    /// Records whatever collectives `backend` has accumulated since its last drain
    /// as one segment.
    fn record_drained(
        &mut self,
        label: &'static str,
        kind: SegmentKind,
        exposed: f64,
        scope: CommScope,
        backend: &mut SharedMemoryBackend,
    ) {
        let records = backend.drain_records();
        self.samples.push(SegmentSample {
            label,
            kind,
            exposed,
            scope,
            op: records.iter().map(|r| r.op).next_back(),
            time_s: records.iter().map(|r| r.elapsed_s).sum(),
            payload_bytes: records.iter().map(|r| r.payload_bytes).sum(),
            cross_host_bytes: records.iter().map(|r| r.cross_host_bytes).sum(),
            intra_host_bytes: records.iter().map(|r| r.intra_host_bytes).sum(),
        });
    }

    /// Runs `body` against `backend` and records the drained collective records as
    /// one segment.
    fn comm<T>(
        &mut self,
        label: &'static str,
        kind: SegmentKind,
        exposed: f64,
        scope: CommScope,
        backend: &mut SharedMemoryBackend,
        body: impl FnOnce(&mut SharedMemoryBackend) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        let out = body(backend)?;
        self.record_drained(label, kind, exposed, scope, backend);
        Ok(out)
    }
}

/// Per-rank result of a full run.
struct RankOutcome {
    /// Accumulated segment totals across iterations, in segment order.
    segments: Vec<SegmentSample>,
    losses: Vec<f64>,
}

/// Folds one iteration's samples into the run accumulator.
fn accumulate(total: &mut Vec<SegmentSample>, iteration: Vec<SegmentSample>) {
    if total.is_empty() {
        *total = iteration;
        return;
    }
    debug_assert_eq!(
        total.len(),
        iteration.len(),
        "segment sequence must be static"
    );
    for (acc, s) in total.iter_mut().zip(iteration) {
        debug_assert_eq!(acc.label, s.label);
        acc.time_s += s.time_s;
        acc.payload_bytes += s.payload_bytes;
        acc.cross_host_bytes += s.cross_host_bytes;
        acc.intra_host_bytes += s.intra_host_bytes;
    }
}

/// Mean-aggregates rank outcomes into the run's measured segments.
fn aggregate(
    mode: ExecutionMode,
    config: &DistributedConfig,
    outcomes: Vec<RankOutcome>,
) -> MeasuredRun {
    let world = outcomes.len();
    let iters = config.iterations as f64;
    let mut segments: Vec<MeasuredSegment> = outcomes[0]
        .segments
        .iter()
        .map(|s| MeasuredSegment {
            label: s.label.to_string(),
            kind: s.kind,
            exposed_fraction: s.exposed,
            time_s: 0.0,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
            scope: s.scope,
            op: s.op,
        })
        .collect();
    for outcome in &outcomes {
        for (agg, s) in segments.iter_mut().zip(&outcome.segments) {
            // Wall time is set by the slowest rank; byte counts are per-rank means.
            agg.time_s = agg.time_s.max(s.time_s / iters);
            agg.payload_bytes += s.payload_bytes;
            agg.cross_host_bytes += s.cross_host_bytes;
            agg.intra_host_bytes += s.intra_host_bytes;
        }
    }
    let per_rank = |total: u64| (total as f64 / world as f64 / iters).round() as u64;
    for seg in &mut segments {
        seg.payload_bytes = per_rank(seg.payload_bytes);
        seg.cross_host_bytes = per_rank(seg.cross_host_bytes);
        seg.intra_host_bytes = per_rank(seg.intra_host_bytes);
    }
    let losses = (0..config.iterations)
        .map(|i| outcomes.iter().map(|o| o.losses[i]).sum::<f64>() / world as f64)
        .collect();
    MeasuredRun {
        mode,
        world_size: world,
        iterations: config.iterations,
        segments,
        losses,
    }
}

/// Builds the per-rank communicator bundles for `config.cluster`.
fn build_comms(config: &DistributedConfig) -> Vec<RankComms> {
    let cluster = &config.cluster;
    let fabric = config.fabric;
    let global = SharedMemoryComm::for_group(cluster, &ProcessGroup::global(cluster), fabric);
    let mut intra: Vec<Option<SharedMemoryBackend>> =
        (0..cluster.world_size()).map(|_| None).collect();
    for group in ProcessGroup::intra_host_groups(cluster) {
        let handles = SharedMemoryComm::for_group(cluster, &group, fabric);
        for (rank, handle) in group.ranks().iter().zip(handles) {
            intra[rank.0] = Some(handle);
        }
    }
    let mut peer: Vec<Option<SharedMemoryBackend>> =
        (0..cluster.world_size()).map(|_| None).collect();
    for group in ProcessGroup::peer_groups(cluster) {
        let handles = SharedMemoryComm::for_group(cluster, &group, fabric);
        for (rank, handle) in group.ranks().iter().zip(handles) {
            peer[rank.0] = Some(handle);
        }
    }
    global
        .into_iter()
        .zip(intra)
        .zip(peer)
        .map(|((global, intra), peer)| RankComms {
            global,
            intra: intra.expect("intra-host groups cover every rank"),
            peer: peer.expect("peer groups cover every rank"),
        })
        .collect()
}

fn run_mode(
    config: &DistributedConfig,
    mode: ExecutionMode,
) -> Result<MeasuredRun, DistributedError> {
    if config.local_batch == 0 || config.iterations == 0 {
        return Err(DistributedError::Config {
            reason: "local_batch and iterations must be positive".into(),
        });
    }
    if mode == ExecutionMode::Dmt {
        // Validate the partition up front so every rank either runs or none does.
        let _ = naive_partition(config.schema.num_sparse(), config.num_towers())?;
    }
    let comms = build_comms(config);
    let world = comms.len();
    let mut outcomes: Vec<Option<Result<RankOutcome, DistributedError>>> =
        (0..world).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(world);
        for (rank, comm) in comms.into_iter().enumerate() {
            let config = config.clone();
            joins.push(scope.spawn(move || {
                let mut comm = comm;
                let outcome = match mode {
                    ExecutionMode::Baseline => baseline_rank(&config, rank, &mut comm),
                    ExecutionMode::Dmt => dmt_rank(&config, rank, &mut comm),
                };
                if outcome.is_err() {
                    // Peers may be blocked in a collective waiting for this rank;
                    // fail them fast instead of hanging the run (panics poison the
                    // worlds automatically via Drop).
                    comm.global.abort();
                    comm.intra.abort();
                    comm.peer.abort();
                }
                outcome
            }));
        }
        for (rank, (slot, join)) in outcomes.iter_mut().zip(joins).enumerate() {
            *slot = Some(join.join().unwrap_or_else(|panic| {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "rank thread panicked".into());
                Err(DistributedError::Rank { rank, message })
            }));
        }
    });
    let outcomes: Vec<Result<RankOutcome, DistributedError>> = outcomes
        .into_iter()
        .map(|o| o.expect("every rank joined"))
        .collect();
    // Prefer the root cause over the "aborted" cascades it triggers on peer ranks.
    if outcomes.iter().any(Result::is_err) {
        let is_cascade = |e: &DistributedError| matches!(e, DistributedError::Rank { message, .. } if message.contains("aborted"));
        let mut errors: Vec<DistributedError> =
            outcomes.into_iter().filter_map(Result::err).collect();
        let root = errors
            .iter()
            .position(|e| !is_cascade(e))
            .unwrap_or_default();
        return Err(errors.swap_remove(root));
    }
    let outcomes: Vec<RankOutcome> = outcomes.into_iter().map(Result::unwrap).collect();
    Ok(aggregate(mode, config, outcomes))
}

/// Encodes a (feature, row) pair into the u64 key the index exchanges carry.
fn encode_key(feature: usize, row: usize) -> u64 {
    ((feature as u64) << 32) | row as u64
}

/// Decodes a (feature, row) key.
fn decode_key(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize)
}

/// Splits a sorted key list into contiguous same-feature runs of decoded rows.
fn feature_runs(keys: &[u64]) -> impl Iterator<Item = (usize, Vec<usize>)> + '_ {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        if start >= keys.len() {
            return None;
        }
        let (feature, _) = decode_key(keys[start]);
        let mut end = start;
        let mut rows = Vec::new();
        while end < keys.len() {
            let (f, row) = decode_key(keys[end]);
            if f != feature {
                break;
            }
            rows.push(row);
            end += 1;
        }
        start = end;
        Some((feature, rows))
    })
}

/// One rank's sharded view of a set of embedding tables, plus the request-routing
/// state of the in-flight iteration.
///
/// The tables for `features` are row-sharded across the `world` ranks of the backend
/// this lookup is driven through (all ranks in baseline mode, one host's ranks in
/// DMT mode). A fetch runs the two-sided protocol: sorted-unique `(feature, row)`
/// keys to each owner, raw rows back, requester-side pooling; the backward pass
/// reuses the cached request routing to push per-row gradients to their owners.
struct ShardedLookup {
    /// Global feature ids served by this world, ascending.
    features: Vec<usize>,
    /// This rank's shard of each feature's table, aligned with `features`.
    shards: Vec<ShardedEmbeddingTable>,
    dim: usize,
    /// Requester side: per-owner sorted-unique request keys of the current iteration.
    request_keys: Vec<Vec<u64>>,
    /// Owner side: per-source request keys of the current iteration.
    served_keys: Vec<Vec<u64>>,
}

impl ShardedLookup {
    fn new(
        seed: u64,
        schema: &DatasetSchema,
        mut features: Vec<usize>,
        dim: usize,
        world: usize,
        shard_index: usize,
    ) -> Self {
        use rand::SeedableRng;
        features.sort_unstable();
        let shards = features
            .iter()
            .map(|&f| {
                // Seed per (feature, shard): initialization is deterministic and
                // independent of which world drives the lookup.
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(f as u64 + 1))
                        ^ ((shard_index as u64) << 48),
                );
                ShardedEmbeddingTable::new(
                    &mut rng,
                    schema.sparse_cardinalities[f],
                    dim,
                    world,
                    shard_index,
                )
            })
            .collect();
        Self {
            features,
            shards,
            dim,
            request_keys: Vec::new(),
            served_keys: Vec::new(),
        }
    }

    /// Position of a global feature id within `features`.
    fn feature_pos(&self, feature: usize) -> usize {
        self.features
            .binary_search(&feature)
            .expect("feature served by this lookup")
    }

    /// Fetches and pools embeddings for `bags` (aligned with `features`; one bag per
    /// sample per feature) through `backend`. Returns one `[num_samples, dim]`
    /// tensor per feature.
    fn fetch(
        &mut self,
        backend: &mut SharedMemoryBackend,
        bags: &[&[Vec<usize>]],
    ) -> Result<Vec<Tensor>, DistributedError> {
        let world = backend.world_size();
        let dim = self.dim;

        // Route each distinct (feature, row) to its owner shard.
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); world];
        for (pos, per_sample) in bags.iter().enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            for bag in per_sample.iter() {
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    requests[shard.owner_of(row)].push(encode_key(feature, row));
                }
            }
        }
        for keys in &mut requests {
            keys.sort_unstable();
            keys.dedup();
        }
        self.request_keys = requests.clone();

        // Owners answer with the raw rows, in request order. Keys are sorted, so
        // rows of the same feature form contiguous runs and each run is answered
        // with one batched shard lookup.
        let incoming = backend.all_to_all_indices(requests)?;
        let mut replies: Vec<Vec<f32>> = Vec::with_capacity(world);
        for keys in incoming.iter() {
            let mut reply = Vec::with_capacity(keys.len() * dim);
            for (feature, rows) in feature_runs(keys) {
                reply
                    .extend_from_slice(&self.shards[self.feature_pos(feature)].lookup_rows(&rows)?);
            }
            replies.push(reply);
        }
        self.served_keys = incoming;
        let fetched = backend.all_to_all(replies)?;

        // Requester-side pooling, bit-identical to a local sum-pooled forward.
        let mut outputs = Vec::with_capacity(bags.len());
        for (pos, per_sample) in bags.iter().enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            let mut out = Tensor::zeros(&[per_sample.len(), dim]);
            let data = out.data_mut();
            for (sample, bag) in per_sample.iter().enumerate() {
                let dst = &mut data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    let owner = shard.owner_of(row);
                    let slot = self.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in dst
                        .iter_mut()
                        .zip(&fetched[owner][slot * dim..(slot + 1) * dim])
                    {
                        *d += v;
                    }
                }
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Pushes per-feature pooled-embedding gradients (aligned with `features` and the
    /// preceding [`ShardedLookup::fetch`]) back to the row owners, which accumulate
    /// them as pending sparse gradients.
    fn push_grads(
        &mut self,
        backend: &mut SharedMemoryBackend,
        bags: &[&[Vec<usize>]],
        grads: &[Tensor],
    ) -> Result<(), DistributedError> {
        let dim = self.dim;

        // Accumulate per-requested-row gradients locally (deduplicated exactly like
        // the requests), then ship one buffer per owner.
        let mut grad_bufs: Vec<Vec<f32>> = self
            .request_keys
            .iter()
            .map(|keys| vec![0.0f32; keys.len() * dim])
            .collect();
        for (pos, (per_sample, grad)) in bags.iter().zip(grads).enumerate() {
            let shard = &self.shards[pos];
            let feature = self.features[pos];
            let grad_data = grad.data();
            for (sample, bag) in per_sample.iter().enumerate() {
                let src = &grad_data[sample * dim..(sample + 1) * dim];
                for &raw in bag {
                    let row = raw % shard.num_embeddings();
                    let owner = shard.owner_of(row);
                    let slot = self.request_keys[owner]
                        .binary_search(&encode_key(feature, row))
                        .expect("row was requested");
                    for (d, v) in grad_bufs[owner][slot * dim..(slot + 1) * dim]
                        .iter_mut()
                        .zip(src)
                    {
                        *d += v;
                    }
                }
            }
        }
        let incoming = backend.all_to_all(grad_bufs)?;

        // Owner side: merge each source's contributions in rank order, one batched
        // merge per contiguous feature run (a per-row merge would rebuild the
        // pending CSR store once per key).
        for (keys, grads) in self.served_keys.iter().zip(incoming) {
            let mut offset = 0usize;
            for (feature, rows) in feature_runs(keys) {
                let pos = self
                    .features
                    .binary_search(&feature)
                    .expect("feature served by this lookup");
                let span = rows.len() * dim;
                self.shards[pos].accumulate_row_grads(&rows, &grads[offset..offset + span])?;
                offset += span;
            }
        }
        Ok(())
    }

    fn apply_rowwise_adagrad(&mut self, learning_rate: f32, eps: f32) {
        for shard in &mut self.shards {
            shard.apply_rowwise_adagrad(learning_rate, eps);
        }
    }
}

/// The replicated dense stack: bottom MLP, feature interaction and over-arch.
struct DenseStack {
    arch: ModelArch,
    bottom: Mlp,
    dot: Option<DotInteraction>,
    cross: Option<CrossNet>,
    over: Mlp,
    loss: BceWithLogitsLoss,
    unit_width: usize,
}

impl DenseStack {
    fn new(
        seed: u64,
        schema: &DatasetSchema,
        arch: ModelArch,
        hyper: &ModelHyperparams,
        unit_width: usize,
        num_units: usize,
    ) -> Self {
        use rand::SeedableRng;
        // Every rank seeds identically: the stack is a data-parallel replica.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bottom_sizes = vec![schema.num_dense];
        bottom_sizes.extend(&hyper.bottom_mlp_hidden);
        bottom_sizes.push(unit_width);
        let bottom = Mlp::new(&mut rng, &bottom_sizes);
        let interaction_width = unit_width * num_units;
        let (dot, cross, over_input) = match arch {
            ModelArch::Dlrm => {
                let dot = DotInteraction::new(num_units, unit_width);
                let over_input = unit_width + dot.output_dim();
                (Some(dot), None, over_input)
            }
            ModelArch::Dcn => {
                let cross = CrossNet::new(&mut rng, interaction_width, hyper.cross_layers.max(1));
                (None, Some(cross), interaction_width)
            }
        };
        let mut over_sizes = vec![over_input];
        over_sizes.extend(&hyper.over_mlp_hidden);
        over_sizes.push(1);
        let over = Mlp::new(&mut rng, &over_sizes);
        Self {
            arch,
            bottom,
            dot,
            cross,
            over,
            loss: BceWithLogitsLoss::new(),
            unit_width,
        }
    }

    /// Forward + backward over one local batch. Returns the mean loss and the
    /// gradient with respect to the feature block.
    fn forward_backward(
        &mut self,
        dense_input: &Tensor,
        feature_block: &Tensor,
        labels: &[f32],
    ) -> Result<(f64, Tensor), DistributedError> {
        let dense_repr = self.bottom.forward(dense_input)?;
        let units = Tensor::concat_cols(&[&dense_repr, feature_block])?;
        let over_input = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pairs = dot.forward(&units)?;
                Tensor::concat_cols(&[&dense_repr, &pairs])?
            }
            ModelArch::Dcn => self
                .cross
                .as_mut()
                .expect("DCN stacks own a CrossNet")
                .forward(&units)?,
        };
        let logits = self.over.forward(&over_input)?;
        let (loss, _predictions, grad_logits) = self.loss.forward_backward(&logits, labels)?;

        let grad_over_input = self.over.backward(&grad_logits)?;
        let (grad_dense_direct, grad_units) = match self.arch {
            ModelArch::Dlrm => {
                let dot = self
                    .dot
                    .as_mut()
                    .expect("DLRM stacks own a dot interaction");
                let pieces = grad_over_input.split_cols(&[self.unit_width, dot.output_dim()])?;
                let grad_units = dot.backward(&pieces[1])?;
                (Some(pieces[0].clone()), grad_units)
            }
            ModelArch::Dcn => (
                None,
                self.cross
                    .as_mut()
                    .expect("DCN stacks own a CrossNet")
                    .backward(&grad_over_input)?,
            ),
        };
        let feature_width = feature_block.shape()[1];
        let pieces = grad_units.split_cols(&[self.unit_width, feature_width])?;
        let mut grad_dense_repr = pieces[0].clone();
        if let Some(direct) = grad_dense_direct {
            grad_dense_repr.axpy(1.0, &direct)?;
        }
        self.bottom.backward(&grad_dense_repr)?;
        Ok((loss, pieces[1].clone()))
    }
}

impl HasParameters for DenseStack {
    fn visit_parameters(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.bottom.visit_parameters(visitor);
        if let Some(cross) = &mut self.cross {
            cross.visit_parameters(visitor);
        }
        self.over.visit_parameters(visitor);
    }
}

/// AllReduces and averages every parameter gradient reachable through `module`.
fn sync_grads<M: HasParameters + ?Sized>(
    module: &mut M,
    backend: &mut SharedMemoryBackend,
) -> Result<(), CommError> {
    let mut flat = Vec::new();
    module.visit_parameters(&mut |p| flat.extend_from_slice(p.grad.data()));
    backend.all_reduce(&mut flat)?;
    let scale = 1.0 / backend.world_size() as f32;
    let mut offset = 0;
    module.visit_parameters(&mut |p| {
        let n = p.len();
        for (dst, src) in p.grad.data_mut().iter_mut().zip(&flat[offset..offset + n]) {
            *dst = src * scale;
        }
        offset += n;
    });
    Ok(())
}

/// Collects per-feature bag slices out of a batch, aligned with `features`.
fn bags_for<'a>(batch: &'a Batch, features: &[usize]) -> Vec<&'a [Vec<usize>]> {
    features
        .iter()
        .map(|&f| batch.sparse[f].as_slice())
        .collect()
}

/// One rank of the hybrid-parallel baseline.
fn baseline_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    let schema = &config.schema;
    let n = config.hyper.embedding_dim;
    let world = config.cluster.world_size();
    let mut data =
        SyntheticClickDataset::new(schema.clone(), config.seed ^ ((rank as u64 + 1) << 16));
    let mut lookup = ShardedLookup::new(
        config.seed,
        schema,
        (0..schema.num_sparse()).collect(),
        n,
        world,
        rank,
    );
    let mut dense = DenseStack::new(
        config.seed,
        schema,
        config.arch,
        &config.hyper,
        n,
        schema.num_sparse() + 1,
    );
    let mut adam = AdamOptimizer::new(config.learning_rate);
    let features: Vec<usize> = (0..schema.num_sparse()).collect();

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        let mut rec = Recorder::default();
        HasParameters::zero_grad(&mut dense);
        let batch = data.next_batch(config.local_batch);
        let bags = bags_for(&batch, &features);

        // Forward: global index + row-fetch exchanges, then requester-side pooling.
        // The fetch runs two collectives; split them into the simulator's two
        // segments by re-running the recorder around each half is not possible, so
        // the fetch is recorded as one exchange pair below.
        let feature_embs = {
            let out = lookup.fetch(&mut comm.global, &bags)?;
            let records = comm.global.drain_records();
            debug_assert_eq!(records.len(), 2);
            let (idx, rows) = (&records[0], &records[1]);
            rec.samples.push(SegmentSample {
                label: "feature distribution AlltoAll",
                kind: SegmentKind::EmbeddingComm,
                exposed: INPUT_DIST_EXPOSED,
                scope: CommScope::Global,
                op: Some(idx.op),
                time_s: idx.elapsed_s,
                payload_bytes: idx.payload_bytes,
                cross_host_bytes: idx.cross_host_bytes,
                intra_host_bytes: idx.intra_host_bytes,
            });
            rec.samples.push(SegmentSample {
                label: "embedding row fetch AlltoAll (fwd)",
                kind: SegmentKind::EmbeddingComm,
                exposed: EMBEDDING_EXCHANGE_EXPOSED,
                scope: CommScope::Global,
                op: Some(rows.op),
                time_s: rows.elapsed_s,
                payload_bytes: rows.payload_bytes,
                cross_host_bytes: rows.cross_host_bytes,
                intra_host_bytes: rows.intra_host_bytes,
            });
            out
        };
        let refs: Vec<&Tensor> = feature_embs.iter().collect();
        let feature_block = Tensor::concat_cols(&refs)?;
        let dense_input =
            Tensor::from_vec(vec![batch.len(), schema.num_dense], batch.dense_flat())?;
        let (loss, grad_block) =
            dense.forward_backward(&dense_input, &feature_block, &batch.labels)?;
        losses.push(loss);

        // Backward: per-feature gradients travel back to the row owners.
        let grads = grad_block.split_cols(&vec![n; schema.num_sparse()])?;
        lookup.push_grads(&mut comm.global, &bags, &grads)?;
        rec.record_drained(
            "embedding gradient AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            EMBEDDING_EXCHANGE_EXPOSED,
            CommScope::Global,
            &mut comm.global,
        );

        rec.comm(
            "dense gradient AllReduce",
            SegmentKind::DenseSync,
            DENSE_SYNC_EXPOSED,
            CommScope::Global,
            &mut comm.global,
            |backend| sync_grads(&mut dense, backend),
        )?;

        let opt_start = Instant::now();
        adam.step(&mut dense);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let comm_s: f64 = rec.samples.iter().map(|s| s.time_s).sum();
        let compute_s = (iter_start.elapsed().as_secs_f64() - comm_s - opt_s).max(0.0);
        rec.push_compute("optimizer + host overhead", SegmentKind::Other, 1.0, opt_s);
        let mut samples = vec![SegmentSample {
            label: "dense + sparse compute",
            kind: SegmentKind::Compute,
            exposed: 1.0,
            scope: CommScope::Local,
            op: None,
            time_s: compute_s,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
        }];
        samples.extend(rec.samples);
        accumulate(&mut totals, samples);
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
    })
}

/// One rank of the Disaggregated Multi-Tower deployment (one tower per host).
#[allow(clippy::too_many_lines)]
fn dmt_rank(
    config: &DistributedConfig,
    rank: usize,
    comm: &mut RankComms,
) -> Result<RankOutcome, DistributedError> {
    use dmt_topology::Rank;
    use rand::SeedableRng;

    let schema = &config.schema;
    let cluster = &config.cluster;
    let n = config.hyper.embedding_dim;
    let hosts = cluster.num_hosts();
    let slots = cluster.gpus_per_host();
    let my_host = cluster.host_of(Rank(rank));
    let b = config.local_batch;

    let partition = naive_partition(schema.num_sparse(), hosts)?;
    // Tower feature groups, each sorted ascending (the wire order of every exchange).
    let groups: Vec<Vec<usize>> = partition
        .groups()
        .iter()
        .map(|g| {
            let mut g = g.clone();
            g.sort_unstable();
            g
        })
        .collect();
    let my_features = groups[my_host].clone();
    if groups.iter().any(Vec::is_empty) {
        return Err(DistributedError::Config {
            reason: "every tower needs at least one feature".into(),
        });
    }

    let (c, p, d) = (
        config.tower_ensemble_c,
        config.tower_ensemble_p,
        config.tower_output_dim,
    );
    // Interaction geometry, mirroring `RecommendationModel`: every tower contributes
    // `c * F_t + p` units of width D, plus the dense unit.
    let tower_widths: Vec<usize> = groups.iter().map(|g| d * (c * g.len() + p)).collect();
    let num_units = groups.iter().map(|g| c * g.len() + p).sum::<usize>() + 1;

    let mut data =
        SyntheticClickDataset::new(schema.clone(), config.seed ^ ((rank as u64 + 1) << 16));
    // Tables of my tower, sharded across my host's ranks.
    let mut lookup = ShardedLookup::new(
        config.seed,
        schema,
        my_features.clone(),
        n,
        slots,
        cluster.local_index(Rank(rank)),
    );
    // Tower module replicated across my host's ranks (same per-tower seed).
    let mut tower_rng =
        rand::rngs::StdRng::seed_from_u64(config.seed ^ ((my_host as u64 + 1) * 7919));
    let mut tower =
        DlrmTowerModule::new(&mut tower_rng, my_features.len(), n, c, p, d).map_err(|e| {
            DistributedError::Config {
                reason: e.to_string(),
            }
        })?;
    let mut dense = DenseStack::new(
        config.seed,
        schema,
        config.arch,
        &config.hyper,
        d,
        num_units,
    );
    let mut adam_dense = AdamOptimizer::new(config.learning_rate);
    let mut adam_tower = AdamOptimizer::new(config.learning_rate);

    let mut totals = Vec::new();
    let mut losses = Vec::new();
    for _ in 0..config.iterations {
        let iter_start = Instant::now();
        let mut rec = Recorder::default();
        HasParameters::zero_grad(&mut dense);
        HasParameters::zero_grad(&mut tower);
        let batch = data.next_batch(b);

        // SPTT step (a): ship each tower's indices to the same-slot rank on the
        // owning host — a peer AlltoAll of encoded bags.
        let sends: Vec<Vec<u64>> = groups
            .iter()
            .map(|group| {
                let mut stream = Vec::new();
                for &f in group {
                    for bag in &batch.sparse[f] {
                        stream.push(bag.len() as u64);
                        stream.extend(bag.iter().map(|&i| i as u64));
                    }
                }
                stream
            })
            .collect();
        let incoming = rec.comm(
            "peer index distribution AlltoAll",
            SegmentKind::EmbeddingComm,
            INPUT_DIST_EXPOSED,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all_indices(sends),
        )?;

        // Decode into the combined tower batch: `hosts * b` samples (source-host
        // major), one bag list per tower feature.
        let tower_batch = hosts * b;
        let mut tower_bags: Vec<Vec<Vec<usize>>> =
            vec![Vec::with_capacity(tower_batch); my_features.len()];
        for stream in &incoming {
            let mut cursor = 0usize;
            for bags in tower_bags.iter_mut() {
                for _ in 0..b {
                    let len = stream[cursor] as usize;
                    cursor += 1;
                    bags.push(
                        stream[cursor..cursor + len]
                            .iter()
                            .map(|&v| v as usize)
                            .collect(),
                    );
                    cursor += len;
                }
            }
            debug_assert_eq!(cursor, stream.len());
        }

        // SPTT step (d): intra-host sharded lookup of my tower's features.
        let bag_slices: Vec<&[Vec<usize>]> = tower_bags.iter().map(Vec::as_slice).collect();
        let feature_embs = lookup.fetch(&mut comm.intra, &bag_slices)?;
        rec.record_drained(
            "intra-host row fetch AlltoAll (fwd)",
            SegmentKind::EmbeddingComm,
            EMBEDDING_EXCHANGE_EXPOSED,
            CommScope::IntraHost,
            &mut comm.intra,
        );
        let refs: Vec<&Tensor> = feature_embs.iter().collect();
        let tower_input = Tensor::concat_cols(&refs)?;

        // Tower module over the combined tower batch.
        let tower_out = tower.forward(&tower_input)?;
        let w_mine = tower_widths[my_host];

        // SPTT step (f): return the compressed tower outputs to the sample owners —
        // the second peer AlltoAll, now carrying `D`-wide units instead of raw
        // embeddings.
        let out_data = tower_out.data();
        let sends: Vec<Vec<f32>> = (0..hosts)
            .map(|src| out_data[src * b * w_mine..(src + 1) * b * w_mine].to_vec())
            .collect();
        let received = rec.comm(
            "peer tower-output AlltoAll (fwd)",
            SegmentKind::EmbeddingComm,
            EMBEDDING_EXCHANGE_EXPOSED,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all(sends),
        )?;
        let tower_blocks: Vec<Tensor> = received
            .into_iter()
            .enumerate()
            .map(|(t, flat)| Tensor::from_vec(vec![b, tower_widths[t]], flat))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&Tensor> = tower_blocks.iter().collect();
        let feature_block = Tensor::concat_cols(&refs)?;

        // Replicated dense stack on the local batch.
        let dense_input = Tensor::from_vec(vec![b, schema.num_dense], batch.dense_flat())?;
        let (loss, grad_block) =
            dense.forward_backward(&dense_input, &feature_block, &batch.labels)?;
        losses.push(loss);

        // Backward peer AlltoAll: tower-output gradients back to the tower ranks.
        let grad_pieces = grad_block.split_cols(&tower_widths)?;
        let sends: Vec<Vec<f32>> = grad_pieces.iter().map(|t| t.data().to_vec()).collect();
        let received = rec.comm(
            "peer tower-grad AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            EMBEDDING_EXCHANGE_EXPOSED,
            CommScope::Peer,
            &mut comm.peer,
            |backend| backend.all_to_all(sends),
        )?;
        let mut grad_tower_out = Vec::with_capacity(tower_batch * w_mine);
        for src in received {
            grad_tower_out.extend(src);
        }
        let grad_tower_out = Tensor::from_vec(vec![tower_batch, w_mine], grad_tower_out)?;

        // Tower backward, then the intra-host gradient exchange to the row shards.
        let grad_tower_input = tower.backward(&grad_tower_out)?;
        let grads = grad_tower_input.split_cols(&vec![n; my_features.len()])?;
        lookup.push_grads(&mut comm.intra, &bag_slices, &grads)?;
        rec.record_drained(
            "intra-host gradient AlltoAll (bwd)",
            SegmentKind::EmbeddingComm,
            EMBEDDING_EXCHANGE_EXPOSED,
            CommScope::IntraHost,
            &mut comm.intra,
        );

        // Tower-module gradients stay inside the host (§3.2, System Perspective).
        rec.comm(
            "tower-module intra-host AllReduce",
            SegmentKind::DenseSync,
            DENSE_SYNC_EXPOSED,
            CommScope::IntraHost,
            &mut comm.intra,
            |backend| sync_grads(&mut tower, backend),
        )?;
        // Shared dense stack synchronizes globally, as in the baseline.
        rec.comm(
            "dense gradient AllReduce",
            SegmentKind::DenseSync,
            DENSE_SYNC_EXPOSED,
            CommScope::Global,
            &mut comm.global,
            |backend| sync_grads(&mut dense, backend),
        )?;

        let opt_start = Instant::now();
        adam_dense.step(&mut dense);
        adam_tower.step(&mut tower);
        lookup.apply_rowwise_adagrad(config.learning_rate, 1e-8);
        let opt_s = opt_start.elapsed().as_secs_f64();

        let comm_s: f64 = rec.samples.iter().map(|s| s.time_s).sum();
        let compute_s = (iter_start.elapsed().as_secs_f64() - comm_s - opt_s).max(0.0);
        rec.push_compute("optimizer + host overhead", SegmentKind::Other, 1.0, opt_s);
        let mut samples = vec![SegmentSample {
            label: "dense + tower-module compute",
            kind: SegmentKind::Compute,
            exposed: 1.0,
            scope: CommScope::Local,
            op: None,
            time_s: compute_s,
            payload_bytes: 0,
            cross_host_bytes: 0,
            intra_host_bytes: 0,
        }];
        samples.extend(rec.samples);
        accumulate(&mut totals, samples);
    }
    Ok(RankOutcome {
        segments: totals,
        losses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_topology::HardwareGeneration;

    /// The acceptance-scale cluster: 8 ranks as 2 hosts x 4 GPUs.
    fn cluster_2x4() -> ClusterTopology {
        ClusterTopology::new(HardwareGeneration::A100, 2, 4).unwrap()
    }

    fn quick(arch: ModelArch) -> DistributedConfig {
        DistributedConfig::quick(cluster_2x4(), arch)
    }

    #[test]
    fn baseline_8_ranks_trains_and_learns() {
        let cfg = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128);
        let run = run_baseline(&cfg).unwrap();
        assert_eq!(run.world_size, 8);
        assert_eq!(run.losses.len(), 10);
        let early: f64 = run.losses[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = run.losses[7..].iter().sum::<f64>() / 3.0;
        assert!(late < early, "loss should fall: {early} -> {late}");
    }

    #[test]
    fn dmt_8_ranks_trains_and_learns() {
        let cfg = quick(ModelArch::Dlrm)
            .with_iterations(10)
            .with_local_batch(128);
        let run = run_dmt(&cfg).unwrap();
        assert_eq!(run.world_size, 8);
        let early: f64 = run.losses[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = run.losses[7..].iter().sum::<f64>() / 3.0;
        assert!(late < early, "loss should fall: {early} -> {late}");
    }

    #[test]
    fn dcn_arch_runs_in_both_modes() {
        let cfg = quick(ModelArch::Dcn).with_iterations(2);
        assert!(run_baseline(&cfg)
            .unwrap()
            .losses
            .iter()
            .all(|l| l.is_finite()));
        assert!(run_dmt(&cfg).unwrap().losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn runs_are_bit_deterministic() {
        // Thread scheduling must not leak into the numerics: two runs of the same
        // configuration produce identical loss trajectories.
        let cfg = quick(ModelArch::Dlrm).with_iterations(3);
        for run_fn in [run_baseline, run_dmt] {
            let a = run_fn(&cfg).unwrap();
            let b = run_fn(&cfg).unwrap();
            assert_eq!(a.losses, b.losses);
            for (sa, sb) in a.segments.iter().zip(&b.segments) {
                assert_eq!(sa.payload_bytes, sb.payload_bytes, "{}", sa.label);
                assert_eq!(sa.cross_host_bytes, sb.cross_host_bytes, "{}", sa.label);
            }
        }
    }

    #[test]
    fn dmt_moves_fewer_cross_host_bytes() {
        // The deterministic half of the paper's claim: tower-wise disaggregation
        // pulls embedding bytes off the scale-out links.
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let baseline = run_baseline(&cfg).unwrap();
        let dmt = run_dmt(&cfg).unwrap();
        assert!(
            dmt.cross_host_bytes() < baseline.cross_host_bytes() / 2,
            "dmt {} vs baseline {}",
            dmt.cross_host_bytes(),
            baseline.cross_host_bytes()
        );
        // ... while the intra-host class picks up the lookup traffic.
        assert!(dmt.intra_host_bytes() > 0);
    }

    #[test]
    fn calibration_orders_dmt_below_baseline() {
        // The acceptance check: with the fabric paced to the modeled link
        // bandwidths, the *measured* exposed communication and total iteration time
        // order the two deployments the same way the analytical simulator predicts
        // (DMT < baseline, the paper's Figure 13).
        let cluster = cluster_2x4();
        // Slowed far enough that wire time dominates single-core scheduling noise.
        let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
            .with_iterations(3)
            .with_fabric(fabric);
        let report = calibrate(&cfg).unwrap();
        assert!(
            report.measured_ordering_matches_prediction(),
            "baseline comm {:.1}ms of {:.1}ms (pred {:.1}ms) vs dmt {:.1}ms of {:.1}ms (pred {:.1}ms)",
            CalibrationReport::comm_seconds(&report.baseline.breakdown()) * 1e3,
            report.baseline.breakdown().total_s() * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_baseline.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&report.dmt.breakdown()) * 1e3,
            report.dmt.breakdown().total_s() * 1e3,
            CalibrationReport::comm_seconds(&report.predicted_dmt.breakdown()) * 1e3,
        );
        // DMT's measured exposed communication must be *well* below the baseline's,
        // not marginally: the peer exchanges carry compressed tower outputs.
        assert!(
            CalibrationReport::comm_seconds(&report.dmt.breakdown())
                < 0.7 * CalibrationReport::comm_seconds(&report.baseline.breakdown())
        );
    }

    #[test]
    fn single_host_and_single_rank_worlds_run() {
        for (hosts, gpus) in [(1usize, 2usize), (1, 1), (2, 1)] {
            let cluster = ClusterTopology::new(HardwareGeneration::A100, hosts, gpus).unwrap();
            let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm).with_iterations(2);
            let baseline = run_baseline(&cfg).unwrap();
            assert_eq!(baseline.world_size, hosts * gpus);
            let dmt = run_dmt(&cfg).unwrap();
            assert!(dmt.losses.iter().all(|l| l.is_finite()));
        }
    }

    #[test]
    fn measured_segments_cover_the_expected_pipeline() {
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let dmt = run_dmt(&cfg).unwrap();
        let labels: Vec<&str> = dmt.segments.iter().map(|s| s.label.as_str()).collect();
        for expected in [
            "dense + tower-module compute",
            "peer index distribution AlltoAll",
            "intra-host row fetch AlltoAll (fwd)",
            "peer tower-output AlltoAll (fwd)",
            "peer tower-grad AlltoAll (bwd)",
            "intra-host gradient AlltoAll (bwd)",
            "tower-module intra-host AllReduce",
            "dense gradient AllReduce",
            "optimizer + host overhead",
        ] {
            assert!(labels.contains(&expected), "missing segment {expected}");
        }
        // The intra-host exchanges must carry no cross-host bytes.
        for seg in dmt
            .segments
            .iter()
            .filter(|s| s.scope == CommScope::IntraHost)
        {
            assert_eq!(seg.cross_host_bytes, 0, "{}", seg.label);
        }
        // Peer exchanges cross hosts only.
        for seg in dmt.segments.iter().filter(|s| s.scope == CommScope::Peer) {
            assert_eq!(seg.intra_host_bytes, 0, "{}", seg.label);
        }
    }

    #[test]
    fn predicted_timeline_mirrors_measured_segments() {
        let cfg = quick(ModelArch::Dlrm).with_iterations(2);
        let run = run_baseline(&cfg).unwrap();
        let predicted = predicted_timeline(&cfg, &run);
        assert_eq!(predicted.segments().len(), run.segments.len());
        for (p, m) in predicted.segments().iter().zip(&run.segments) {
            assert_eq!(p.label, m.label);
            assert!(p.time_s > 0.0 || m.time_s == 0.0);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = quick(ModelArch::Dlrm);
        cfg.local_batch = 0;
        assert!(matches!(
            run_baseline(&cfg),
            Err(DistributedError::Config { .. })
        ));
        // More towers (hosts) than sparse features cannot be partitioned.
        let cluster = ClusterTopology::new(HardwareGeneration::A100, 27, 1).unwrap();
        let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm);
        assert!(matches!(
            run_dmt(&cfg),
            Err(DistributedError::Config { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = DistributedError::Config {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e = DistributedError::Rank {
            rank: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("boom"));
    }
}
