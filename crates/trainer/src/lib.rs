//! Training simulation, execution and quality harness for the DMT reproduction.
//!
//! Three kinds of "training" live here, matching the pillars of the paper's
//! evaluation:
//!
//! * **Simulated distributed training** ([`simulation`], [`parallelism`]) — iteration
//!   latency of the hybrid-parallel baseline and of DMT on a simulated cluster, with
//!   the per-component breakdowns of Figures 1 and 13, the throughput sweeps of
//!   Figures 10–12, and the Alpa-style parallelism enumeration of Figure 6. No real
//!   model weights are involved; compute and communication are costed analytically
//!   from [`dmt_models::PaperScaleSpec`] and [`dmt_commsim::CostModel`].
//! * **Measured distributed training** ([`distributed`]) — the *executable*
//!   counterpart: one `std::thread` per cluster rank, row-sharded embedding tables,
//!   real AlltoAll/AllReduce exchanges over a [`dmt_comm::Backend`], tower modules
//!   on their owning hosts, and measured per-segment [`dmt_commsim::IterationTimeline`]s
//!   that [`distributed::calibrate()`] lays side by side with the analytical model.
//! * **Real CPU quality training** ([`quality`]) — trains the actual
//!   [`dmt_models::RecommendationModel`] on the synthetic Criteo-like dataset and
//!   evaluates AUC, reproducing the methodology of Tables 2–6 (repeated seeds, median
//!   AUC, Mann–Whitney significance).
//!
//! # Example: reproduce the Figure 13 shape
//!
//! ```
//! use dmt_models::PaperScaleSpec;
//! use dmt_topology::HardwareGeneration;
//! use dmt_trainer::simulation::{DmtThroughputConfig, SimulationConfig};
//!
//! let cfg = SimulationConfig::new(HardwareGeneration::H100, 64, PaperScaleSpec::dcn())?;
//! let baseline = cfg.simulate_baseline_iteration();
//! let dmt = cfg.simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg));
//! // DMT-DCN improves both compute and exposed embedding communication.
//! assert!(dmt.breakdown().total_s() < baseline.breakdown().total_s());
//! # Ok::<(), dmt_topology::TopologyError>(())
//! ```

#![deny(missing_docs)]

pub mod distributed;
pub mod parallelism;
pub mod quality;
pub mod simulation;

pub use distributed::{
    CalibrationReport, DistributedConfig, DistributedError, ExecutionMode, MeasuredRun,
    ScheduleMode,
};
pub use parallelism::{enumerate_parallelism_configs, ParallelismConfig, ParallelismKind};
pub use quality::{QualityConfig, QualityResult};
pub use simulation::{DmtThroughputConfig, SimulationConfig};
