//! Run the real thread-per-rank engine in both deployments and lay the measured
//! timelines side by side with the analytical simulator's predictions.
//!
//! Run with: `cargo run --release -p dmt-trainer --example distributed_calibration`

use dmt_comm::FabricProfile;
use dmt_models::ModelArch;
use dmt_topology::{ClusterTopology, HardwareGeneration};
use dmt_trainer::distributed::{calibrate, CalibrationReport, DistributedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 ranks as 2 hosts x 4 GPUs, fabric paced to A100 link bandwidths slowed
    // 30000x so wire time dominates thread-scheduling noise.
    let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 4)?;
    let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
    let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
        .with_iterations(3)
        .with_fabric(fabric);
    let report = calibrate(&cfg)?;

    for (name, run, predicted) in [
        ("baseline", &report.baseline, &report.predicted_baseline),
        ("DMT", &report.dmt, &report.predicted_dmt),
    ] {
        println!("== {name} (measured, {} ranks) ==", run.world_size);
        println!(
            "{:<40} {:>12} {:>12} {:>10} {:>10}",
            "segment", "measured ms", "predict ms", "cross KiB", "intra KiB"
        );
        for (m, p) in run.segments.iter().zip(predicted.segments()) {
            println!(
                "{:<40} {:>12.2} {:>12.2} {:>10.1} {:>10.1}",
                m.label,
                m.time_s * 1e3,
                p.time_s * 1e3,
                m.cross_host_bytes as f64 / 1024.0,
                m.intra_host_bytes as f64 / 1024.0
            );
        }
        println!(
            "exposed comm {:.1} ms (predicted {:.1} ms), total {:.1} ms\n",
            CalibrationReport::comm_seconds(&run.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&predicted.breakdown()) * 1e3,
            run.breakdown().total_s() * 1e3,
        );
    }
    println!(
        "measured ordering matches analytical prediction: {}",
        report.measured_ordering_matches_prediction()
    );
    Ok(())
}
