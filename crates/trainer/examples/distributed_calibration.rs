//! Run the real thread-per-rank engine in both deployments and lay the measured
//! timelines side by side with the analytical simulator's predictions.
//!
//! Run with: `cargo run --release -p dmt-trainer --example distributed_calibration`
//! (add `--wire-precision <fp32|fp16|fp8|int8>` to quantize the `f32` exchanges
//! on the wire).

use dmt_comm::FabricProfile;
use dmt_commsim::Quantization;
use dmt_models::ModelArch;
use dmt_topology::{ClusterTopology, HardwareGeneration};
use dmt_trainer::distributed::{calibrate, CalibrationReport, DistributedConfig};

/// Parses the `--wire-precision` flag (FP32 when absent).
fn wire_precision() -> Quantization {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--wire-precision" {
            let value = args.next().unwrap_or_else(|| "fp32".into());
            return value
                .parse()
                .unwrap_or_else(|e| panic!("--wire-precision: {e}"));
        }
    }
    Quantization::Fp32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 ranks as 2 hosts x 4 GPUs, fabric paced to A100 link bandwidths slowed
    // 30000x so wire time dominates thread-scheduling noise.
    let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 4)?;
    let fabric = FabricProfile::from_cluster(&cluster, 30_000.0);
    let wire = wire_precision();
    let cfg = DistributedConfig::quick(cluster, ModelArch::Dlrm)
        .with_iterations(3)
        .with_fabric(fabric)
        .with_wire_precision(wire);
    println!("wire precision: {wire}\n");
    let report = calibrate(&cfg)?;

    for (name, run, predicted) in [
        ("baseline", &report.baseline, &report.predicted_baseline),
        ("DMT", &report.dmt, &report.predicted_dmt),
    ] {
        println!("== {name} (measured, {} ranks) ==", run.world_size);
        println!(
            "{:<40} {:>12} {:>12} {:>10} {:>10}",
            "segment", "measured ms", "predict ms", "cross KiB", "intra KiB"
        );
        for (m, p) in run.segments.iter().zip(predicted.segments()) {
            println!(
                "{:<40} {:>12.2} {:>12.2} {:>10.1} {:>10.1}",
                m.label,
                m.time_s * 1e3,
                p.time_s * 1e3,
                m.cross_host_bytes as f64 / 1024.0,
                m.intra_host_bytes as f64 / 1024.0
            );
        }
        println!(
            "exposed comm {:.1} ms (predicted {:.1} ms), total {:.1} ms\n",
            CalibrationReport::comm_seconds(&run.breakdown()) * 1e3,
            CalibrationReport::comm_seconds(&predicted.breakdown()) * 1e3,
            run.breakdown().total_s() * 1e3,
        );
    }
    println!(
        "measured ordering matches analytical prediction: {}",
        report.measured_ordering_matches_prediction()
    );
    Ok(())
}
