//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact API subset this workspace uses: [`Rng::gen_range`] over
//! half-open ranges, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`distributions::Uniform`] / [`distributions::Distribution`]. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic, fast, and of more than
//! sufficient quality for the synthetic data and initializers here. The stream
//! differs from the real `StdRng` (ChaCha12), which only shifts which random draws a
//! fixed seed produces.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that [`Rng::gen`] can produce.
pub trait Standard {
    /// Draws one uniformly random value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        })*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = $unit(rng);
                self.start + unit * (self.end - self.start)
            }
        })*
    };
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy; here, from a fixed counter mixed with the
    /// address-space layout, which is enough for the non-reproducible call sites.
    fn from_entropy() -> Self {
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nonce)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The `rand 0.8` distributions module subset: `Distribution` and `Uniform`.
pub mod distributions {
    use super::Rng;

    /// Types that can be sampled given an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types [`Uniform`] can sample.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Draws one value in `[low, high)` (or `[low, high]` when `inclusive`).
        fn sample_uniform<R: Rng + ?Sized>(
            low: Self,
            high: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_float {
        ($($t:ty => $unit:ident),*) => {
            $(impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self {
                    // The closed/open distinction is below sampling resolution for
                    // floats; both map the unit draw over the interval.
                    let _ = inclusive;
                    let unit = super::$unit(rng);
                    low + unit * (high - low)
                }
            })*
        };
    }

    impl_sample_uniform_float!(f32 => unit_f32, f64 => unit_f64);

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {
            $(impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self {
                    let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                    let draw = (rng.next_u64() as u128) % span;
                    (low as i128 + draw as i128) as $t
                }
            })*
        };
    }

    impl_sample_uniform_int!(u32, u64, usize, i32, i64, isize);

    /// Uniform distribution over an interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X> {
        low: X,
        high: X,
        inclusive: bool,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[low, high)`.
        #[must_use]
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        #[must_use]
        pub fn new_inclusive(low: X, high: X) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_uniform(self.low, self.high, self.inclusive, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_inclusive_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5);
        let mean: f32 = (0..10_000).map(|_| dist.sample(&mut rng)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }
}
