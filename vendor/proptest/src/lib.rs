//! Offline stand-in for `proptest`.
//!
//! Supports the macro surface `tests/property_invariants.rs` uses: the `proptest!`
//! block with `#![proptest_config(...)]`, `arg in strategy` bindings over integer and
//! float ranges, `proptest::collection::vec`, `any::<bool>()`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Cases are sampled from
//! a fixed-seed RNG (deterministic across runs); there is no shrinking — a failing
//! case reports its index so it can be replayed.

use rand::rngs::StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of randomized cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values for one property-test case.
pub type TestRng = StdRng;

/// Generation strategies: how a bound value is sampled.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Samples values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            })*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    /// Uniform values of `T`'s full domain.
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any::default()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Re-exports for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines deterministic randomized property tests.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            // `#[test]` is captured as one of the forwarded attributes.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng: $crate::TestRng =
                    <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(0x70726f70);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err(msg) if msg == "<prop_assume rejected>" => {}
                        Err(msg) => panic!("property {} failed at case {case}: {msg}", stringify!($name)),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                #[test]
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err("<prop_assume rejected>".to_string());
        }
    };
}
