//! Offline stand-in for `rayon`.
//!
//! crates.io is unreachable in this build environment, so this crate implements the
//! small parallel-iterator subset the DMT kernels use on top of `std::thread::scope`.
//! Work is split into one contiguous span per worker thread; on a single-core host
//! (or for a single item) everything degrades to the serial path with zero thread
//! overhead. The closures require the same `Sync`/`Send` bounds real rayon does, so
//! swapping the real crate in later is a manifest-only change.

use std::thread;

/// Number of worker threads parallel operations will use.
#[must_use]
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `a` and `b`, in parallel when more than one hardware thread is available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon stand-in: joined task panicked");
        (ra, rb)
    })
}

/// Distributes `items` across worker threads, invoking `f(index, item)` for each.
///
/// Items are assigned in contiguous spans so thread `t` handles indices
/// `[t * span, (t + 1) * span)`; `f` observes the original index.
fn for_each_indexed<T: Send, F: Fn(usize, T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let span = items.len().div_ceil(threads);
    let mut spans: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut base = 0;
    while !rest.is_empty() {
        let take = span.min(rest.len());
        let tail = rest.split_off(take);
        spans.push((base, rest));
        base += take;
        rest = tail;
    }
    thread::scope(|scope| {
        let f = &f;
        // The first span runs on the calling thread: one fewer spawn, and the caller
        // does useful work instead of blocking in scope teardown.
        let mut spans = spans.into_iter();
        let first = spans.next();
        for (start, chunk) in spans {
            scope.spawn(move || {
                for (offset, item) in chunk.into_iter().enumerate() {
                    f(start + offset, item);
                }
            });
        }
        if let Some((start, chunk)) = first {
            for (offset, item) in chunk.into_iter().enumerate() {
                f(start + offset, item);
            }
        }
    });
}

/// Parallel iterator over an explicit list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index, rayon-style.
    #[must_use]
    pub fn enumerate(self) -> ParIterEnumerated<T> {
        ParIterEnumerated { items: self.items }
    }

    /// Applies `f` to every item across the worker threads.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        for_each_indexed(self.items, |_, item| f(item));
    }

    /// Maps every item and collects the results in input order.
    pub fn map_collect<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> Vec<U> {
        let n = self.items.len();
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let slots = as_send_ptr(&mut out);
            for_each_indexed(self.items, |i, item| {
                // SAFETY: each index is written by exactly one worker.
                unsafe { slots.get().add(i).write(Some(f(item))) };
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot written"))
            .collect()
    }
}

/// Enumerated variant of [`ParIter`].
pub struct ParIterEnumerated<T> {
    items: Vec<T>,
}

impl<T: Send> ParIterEnumerated<T> {
    /// Applies `f` to every `(index, item)` pair across the worker threads.
    pub fn for_each<F: Fn((usize, T)) + Sync>(self, f: F) {
        for_each_indexed(self.items, |i, item| f((i, item)));
    }
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

fn as_send_ptr<T>(v: &mut [Option<T>]) -> SendPtr<Option<T>> {
    SendPtr(v.as_mut_ptr())
}

/// Conversion into a parallel iterator (ranges and vectors).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel mutable-chunk iteration over slices, rayon's `par_chunks_mut`.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `chunk_size` (the last may be shorter) to be
    /// processed across worker threads.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be positive"
        );
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel shared-chunk iteration over slices, rayon's `par_chunks`.
pub trait ParallelSlice<T: Sync> {
    /// Splits the slice into chunks of `chunk_size` to be read across worker threads.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Everything call sites normally import from `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_writes_disjoint_spans() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1002], (1002 / 64) as u32 + 1);
    }

    #[test]
    fn map_collect_preserves_order() {
        let squares = (0..100usize).into_par_iter().map_collect(|i| i * i);
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[7], 49);
        assert_eq!(squares[99], 9801);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
