//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `bench_function`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `black_box`) with a simple warmup + timed-run
//! measurement. Results are printed as `ns/iter`; no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("DMT_BENCH_QUICK").is_some();
        Self {
            measurement: if quick {
                Duration::from_millis(60)
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Criterion compatibility: sample counts are not used by this harness.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion compatibility: accepted and ignored.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement = time;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let mut bencher = Bencher::new(self.criterion.measurement);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.measurement);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A benchmark id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self {
            label: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        Self { label: value }
    }
}

/// Measures a closure: warmup, then as many timed iterations as fit the target time.
pub struct Bencher {
    measurement: Duration,
    ns_per_iter: Option<f64>,
    iters: u64,
}

impl Bencher {
    fn new(measurement: Duration) -> Self {
        Self {
            measurement,
            ns_per_iter: None,
            iters: 0,
        }
    }

    /// Times `routine`, retaining its output so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that fills the target time.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(20));
        let target = self.measurement;
        let iters = (target.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }

    fn report(&self, name: &str) {
        match self.ns_per_iter {
            Some(ns) => println!(
                "bench: {name:<52} {:>14.1} ns/iter ({} iters)",
                ns, self.iters
            ),
            None => println!("bench: {name:<52} (no measurement)"),
        }
    }

    /// Nanoseconds per iteration from the last [`Bencher::iter`] call.
    #[must_use]
    pub fn last_ns_per_iter(&self) -> Option<f64> {
        self.ns_per_iter
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
