//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate re-implements the
//! two derive macros the workspace uses against the vendored `serde` facade. The
//! parser is deliberately small: it handles the shapes that appear in this repository
//! (named-field structs, tuple structs, enums with unit and struct variants, no
//! generics) and fails loudly on anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_json_value` body.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives `serde::Deserialize`. Deserialization is never exercised in this
/// workspace, so the derive only has to make the bound satisfiable.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// One enum variant: its name and, for struct variants, the named fields.
type Variant = (String, Option<Vec<String>>);

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Enum: (variant name, optional named fields of a struct variant).
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (on `{name}`)"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Body::Struct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Body::Tuple(count_top_level_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Body::Enum(parse_variants(g.stream())?)
        }
        _ if kind == "struct" => Body::Tuple(0), // unit struct
        _ => {
            return Err(format!(
                "serde stand-in derive: unsupported body for `{name}`"
            ))
        }
    };
    Ok(Item { name, body })
}

/// Field identifiers of a named-field list, in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                // Skip to the next top-level comma; `<`/`>` are punct tokens, so track
                // angle depth to ignore commas inside generic arguments.
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma
                continue;
            }
            _ => i += 1,
        }
    }
    fields
}

/// Number of comma-separated fields in a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // variant attribute such as #[default]
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push((name, Some(parse_named_fields(g.stream()))));
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Err(format!(
                            "serde stand-in derive: tuple enum variant `{name}` is unsupported"
                        ));
                    }
                    _ => variants.push((name, None)),
                }
                // Past the separating comma, if any.
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    Ok(variants)
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "obj.push(({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut obj: Vec<(String, ::serde::json::Value)> = Vec::new();\n{pushes}::serde::json::Value::Object(obj)"
            )
        }
        Body::Tuple(0) => format!("::serde::json::Value::String({name:?}.to_string())"),
        Body::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let mut pushes = String::new();
            for idx in 0..*n {
                pushes.push_str(&format!(
                    "arr.push(::serde::Serialize::to_json_value(&self.{idx}));\n"
                ));
            }
            format!(
                "let mut arr: Vec<::serde::json::Value> = Vec::new();\n{pushes}::serde::json::Value::Array(arr)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::String({v:?}.to_string()),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push(({f:?}.to_string(), ::serde::Serialize::to_json_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{\nlet mut inner: Vec<(String, ::serde::json::Value)> = Vec::new();\n{pushes}::serde::json::Value::Object(vec![({v:?}.to_string(), ::serde::json::Value::Object(inner))])\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_json_value(&self) -> ::serde::json::Value {{\n        {body}\n    }}\n}}"
    )
}
