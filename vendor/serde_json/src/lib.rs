//! Offline stand-in for `serde_json`: renders the vendored serde's value tree.

pub use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// Error type kept for signature compatibility; serialization here cannot fail.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Serializes `value` as pretty-printed JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
            ("b".into(), Value::String("x\"y".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,2.5],"b":"x\"y","c":true,"d":null}"#);
        assert!(v.render_pretty().contains("\n  \"a\": [\n"));
    }

    #[test]
    fn to_string_serializes_std_types() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&("x".to_string(), 4u64)).unwrap(), r#"["x",4]"#);
        assert_eq!(to_string(&Some(1.5f32)).unwrap(), "1.5");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
    }
}
