//! Offline stand-in for `serde_json`: renders the vendored serde's value tree.

pub use serde::json::{ParseError, Value};
use serde::Serialize;
use std::fmt;

/// Error type kept for signature compatibility; serialization here cannot fail.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render())
}

/// Serializes `value` as pretty-printed JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
            ("b".into(), Value::String("x\"y".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,2.5],"b":"x\"y","c":true,"d":null}"#);
        assert!(v.render_pretty().contains("\n  \"a\": [\n"));
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Value::Object(vec![
            (
                "ops".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(-2.5e3)]),
            ),
            ("name".into(), Value::String("gemm \"tiled\"\n".into())),
            ("ok".into(), Value::Bool(false)),
            ("none".into(), Value::Null),
        ]);
        let parsed: Value = v.render().parse().unwrap();
        assert_eq!(parsed, v);
        let parsed_pretty: Value = v.render_pretty().parse().unwrap();
        assert_eq!(parsed_pretty, v);
    }

    #[test]
    fn parse_accessors_navigate_the_tree() {
        let v: Value = r#"[{"op": "gemm", "ns_per_iter": 125.5}]"#.parse().unwrap();
        let first = &v.as_array().unwrap()[0];
        assert_eq!(first.get("op").unwrap().as_str(), Some("gemm"));
        assert_eq!(first.get("ns_per_iter").unwrap().as_f64(), Some(125.5));
        assert!(first.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_json() {
        assert!("".parse::<Value>().is_err());
        assert!("{".parse::<Value>().is_err());
        assert!("[1,]".parse::<Value>().is_err());
        assert!("123 trailing".parse::<Value>().is_err());
        assert!(r#"{"a" 1}"#.parse::<Value>().is_err());
    }

    #[test]
    fn to_string_serializes_std_types() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&("x".to_string(), 4u64)).unwrap(), r#"["x",4]"#);
        assert_eq!(to_string(&Some(1.5f32)).unwrap(), "1.5");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
    }
}
