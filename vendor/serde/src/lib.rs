//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this facade provides the subset of
//! serde the workspace actually exercises: `#[derive(Serialize, Deserialize)]` plus
//! JSON serialization through [`json::Value`] (consumed by the vendored `serde_json`).
//! `Serialize` is a single-method trait producing a value tree rather than the real
//! serde visitor architecture; `Deserialize` is a marker trait because nothing in the
//! workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into a [`json::Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> json::Value;
}

/// Marker trait satisfied by `#[derive(Deserialize)]`; never invoked in this workspace.
pub trait Deserialize<'de>: Sized {}

/// The JSON value model shared with the vendored `serde_json`.
pub mod json {
    /// A JSON value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any finite number (integers are rendered without a fractional part).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field access by key (`None` for non-objects and missing keys),
        /// mirroring `serde_json::Value::get`.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// Renders the value as compact JSON.
        #[must_use]
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Renders the value as pretty-printed JSON with two-space indentation.
        #[must_use]
        pub fn render_pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(2), 0);
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => {
                    if !n.is_finite() {
                        out.push_str("null");
                    } else if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                }
                Value::String(s) => write_escaped(out, s),
                Value::Array(items) => {
                    write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                        items[i].write(out, indent, d);
                    });
                }
                Value::Object(entries) => {
                    write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                        write_escaped(out, &entries[i].0);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        entries[i].1.write(out, indent, d);
                    });
                }
            }
        }
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        open: char,
        close: char,
        len: usize,
        mut item: impl FnMut(&mut String, usize, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (depth + 1)));
            }
            item(out, i, depth + 1);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
        out.push(close);
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Error produced when parsing malformed JSON text.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset the parse failed at.
        pub offset: usize,
        /// What went wrong.
        pub message: &'static str,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
        }
    }

    impl std::error::Error for ParseError {}

    impl std::str::FromStr for Value {
        type Err = ParseError;

        /// Parses JSON text into a [`Value`], mirroring `serde_json`'s
        /// `str::parse::<Value>()` support.
        fn from_str(text: &str) -> Result<Self, Self::Err> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let value = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(ParseError {
                    offset: pos,
                    message: "trailing characters after JSON value",
                });
            }
            Ok(value)
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(
        bytes: &[u8],
        pos: &mut usize,
        byte: u8,
        message: &'static str,
    ) -> Result<(), ParseError> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                offset: *pos,
                message,
            })
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(ParseError {
                offset: *pos,
                message: "unexpected end of input",
            }),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(ParseError {
                                offset: *pos,
                                message: "expected ',' or ']' in array",
                            })
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':', "expected ':' after object key")?;
                    let value = parse_value(bytes, pos)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(ParseError {
                                offset: *pos,
                                message: "expected ',' or '}' in object",
                            })
                        }
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &'static str,
        value: Value,
    ) -> Result<Value, ParseError> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(ParseError {
                offset: *pos,
                message: "invalid literal",
            })
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or(ParseError {
                offset: start,
                message: "invalid number",
            })
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
        expect(bytes, pos, b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => {
                    return Err(ParseError {
                        offset: *pos,
                        message: "unterminated string",
                    })
                }
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(ParseError {
                                    offset: *pos,
                                    message: "invalid \\u escape",
                                })?;
                            // Surrogate pairs are not needed for the workspace's
                            // ASCII-dominated bench files; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => {
                            return Err(ParseError {
                                offset: *pos,
                                message: "invalid escape",
                            })
                        }
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(&bytes[*pos..]).map_err(|_| ParseError {
                        offset: *pos,
                        message: "invalid UTF-8",
                    })?;
                    let c = text.chars().next().expect("non-empty remainder");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

use json::Value;

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        })+
    };
}

impl_serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
