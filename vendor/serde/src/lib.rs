//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this facade provides the subset of
//! serde the workspace actually exercises: `#[derive(Serialize, Deserialize)]` plus
//! JSON serialization through [`json::Value`] (consumed by the vendored `serde_json`).
//! `Serialize` is a single-method trait producing a value tree rather than the real
//! serde visitor architecture; `Deserialize` is a marker trait because nothing in the
//! workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into a [`json::Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> json::Value;
}

/// Marker trait satisfied by `#[derive(Deserialize)]`; never invoked in this workspace.
pub trait Deserialize<'de>: Sized {}

/// The JSON value model shared with the vendored `serde_json`.
pub mod json {
    /// A JSON value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any finite number (integers are rendered without a fractional part).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Renders the value as compact JSON.
        #[must_use]
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Renders the value as pretty-printed JSON with two-space indentation.
        #[must_use]
        pub fn render_pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(2), 0);
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => {
                    if !n.is_finite() {
                        out.push_str("null");
                    } else if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                }
                Value::String(s) => write_escaped(out, s),
                Value::Array(items) => {
                    write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                        items[i].write(out, indent, d);
                    });
                }
                Value::Object(entries) => {
                    write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                        write_escaped(out, &entries[i].0);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        entries[i].1.write(out, indent, d);
                    });
                }
            }
        }
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        open: char,
        close: char,
        len: usize,
        mut item: impl FnMut(&mut String, usize, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (depth + 1)));
            }
            item(out, i, depth + 1);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
        out.push(close);
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

use json::Value;

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        })+
    };
}

impl_serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
