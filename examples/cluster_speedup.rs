//! Sweep a deployment across hardware generations and cluster sizes and print the
//! simulated DMT speedup (a miniature Figure 10).
//!
//! Run with: `cargo run --release -p dmt-bench --example cluster_speedup -- [dlrm|dcn]`

use dmt_models::PaperScaleSpec;
use dmt_topology::HardwareGeneration;
use dmt_trainer::simulation::{DmtThroughputConfig, SimulationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = match std::env::args().nth(1).as_deref() {
        Some("dcn") => PaperScaleSpec::dcn(),
        _ => PaperScaleSpec::dlrm(),
    };
    println!(
        "model: {} ({:.2} MFlops/sample)",
        model.name, model.mflops_per_sample
    );
    println!(
        "{:<6} {:>6} {:>14} {:>12} {:>9}",
        "HW", "GPUs", "baseline (ms)", "DMT (ms)", "speedup"
    );
    for hardware in HardwareGeneration::ALL {
        for gpus in [16usize, 64, 256] {
            let cfg = SimulationConfig::new(hardware, gpus, model.clone())?;
            let baseline = cfg.simulate_baseline_iteration().breakdown();
            let dmt = cfg
                .simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg))
                .breakdown();
            println!(
                "{:<6} {:>6} {:>14.2} {:>12.2} {:>8.2}x",
                hardware.to_string(),
                gpus,
                baseline.total_s() * 1e3,
                dmt.total_s() * 1e3,
                dmt.speedup_over(&baseline)
            );
        }
    }
    Ok(())
}
