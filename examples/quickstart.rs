//! Quickstart: build a cluster, transform a model with DMT, and compare one simulated
//! training iteration against the hybrid-parallel baseline.
//!
//! Run with: `cargo run --release -p dmt-bench --example quickstart`

use dmt_core::sptt::SpttPlan;
use dmt_models::PaperScaleSpec;
use dmt_topology::{ClusterTopology, HardwareGeneration, TowerPlacement};
use dmt_trainer::simulation::{DmtThroughputConfig, SimulationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment: 64 H100 GPUs in 8 hosts, the paper's DCN model.
    let cfg = SimulationConfig::new(HardwareGeneration::H100, 64, PaperScaleSpec::dcn())?;
    println!("cluster: {}", cfg.cluster);

    // 2. Check that the SPTT dataflow is semantics-preserving for this deployment.
    let cluster = ClusterTopology::standard(HardwareGeneration::H100, 64)?;
    let placement = TowerPlacement::one_tower_per_host(&cluster);
    let plan = SpttPlan::new(&cluster, &placement, 26, 4)?;
    println!(
        "SPTT semantic equivalence: {}",
        plan.verify_semantic_equivalence()
    );

    // 3. Simulate one iteration of the baseline and of DMT, and compare.
    let baseline = cfg.simulate_baseline_iteration().breakdown();
    let dmt = cfg
        .simulate_dmt_iteration(&DmtThroughputConfig::paper_default(&cfg))
        .breakdown();
    println!("baseline iteration: {baseline}");
    println!("DMT iteration:      {dmt}");
    println!("speedup: {:.2}x", dmt.speedup_over(&baseline));
    Ok(())
}
