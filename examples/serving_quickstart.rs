//! Serving quickstart: train a few iterations, export a frozen snapshot, serve a
//! Zipf-skewed query stream, and print the latency/byte comparison between the
//! two deployments.
//!
//! Run with `cargo run --release -p dmt-bench --example serving_quickstart`
//! (add `--quick` for the CI-sized stream).
//!
//! This walks the full production path the `dmt-serve` crate adds:
//!
//! 1. **Train** both deployments on the 2x4 cluster
//!    (`dmt_trainer::distributed`).
//! 2. **Export** each as a [`dmt_trainer::distributed::ModelSnapshot`] — dense
//!    stack + tower modules + full embedding tables — and round-trip it through
//!    the binary snapshot file format.
//! 3. **Serve** a Zipf-skewed stream with micro-batching and a per-rank hot-row
//!    cache, and report p50/p95/p99 latency, throughput, cache hit rate and
//!    cross-host bytes per query.

use dmt_comm::FabricProfile;
use dmt_models::ModelArch;
use dmt_serve::{
    serve_stream, BatchConfig, BatcherConfig, ServeConfig, ServingEngine, StreamConfig,
};
use dmt_topology::{ClusterTopology, HardwareGeneration};
use dmt_trainer::distributed::{
    run_with_snapshot, DistributedConfig, ExecutionMode, ModelSnapshot,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 128 } else { 512 };
    let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 4).expect("2x4 cluster");
    let fabric = FabricProfile::from_cluster(&cluster, 4_000.0);

    println!("== dmt-serve quickstart ==");
    println!("[1/3] training both deployments (4 iterations each)...");
    let train = DistributedConfig::quick(cluster.clone(), ModelArch::Dlrm).with_iterations(4);
    let (base_run, base_snap) =
        run_with_snapshot(&train, ExecutionMode::Baseline).expect("baseline training");
    let (dmt_run, dmt_snap) = run_with_snapshot(&train, ExecutionMode::Dmt).expect("dmt training");
    println!(
        "      baseline mean loss {:.4}, dmt mean loss {:.4}",
        base_run.mean_loss(),
        dmt_run.mean_loss()
    );

    println!("[2/3] exporting snapshots through the binary file format...");
    let dir = std::env::temp_dir().join("dmt_serving_quickstart");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut snapshots = Vec::new();
    for (name, snap) in [("baseline", &base_snap), ("dmt", &dmt_snap)] {
        let path = dir.join(format!("{name}.dmtsnap"));
        snap.write_to(&path).expect("write snapshot");
        let restored = ModelSnapshot::read_from(&path).expect("read snapshot");
        assert_eq!(snap, &restored, "snapshot must round-trip bit-exactly");
        let bytes = std::fs::metadata(&path).expect("stat").len();
        println!(
            "      {name}: {} parameters, {:.1} MiB at {}",
            restored.parameter_count(),
            bytes as f64 / (1024.0 * 1024.0),
            path.display()
        );
        snapshots.push((name, restored));
    }

    println!("[3/3] serving {requests} Zipf-skewed queries per deployment...\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>14} {:>14}",
        "deploy", "p50 ms", "p95 ms", "p99 ms", "qps", "hit %", "crossB/query", "intraB/query"
    );
    for (name, snap) in &snapshots {
        let config = ServeConfig::new(cluster.clone())
            .with_fabric(fabric)
            .with_batch(BatchConfig {
                cache_rows: 4096,
                ..BatchConfig::default()
            });
        let mut engine = ServingEngine::start(snap, &config).expect("engine start");
        let mut stream = dmt_data::ZipfRequestStream::new(snap.schema.clone(), 99, 1.1);
        let stream_cfg = StreamConfig {
            num_requests: requests,
            inter_arrival_us: 0,
            batcher: BatcherConfig::new(32, 5_000),
        };
        let report = serve_stream(&mut engine, &stream_cfg, || stream.next_query()).expect("serve");
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.0} {:>7.1}% {:>14.0} {:>14.0}",
            name,
            report.latency.p50 * 1e3,
            report.latency.p95 * 1e3,
            report.latency.p99 * 1e3,
            report.throughput_qps,
            report.stats.cache.hit_rate() * 100.0,
            report.stats.cross_host_bytes_per_query(),
            report.stats.intra_host_bytes_per_query(),
        );
    }
    println!(
        "\nDMT keeps embedding traffic on intra-host links and ships only compressed \
         tower outputs across hosts — the paper's topology argument, on the query path."
    );
}
