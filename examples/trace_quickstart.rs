//! Tracing quickstart: record a pipelined DMT training run and a staged
//! serving run into one Chrome trace, write `trace.json`, and verify it.
//!
//! Run with `cargo run --release -p dmt-bench --example trace_quickstart`
//! (add `--quick` for the CI-sized run). Then open the resulting
//! `trace.json` in Perfetto: go to <https://ui.perfetto.dev>, "Open trace
//! file" — or `chrome://tracing` in a Chromium browser. Training lanes show
//! per-rank iteration/node spans over the comm transfers that overlap them;
//! serving lanes show each request's async lifecycle (admit → queue →
//! batch-close → lookup → stage queue → dense → reply) and shed instants.
//!
//! The example is also its own validator — the same checks CI runs:
//!
//! * the written file parses back as Chrome trace events;
//! * spans nest and no duration is negative ([`trace::validate_trace`]);
//! * every request admitted into the staged pipeline reaches a terminal
//!   event: completed requests close their async span, sheds leave instants;
//! * the paper's overlap metric recomputed from the raw trace
//!   ([`trace::hidden_comm_fraction_from_trace`]) matches what the engine
//!   measured live — the trace is a second witness, not decoration.

use dmt_data::ZipfRequestStream;
use dmt_metrics::trace;
use dmt_models::ModelArch;
use dmt_serve::{
    run_load, ArrivalProcess, BatchConfig, LoadConfig, ServeConfig, SloConfig, StagePools,
    StagedEngine,
};
use dmt_topology::{ClusterTopology, HardwareGeneration};
use dmt_trainer::distributed::{
    run_dmt, run_with_snapshot, DistributedConfig, ExecutionMode, ScheduleMode,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iterations = if quick { 2 } else { 4 };
    let requests = if quick { 48 } else { 256 };
    let cluster = ClusterTopology::new(HardwareGeneration::A100, 2, 4).expect("2x4 cluster");

    println!("== dmt-metrics tracing quickstart ==");
    trace::set_tracing(false);
    let _ = trace::take_events();

    // [1/3] A pipelined DMT training run, traced end to end.
    println!("[1/3] tracing a pipelined DMT training run ({iterations} iterations)...");
    let train_cfg = DistributedConfig::quick(cluster.clone(), ModelArch::Dlrm)
        .with_schedule(ScheduleMode::Pipelined)
        .with_iterations(iterations);
    trace::set_tracing(true);
    let run = run_dmt(&train_cfg).expect("pipelined DMT run");
    trace::set_tracing(false);
    let measured = run.hidden_comm_fraction();
    println!("      measured hidden-comm fraction: {measured:.3}");

    // [2/3] A staged serving run under closed-loop load, traced into the same
    // buffer (its own process lane in the viewer). The snapshot is trained
    // untraced so the trace holds exactly one training run.
    println!("[2/3] tracing a staged serving run ({requests} requests)...");
    let snap_cfg = DistributedConfig::quick(cluster.clone(), ModelArch::Dlrm).with_iterations(1);
    let (_, snapshot) = run_with_snapshot(&snap_cfg, ExecutionMode::Baseline).expect("snapshot");
    let serve_cfg = ServeConfig::new(cluster.clone())
        .with_batch(BatchConfig {
            max_batch: 8,
            max_delay_us: 500,
            ..BatchConfig::default()
        })
        .with_slo(SloConfig::default());
    trace::set_tracing(true);
    let mut engine =
        StagedEngine::start(&snapshot, StagePools::new(2, 1), &serve_cfg).expect("staged engine");
    let mut stream = ZipfRequestStream::new(snapshot.schema.clone(), 7, 1.1);
    let load = LoadConfig::new(requests, ArrivalProcess::Closed { clients: 4 });
    let report = run_load(&mut engine, &load, || stream.next_queries(1)).expect("load run");
    engine.shutdown().expect("shutdown");
    trace::set_tracing(false);
    println!(
        "      {} completed, {} shed, p99 sojourn {:.2} ms",
        report.completed,
        report.total_shed(),
        report.sojourn.p99 * 1e3
    );

    // [3/3] Export, then verify the artifact a user would load into Perfetto.
    let events = trace::take_events();
    assert_eq!(trace::events_dropped(), 0, "no thread buffer overflowed");
    let path = std::path::Path::new("trace.json");
    trace::write_chrome_trace(path, &events).expect("write trace.json");
    let json = std::fs::read_to_string(path).expect("read trace.json back");
    let parsed = trace::parse_chrome_trace(&json).expect("trace.json parses");
    let summary = trace::validate_trace(&parsed).expect("spans nest, durations non-negative");
    println!(
        "[3/3] trace.json: {} events ({} spans, {} instants, {} request spans) on {} lanes",
        parsed.len(),
        summary.spans,
        summary.instants,
        summary.async_pairs,
        summary.tracks
    );

    // Every admitted request reached a terminal event.
    assert_eq!(
        summary.async_pairs, report.completed,
        "every completed request closes its async span"
    );
    let sheds = parsed
        .iter()
        .filter(|e| e.ph == "i" && e.cat == trace::cat::REQUEST && e.name == "shed")
        .count() as u64;
    assert_eq!(sheds, report.total_shed(), "every shed leaves an instant");

    // The trace recomputes the paper's overlap claim.
    let from_trace =
        trace::hidden_comm_fraction_from_trace(&parsed).expect("trace holds comm + wait events");
    println!("      hidden-comm fraction from trace: {from_trace:.3} (measured {measured:.3})");
    assert!(
        (from_trace - measured).abs() < 0.05,
        "trace recompute {from_trace} vs measured {measured}"
    );

    println!(
        "\nAll structural checks passed. Open trace.json at https://ui.perfetto.dev \
         (\"Open trace file\") to browse the timelines."
    );
}
