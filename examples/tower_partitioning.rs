//! Tower partitioning end to end: train a small DLRM on the synthetic click log, probe
//! its feature embeddings, run the learned Tower Partitioner, and compare the result
//! against the naive strided assignment.
//!
//! Run with: `cargo run --release -p dmt-bench --example tower_partitioning`
//! (add `--quick` for a shorter CI-friendly training phase).

use dmt_core::naive_partition;
use dmt_core::partition::{interaction_matrix, PartitionStrategy, TowerPartitioner};
use dmt_data::{DatasetSchema, SyntheticClickDataset};
use dmt_models::{ModelArch, ModelHyperparams, RecommendationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps = if dmt_bench::quick_mode() { 10 } else { 40 };
    let schema = DatasetSchema::criteo_like_small();
    let mut rng = StdRng::seed_from_u64(42);
    let mut model = RecommendationModel::baseline(
        &mut rng,
        &schema,
        ModelArch::Dlrm,
        &ModelHyperparams::tiny(),
    )?;

    // Briefly train so the embedding tables carry affinity signal.
    let mut data = SyntheticClickDataset::new(schema.clone(), 7);
    for step in 0..steps {
        let batch = data.next_batch(256);
        let stats = model.train_step(&batch, 1e-2)?;
        if step % 10 == 0 {
            println!("step {step:>3}: loss {:.4}", stats.loss);
        }
    }

    // Probe feature embeddings and build the interaction matrix (|cosine similarity|).
    let probe = model.feature_embedding_probe(64);
    let similarity = interaction_matrix(&probe);
    println!(
        "\ninteraction matrix is {}x{}",
        similarity.len(),
        similarity.len()
    );

    // Learned, balanced partition into 8 towers (coherent strategy).
    let partitioner = TowerPartitioner::new(8).with_strategy(PartitionStrategy::Coherent);
    let learned = partitioner.partition_from_interactions(&similarity)?;
    println!("\nlearned partition (8 towers):");
    for (tower, group) in learned.groups().iter().enumerate() {
        println!("  tower {tower}: {group:?}");
    }
    println!("imbalance: {:.2}", learned.imbalance());

    let naive = naive_partition(schema.num_sparse(), 8)?;
    println!("\nnaive strided partition for comparison:");
    for (tower, group) in naive.groups().iter().enumerate() {
        println!("  tower {tower}: {group:?}");
    }
    Ok(())
}
